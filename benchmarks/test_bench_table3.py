"""Table 3 — highlights as additional grounding for NL feedback."""

from repro.eval.experiments import run_table3
from repro.eval.reporting import render_table3


def test_bench_table3(full_context, benchmark):
    result = benchmark.pedantic(
        run_table3, args=(full_context,), rounds=1, iterations=1
    )
    print()
    print(render_table3(result))
    benchmark.extra_info["fisql_aep"] = result.fisql_aep
    benchmark.extra_info["highlighting_aep"] = result.highlighting_aep
    benchmark.extra_info["fisql_spider"] = result.fisql_spider
    benchmark.extra_info["highlighting_spider"] = result.highlighting_spider

    # Highlights improve the Experience Platform and never hurt.
    assert result.highlighting_aep >= result.fisql_aep
    assert result.highlighting_spider >= result.fisql_spider
    # On SPIDER the effect is neutral (paper: exactly zero).
    assert abs(result.highlighting_spider - result.fisql_spider) <= 5
