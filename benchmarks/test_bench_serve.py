"""Serve-plane latency snapshot (``BENCH_serve.json``).

Drives a concurrent ask/feedback workload through the in-process serve
surface (batched tenant stacks + shared completion cache), then persists
client-side latency percentiles per route alongside the telemetry hub's
own windowed view of the same traffic — the cross-check that the
dashboard numbers describe reality. Scrape costs for ``/metrics`` and
``/statusz`` are timed too: the observability plane must stay cheap
enough to poll every couple of seconds.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from repro.core import DemonstrationRetriever
from repro.datasets import build_aep_database, generate_aep_suite
from repro.llm.dispatch import CompletionCache
from repro.obs.metrics import percentile
from repro.serve import (
    CatalogEntry,
    ServeApp,
    ServeClient,
    TenantPolicy,
)

SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

N_THREADS = 8
SESSIONS_PER_THREAD = 4
QUESTION = "How many audiences were created in January?"
FEEDBACK = "we are in 2024"
SCRAPE_ROUNDS = 50


def _percentiles(samples_ms: list) -> dict:
    return {
        "count": len(samples_ms),
        "p50_ms": round(percentile(samples_ms, 0.50, default=0.0), 3),
        "p95_ms": round(percentile(samples_ms, 0.95, default=0.0), 3),
        "p99_ms": round(percentile(samples_ms, 0.99, default=0.0), 3),
        "max_ms": round(max(samples_ms, default=0.0), 3),
    }


def test_bench_serve_snapshot():
    database = build_aep_database()
    _traffic, demos = generate_aep_suite(n_questions=10)
    catalog = {"aep": CatalogEntry(database, DemonstrationRetriever(demos))}
    app = ServeApp(
        catalog,
        policy=TenantPolicy(batch_max=4, batch_wait_ms=2.0),
        cache=CompletionCache(),
    )
    client = ServeClient.in_process(app)

    samples: dict = {"ask": [], "feedback": []}
    lock = threading.Lock()
    failures: list = []

    def timed(route: str, method: str, path: str, payload: dict) -> None:
        started = time.perf_counter()
        status, _body = client.request_raw(method, path, payload)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        if status != 200:
            failures.append((route, status))
            return
        with lock:
            samples[route].append(elapsed_ms)

    def worker(worker_id: int) -> None:
        tenant = f"team-{worker_id % 4}"
        for _ in range(SESSIONS_PER_THREAD):
            sid = client.create_session(db="aep", tenant=tenant)["id"]
            timed("ask", "POST", f"/sessions/{sid}/ask", {"question": QUESTION})
            timed(
                "feedback",
                "POST",
                f"/sessions/{sid}/feedback",
                {"feedback": FEEDBACK},
            )

    wall_started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    wall_s = time.perf_counter() - wall_started
    assert not failures, failures

    total_turns = N_THREADS * SESSIONS_PER_THREAD
    assert len(samples["ask"]) == total_turns
    assert len(samples["feedback"]) == total_turns

    # The telemetry hub saw the same traffic the clients timed.
    telemetry = app.telemetry.snapshot()
    hub_ask = telemetry["routes"]["ask"]["15m"]
    hub_feedback = telemetry["routes"]["feedback"]["15m"]
    assert hub_ask["count"] == total_turns
    assert hub_feedback["count"] == total_turns
    assert hub_ask["p95_ms"] > 0.0

    scrape_ms: dict = {}
    for name, call in (
        ("metrics", client.metrics),
        ("statusz", client.statusz),
    ):
        started = time.perf_counter()
        for _ in range(SCRAPE_ROUNDS):
            call()
        scrape_ms[name] = round(
            (time.perf_counter() - started) * 1000.0 / SCRAPE_ROUNDS, 4
        )

    document = {
        "benchmark": "serve",
        "threads": N_THREADS,
        "sessions": total_turns,
        "batch_max": 4,
        "wall_s": round(wall_s, 3),
        "turns_per_s": round(2 * total_turns / wall_s, 2),
        "client_latency": {
            route: _percentiles(values) for route, values in samples.items()
        },
        "telemetry_latency": {
            "ask": {
                "count": hub_ask["count"],
                "p50_ms": hub_ask["p50_ms"],
                "p95_ms": hub_ask["p95_ms"],
                "max_ms": hub_ask["max_ms"],
            },
            "feedback": {
                "count": hub_feedback["count"],
                "p50_ms": hub_feedback["p50_ms"],
                "p95_ms": hub_feedback["p95_ms"],
                "max_ms": hub_feedback["max_ms"],
            },
        },
        "scrape_ms": scrape_ms,
    }
    SNAPSHOT_PATH.write_text(json.dumps(document, indent=2) + "\n")

    reloaded = json.loads(SNAPSHOT_PATH.read_text())
    assert reloaded["telemetry_latency"]["ask"]["count"] == total_turns
