"""Table 2 — % instances corrected with one round of NL feedback.

Methods: Query Rewrite baseline, FISQL (- Routing) ablation, FISQL.
"""

from repro.eval.experiments import run_table2
from repro.eval.reporting import render_table2


def test_bench_table2(full_context, benchmark):
    result = benchmark.pedantic(
        run_table2, args=(full_context,), rounds=1, iterations=1
    )
    print()
    print(render_table2(result))
    for cell in result.cells:
        key = f"{cell.method}/{cell.dataset}"
        benchmark.extra_info[key] = round(cell.corrected_percent, 2)
        benchmark.extra_info[f"{key}/n"] = cell.n_errors

    # FISQL corrects roughly 2x the instances Query Rewrite does.
    assert result.percent("FISQL", "spider") >= 1.6 * result.percent(
        "Query Rewrite", "spider"
    )
    assert result.percent("FISQL", "aep") >= 1.4 * result.percent(
        "Query Rewrite", "aep"
    )
    # Routing contributes a (small) advantage.
    assert (
        result.percent("FISQL", "spider")
        >= result.percent("FISQL (- Routing)", "spider")
    )
    # The Experience Platform errors are easier to correct than SPIDER's.
    assert result.percent("FISQL", "aep") > result.percent("FISQL", "spider")
