"""Execution-layer speedup snapshot (``BENCH_exec.json``).

Times the Table 2 correction benchmark three ways — sequential cold,
parallel cold (``workers=4`` + batched dispatch filling the completion
cache), and parallel warm (same, cache pre-filled) — and persists the
wall-clocks plus the speedup ratios. The acceptance bar for the dispatch
layer is >= 2x for parallel-warm over sequential-cold; the test asserts
the outputs stayed byte-identical while getting there, so the speedup is
never bought with drift.

The snapshot also carries a per-core scaling curve for the process tier:
cold Table 2 at workers 1/2/4 in both ``thread`` and ``process`` mode,
against the same on-disk suites. Byte parity is asserted for every cell
unconditionally; the >1.25x parallel-cold bar for 4 process workers only
applies when the box actually has >= 4 cores (``cpu_count`` is recorded
so the snapshot is honest about what it was measured on — a single-core
container cannot speed anything up by forking).

Suite construction is excluded from every timing (the pristine context is
prebuilt and its suites shared), isolating the execution path this layer
actually changed.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.eval.experiments import run_table2
from repro.eval.harness import build_context
from repro.eval.reporting import render_table2
from repro.llm.dispatch import CachingChatModel, CompletionCache
from repro.llm.simulated import SimulatedLLM

SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_exec.json"

WORKERS = 4
BATCH_SIZE = 8
CURVE_WORKERS = (1, 2, 4)
CURVE_MODES = ("thread", "process")
PROCESS_SPEEDUP_BAR = 1.25


def _timed_table2(context):
    started = time.perf_counter()
    result = run_table2(context)
    elapsed = time.perf_counter() - started
    return render_table2(result), elapsed


def _scaling_curve():
    """Cold Table 2 across worker counts and modes, suites from disk."""
    with tempfile.TemporaryDirectory() as suite_dir:
        build_context(scale="small", suite_dir=suite_dir)  # prebuild suites
        baseline_render, baseline_s = _timed_table2(
            build_context(scale="small", suite_dir=suite_dir)
        )
        curve = []
        for mode in CURVE_MODES:
            for workers in CURVE_WORKERS:
                render, elapsed = _timed_table2(
                    build_context(
                        scale="small",
                        suite_dir=suite_dir,
                        workers=workers,
                        worker_mode=mode,
                    )
                )
                assert render == baseline_render, (
                    f"{mode} mode with {workers} workers drifted"
                )
                curve.append(
                    {
                        "mode": mode,
                        "workers": workers,
                        "ms": round(elapsed * 1000, 2),
                        "speedup": round(baseline_s / elapsed, 2),
                    }
                )
    return round(baseline_s * 1000, 2), curve


def test_bench_exec_snapshot():
    # Prebuild suites so no variant pays (or skips) construction cost.
    build_context(scale="small")

    sequential_render, sequential_s = _timed_table2(
        build_context(scale="small")
    )

    cache = CompletionCache()
    cold_render, cold_s = _timed_table2(
        build_context(
            scale="small",
            llm=CachingChatModel(SimulatedLLM(), cache),
            workers=WORKERS,
            batch_size=BATCH_SIZE,
        )
    )
    cold_stats = cache.stats()

    warm_render, warm_s = _timed_table2(
        build_context(
            scale="small",
            llm=CachingChatModel(SimulatedLLM(), cache),
            workers=WORKERS,
            batch_size=BATCH_SIZE,
        )
    )

    assert cold_render == sequential_render
    assert warm_render == sequential_render
    speedup_warm = sequential_s / warm_s
    assert speedup_warm >= 2.0, (
        f"parallel-warm must be >= 2x sequential-cold, got {speedup_warm:.2f}x "
        f"({sequential_s * 1000:.1f} ms -> {warm_s * 1000:.1f} ms)"
    )

    scaling_sequential_ms, curve = _scaling_curve()
    cpu_count = os.cpu_count() or 1
    if cpu_count >= 4:
        process_at_4 = next(
            cell["speedup"]
            for cell in curve
            if cell["mode"] == "process" and cell["workers"] == 4
        )
        assert process_at_4 > PROCESS_SPEEDUP_BAR, (
            f"4 process workers on {cpu_count} cores must beat "
            f"{PROCESS_SPEEDUP_BAR}x, got {process_at_4:.2f}x"
        )

    document = {
        "benchmark": "table2",
        "scale": "small",
        "workers": WORKERS,
        "batch_size": BATCH_SIZE,
        "timings_ms": {
            "sequential_cold": round(sequential_s * 1000, 2),
            "parallel_cold": round(cold_s * 1000, 2),
            "parallel_warm": round(warm_s * 1000, 2),
        },
        "speedup": {
            "parallel_cold": round(sequential_s / cold_s, 2),
            "parallel_warm": round(speedup_warm, 2),
        },
        "cache": {
            "cold_misses": cold_stats["misses"],
            "cold_hits": cold_stats["hits"],
            "entries": len(cache),
        },
        "scaling": {
            "cpu_count": cpu_count,
            "sequential_cold_ms": scaling_sequential_ms,
            "curve": curve,
        },
        "byte_identical_outputs": True,
    }
    SNAPSHOT_PATH.write_text(json.dumps(document, indent=2, default=str) + "\n")

    reloaded = json.loads(SNAPSHOT_PATH.read_text())
    assert reloaded["speedup"]["parallel_warm"] >= 2.0
