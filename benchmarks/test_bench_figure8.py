"""Figure 8 — correction % over two feedback rounds (SPIDER errors)."""

from repro.eval.experiments import run_figure8
from repro.eval.reporting import render_figure8


def test_bench_figure8(full_context, benchmark):
    result = benchmark.pedantic(
        run_figure8, args=(full_context,), rounds=1, iterations=1
    )
    print()
    print(render_figure8(result))
    benchmark.extra_info["fisql_by_round"] = result.fisql_by_round
    benchmark.extra_info["no_routing_by_round"] = result.no_routing_by_round

    # A second feedback round adds a double-digit improvement (paper ~15%).
    gain = result.fisql_by_round[1] - result.fisql_by_round[0]
    assert 5 <= gain <= 30
    # The no-routing ablation converges to FISQL by round two.
    assert abs(result.fisql_by_round[1] - result.no_routing_by_round[1]) <= 6
