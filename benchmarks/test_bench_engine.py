"""SQL-engine microbenchmarks (substrate performance, not a paper figure)."""

import pytest

from repro.datasets.aep import build_aep_database
from repro.sql.parser import parse_query
from repro.sql.printer import print_query


@pytest.fixture(scope="module")
def db():
    return build_aep_database()


def test_bench_parse(benchmark):
    sql = (
        "SELECT T2.destinationname FROM hkg_fact_activation AS T1 "
        "JOIN hkg_dim_destination AS T2 ON T1.destinationid = T2.destinationid "
        "JOIN hkg_dim_segment AS T3 ON T1.segmentid = T3.segmentid "
        "WHERE T3.segmentname = 'ABC' ORDER BY T2.destinationname LIMIT 10"
    )
    query = benchmark(parse_query, sql)
    assert query is not None


def test_bench_print(benchmark):
    query = parse_query(
        "SELECT a, COUNT(*) FROM t WHERE b > 1 AND c = 'x' GROUP BY a "
        "HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 5"
    )
    text = benchmark(print_query, query)
    assert text.startswith("SELECT")


def test_bench_point_query(db, benchmark):
    result = benchmark(
        db.query,
        "SELECT segmentname FROM hkg_dim_segment WHERE segmentid = 7",
    )
    assert len(result.rows) == 1


def test_bench_aggregate_query(db, benchmark):
    result = benchmark(
        db.query,
        "SELECT status, COUNT(*), SUM(profilecount) FROM hkg_dim_segment "
        "GROUP BY status",
    )
    assert result.rows


def test_bench_join_query(db, benchmark):
    result = benchmark(
        db.query,
        "SELECT T3.segmentname, T2.destinationname FROM hkg_fact_activation "
        "AS T1 JOIN hkg_dim_destination AS T2 ON T1.destinationid = "
        "T2.destinationid JOIN hkg_dim_segment AS T3 ON T1.segmentid = "
        "T3.segmentid",
    )
    assert result.rows


def test_bench_correlated_subquery(db, benchmark):
    result = benchmark(
        db.query,
        "SELECT segmentname FROM hkg_dim_segment WHERE EXISTS "
        "(SELECT 1 FROM hkg_fact_activation WHERE "
        "hkg_fact_activation.segmentid = hkg_dim_segment.segmentid)",
    )
    assert result.rows
