"""Observability-driven timing snapshot (``BENCH_obs.json``).

Runs Table 2 end to end under ``repro.obs`` instrumentation and persists
the span rollup + metric summaries. Unlike the pytest-benchmark figures,
this captures *where* the wall-clock goes inside a run (suite build, LLM
dispatch per prompt kind, retrieval, SQL execute), which is the baseline
future caching/parallelism PRs are measured against.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import obs
from repro.eval.experiments import run_table2
from repro.eval.harness import build_context

SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def test_bench_obs_snapshot():
    obs.enable()
    try:
        with obs.span("bench.table2", scale="small"):
            context = build_context(scale="small")
            result = run_table2(context)
        snapshot = obs.snapshot()
    finally:
        obs.disable()

    assert snapshot["spans"], "instrumented run must record spans"
    assert any(
        entry["name"] == "llm.calls" for entry in snapshot["counters"]
    ), "instrumented run must count LLM calls"

    document = {
        "benchmark": "table2",
        "scale": "small",
        "spans": snapshot["spans"],
        "counters": snapshot["counters"],
        "histograms": snapshot["histograms"],
        "dropped_spans": snapshot["dropped_spans"],
        "result": {
            "fisql_spider": round(result.percent("FISQL", "spider"), 2),
            "fisql_aep": round(result.percent("FISQL", "aep"), 2),
        },
    }
    SNAPSHOT_PATH.write_text(json.dumps(document, indent=2, default=str) + "\n")

    # The snapshot must round-trip as JSON.
    reloaded = json.loads(SNAPSHOT_PATH.read_text())
    assert reloaded["spans"]
    assert reloaded["benchmark"] == "table2"
