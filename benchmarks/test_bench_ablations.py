"""Ablation benches beyond the paper's tables (DESIGN.md extensions).

* Trap-rate sweep — how zero-shot accuracy degrades as the planted
  difficulty rate rises (sensitivity of Figure 2 to the calibration knob).
* Retrieval on/off — the value of the RAG demonstration pool (the gap
  between Figure 2's zero-shot model and the Assistant).
* User-noise sweep — how FISQL's correction rate responds to annotator
  misalignment (the paper's residual-error cause (c)).
"""

from repro.core.nl2sql import Nl2SqlModel
from repro.core.retrieval import DemonstrationRetriever
from repro.core.user import AnnotatorConfig
from repro.datasets.base import demonstrations_from_examples
from repro.datasets.spider import generate_spider_suite
from repro.eval.experiments import _run_fisql
from repro.eval.harness import build_context
from repro.eval.metrics import correction_rate, evaluate_model


def test_bench_trap_rate_sweep(benchmark):
    def sweep():
        accuracies = {}
        for trap_rate in (0.0, 0.2, 0.4):
            suite = generate_spider_suite(
                n_databases=24, n_dev=150, n_train=40, trap_rate=trap_rate
            )
            report = evaluate_model(Nl2SqlModel(), suite.benchmark)
            accuracies[trap_rate] = 100 * report.accuracy
        return accuracies

    accuracies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation — zero-shot accuracy vs trap rate")
    for rate, accuracy in accuracies.items():
        print(f"  trap_rate={rate:.1f}: {accuracy:.1f}%")
    benchmark.extra_info.update({str(k): v for k, v in accuracies.items()})
    # Accuracy must fall monotonically as traps are added.
    assert accuracies[0.0] > accuracies[0.2] > accuracies[0.4]
    # With no traps the parser is essentially perfect.
    assert accuracies[0.0] >= 97.0


def test_bench_retrieval_ablation(full_context, benchmark):
    def run():
        zero_shot = evaluate_model(
            full_context.zero_shot_model(), full_context.spider.benchmark
        )
        rag = full_context.assistant_report("spider")
        return 100 * zero_shot.accuracy, 100 * rag.accuracy

    zero_shot_acc, rag_acc = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Ablation — RAG demonstrations on SPIDER")
    print(f"  zero-shot: {zero_shot_acc:.1f}%   with RAG: {rag_acc:.1f}%")
    benchmark.extra_info["zero_shot"] = zero_shot_acc
    benchmark.extra_info["rag"] = rag_acc
    assert rag_acc > zero_shot_acc + 3


def test_bench_user_noise_sweep(full_context, benchmark):
    from repro.eval.harness import _MultiDbAnnotator

    errors = full_context.error_set("spider")[:60]

    def sweep():
        rates = {}
        for misaligned in (0.0, 0.3, 0.6):
            config = AnnotatorConfig(
                annotate_rate=1.0, vague_rate=0.02, misaligned_rate=misaligned
            )
            annotator = _MultiDbAnnotator(full_context.spider.benchmark, config)
            from repro.core.session import FisqlPipeline

            pipeline = FisqlPipeline(
                model=full_context.spider_assistant_model(),
                llm=full_context.llm,
                routing=True,
            )
            outcomes = []
            for record in errors:
                database = full_context.spider.benchmark.database(
                    record.example.db_id
                )
                outcomes.append(
                    pipeline.correct(
                        example=record.example,
                        database=database,
                        initial_sql=record.predicted_sql,
                        annotator=annotator,
                        max_rounds=1,
                    )
                )
            rates[misaligned] = correction_rate(outcomes, within_rounds=1)
        return rates

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation — FISQL round-1 correction vs annotator misalignment")
    for rate, corrected in rates.items():
        print(f"  misaligned={rate:.1f}: {corrected:.1f}%")
    benchmark.extra_info.update({str(k): v for k, v in rates.items()})
    assert rates[0.0] > rates[0.3] > rates[0.6]
