"""Figure 2 — zero-shot NL2SQL accuracy, SPIDER vs Experience Platform.

Regenerates the paper's bar chart as a table::

    pytest benchmarks/test_bench_figure2.py --benchmark-only -s
"""

from repro.eval.experiments import run_figure2
from repro.eval.reporting import render_figure2


def test_bench_figure2(full_context, benchmark):
    result = benchmark.pedantic(
        run_figure2, args=(full_context,), rounds=1, iterations=1
    )
    print()
    print(render_figure2(result))
    benchmark.extra_info["spider_accuracy"] = result.spider_accuracy
    benchmark.extra_info["aep_accuracy"] = result.aep_accuracy
    benchmark.extra_info["paper_spider"] = result.paper_spider
    benchmark.extra_info["paper_aep"] = result.paper_aep

    # Shape constraints the paper's Figure 2 establishes.
    assert result.spider_accuracy > result.aep_accuracy + 25
    assert 58 <= result.spider_accuracy <= 80
    assert 12 <= result.aep_accuracy <= 38
