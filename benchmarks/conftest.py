"""Benchmark fixtures: the full-scale experiment context, built once."""

from __future__ import annotations

import pytest

from repro.eval.harness import build_context


@pytest.fixture(scope="session")
def full_context():
    """Paper-scale context: 200 DBs, 1034 dev questions, AEP traffic."""
    return build_context(scale="full")
