#!/usr/bin/env python3
"""Quickstart: ask → wrong answer → feedback → fixed answer.

Recreates the paper's running example (Figure 4): a user asks how many
audiences were created in January, the Assistant assumes the wrong year,
the user replies "we are in 2024", and FISQL repairs the SQL in place.

Run:  python examples/quickstart.py
"""

from repro.core import (
    Assistant,
    FeedbackDemoStore,
    FeedbackRouter,
    Nl2SqlModel,
    DemonstrationRetriever,
)
from repro.core.feedback import Feedback
from repro.datasets import build_aep_database, generate_aep_suite
from repro.llm import SimulatedLLM, feedback_prompt


def main() -> None:
    # The closed-domain database and its in-house demonstration pool.
    database = build_aep_database()
    _traffic, demos = generate_aep_suite(n_questions=10)

    llm = SimulatedLLM()
    model = Nl2SqlModel(llm=llm, retriever=DemonstrationRetriever(demos))
    assistant = Assistant(model)

    question = "How many audiences were created in January?"
    print(f"User: {question}\n")

    response = assistant.answer(question, database)
    print("Assistant:")
    print(response.render())
    print(f"\n[Show Source]\n{response.sql}\n")

    # The user knows it is 2024; the Assistant assumed its default year.
    feedback = Feedback(text="we are in 2024")
    print(f"User feedback: {feedback.text}\n")

    # FISQL step 1 — routing: classify the feedback type and fetch the
    # type-specific revision demonstrations (the paper's Figure 5 blocks).
    router = FeedbackRouter(llm)
    feedback_type = router.route(feedback.text)
    demo_store = FeedbackDemoStore.default()
    print(f"[routing] feedback type: {feedback_type}")

    # FISQL step 2 — re-prompt the NL2SQL model with the previous SQL, the
    # feedback, and those demonstrations (the paper's Figure 6 prompt).
    prompt = feedback_prompt(
        schema=database.schema,
        question=question,
        previous_sql=response.sql,
        feedback=feedback.text,
        feedback_demos=demo_store.for_type(feedback_type),
        feedback_type=feedback_type,
    )
    completion = llm.complete(prompt)
    print(f"[revision] {'; '.join(completion.notes)}\n")

    revised_sql = completion.text
    print(f"Revised SQL: {revised_sql}")
    result = database.query(revised_sql)
    print(f"Answer: {result.scalar()} segments created in January 2024")

    # The paper's Table 1 taxonomy, for reference.
    from repro.core import FEEDBACK_TYPE_EXAMPLES

    print("\nFeedback types (Table 1):")
    for label, text in FEEDBACK_TYPE_EXAMPLES.items():
        print(f"  {label:>6}: {text}")


if __name__ == "__main__":
    main()
