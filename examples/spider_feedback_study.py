#!/usr/bin/env python3
"""Replay the paper's SPIDER feedback-annotation study end to end.

Reproduces the evaluation protocol of Section 4 at a reduced scale:

1. Generate the SPIDER-like suite and run the RAG Assistant over the dev
   split, collecting its errors (paper: 243 of 1034).
2. Keep the errors the annotator can write feedback for (paper: 101).
3. Run Query Rewrite, FISQL (- Routing) and FISQL for one round (Table 2),
   then two rounds (Figure 8), and print paper-vs-measured.

Run:  python examples/spider_feedback_study.py  [--scale medium|full]
"""

import argparse
from collections import Counter

from repro.eval import (
    build_context,
    render_figure8,
    render_table2,
    run_figure8,
    run_table2,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=("small", "medium", "full"),
        default="medium",
        help="experiment scale (full = the paper's 1034-question dev split)",
    )
    args = parser.parse_args()

    context = build_context(scale=args.scale)

    report = context.assistant_report("spider")
    errors = report.errors()
    annotated = context.error_set("spider")
    print(
        f"Assistant on SPIDER dev: {100 * report.accuracy:.1f}% accurate; "
        f"{len(errors)} errors of {report.total} "
        f"(paper: 243 of 1034)"
    )
    print(
        f"Feedback annotated for {len(annotated)} errors "
        f"({100 * len(annotated) / len(errors):.0f}%; paper: 101 ≈ 41%)"
    )
    kinds = Counter(
        record.example.trap_kind or "untrapped" for record in annotated
    )
    print("Error-set composition:", dict(kinds))
    print()

    print(render_table2(run_table2(context)))
    print()
    print(render_figure8(run_figure8(context)))
    print()

    # Reconstruct the paper's §4.2 error analysis for FISQL round 1.
    from repro.eval import analyze_corrections
    from repro.eval.experiments import _run_fisql

    outcomes = _run_fisql(
        context, "spider", annotated, routing=True, highlights=False,
        max_rounds=1,
    )
    analysis = analyze_corrections(
        annotated, outcomes, context.spider.benchmark
    )
    print("Error analysis (FISQL, round 1) — cf. the paper's Section 4.2:")
    print(analysis.render())


if __name__ == "__main__":
    main()
