#!/usr/bin/env python3
"""A marketing-analyst session on the Experience Platform.

Walks through three closed-domain interactions the paper motivates:

1. Jargon vocabulary — "live segments" (status filter the zero-shot model
   cannot know), fixed with a clarifying sentence.
2. The activation relation — "which destinations is the 'ABC' segment
   activated to?" (a fact-table join), fixed by feedback naming the
   activation table.
3. Highlight grounding — terse feedback ("change to 'active'") that is
   only actionable once the user highlights where it applies (Figure 9).

Run:  python examples/marketing_analytics.py
"""

from repro.core import Assistant, FisqlPipeline, Nl2SqlModel, SimulatedAnnotator
from repro.core.user import AnnotatorConfig
from repro.datasets import build_aep_database
from repro.datasets.base import Example
from repro.llm import SimulatedLLM


def correct_and_report(pipeline, example, database, initial_sql, annotator):
    outcome = pipeline.correct(
        example=example,
        database=database,
        initial_sql=initial_sql,
        annotator=annotator,
        max_rounds=2,
    )
    for record in outcome.rounds:
        print(f"  round {record.round_index} feedback: {record.feedback_text}")
        if record.highlight:
            print(f"    (highlighted: {record.highlight})")
        print(f"    revised: {record.sql_after}")
        print(f"    corrected: {record.corrected}")
    return outcome


def main() -> None:
    database = build_aep_database()
    llm = SimulatedLLM()
    model = Nl2SqlModel(llm=llm)  # zero-shot: the enterprise cold-start case
    assistant = Assistant(model)
    annotator = SimulatedAnnotator(
        database.schema, AnnotatorConfig(vague_rate=0.0, misaligned_rate=0.0)
    )
    pipeline = FisqlPipeline(model=model, llm=llm, routing=True)

    # -- 1. jargon value ------------------------------------------------------
    print("=" * 72)
    question = "How many live segments do we have?"
    example = Example(
        example_id="session-1",
        db_id="experience_platform",
        question=question,
        gold_sql="SELECT COUNT(*) FROM hkg_dim_segment WHERE status = 'active'",
    )
    print(f"User: {question}")
    response = assistant.answer(question, database)
    print(f"Assistant SQL: {response.sql}")
    print("('live' was silently ignored — every segment got counted)")
    correct_and_report(pipeline, example, database, response.sql, annotator)

    # -- 2. the activation join -----------------------------------------------
    print("=" * 72)
    question = "Which destinations is the 'ABC' segment activated to?"
    example = Example(
        example_id="session-2",
        db_id="experience_platform",
        question=question,
        gold_sql=(
            "SELECT T2.destinationname FROM hkg_fact_activation AS T1 "
            "JOIN hkg_dim_destination AS T2 ON T1.destinationid = "
            "T2.destinationid JOIN hkg_dim_segment AS T3 "
            "ON T1.segmentid = T3.segmentid WHERE T3.segmentname = 'ABC'"
        ),
    )
    print(f"User: {question}")
    response = assistant.answer(question, database)
    print(f"Assistant SQL: {response.sql}")
    print("('activated' was not understood — it listed every destination)")
    correct_and_report(pipeline, example, database, response.sql, annotator)

    # -- 3. highlight-grounded terse feedback (Figure 9) ------------------------
    print("=" * 72)
    question = "List the names of the datasets that are ready to use."
    example = Example(
        example_id="session-3",
        db_id="experience_platform",
        question=question,
        gold_sql=(
            "SELECT datasetname FROM hkg_dim_dataset WHERE status = 'active'"
        ),
    )
    terse_annotator = SimulatedAnnotator(
        database.schema, AnnotatorConfig(vague_rate=1.0, misaligned_rate=0.0)
    )
    print(f"User: {question}")
    response = assistant.answer(question, database)
    print(f"Assistant SQL: {response.sql}")

    print("Without highlights (terse feedback cannot be grounded):")
    plain = FisqlPipeline(model=model, llm=llm, routing=True, highlights=False)
    correct_and_report(plain, example, database, response.sql, terse_annotator)

    print("With highlights (the user marks the clause to change):")
    highlighted = FisqlPipeline(
        model=model, llm=llm, routing=True, highlights=True
    )
    correct_and_report(
        highlighted, example, database, response.sql, terse_annotator
    )


if __name__ == "__main__":
    main()
