#!/usr/bin/env python3
"""The Assistant chat experience, as a scripted conversation.

Uses :class:`repro.core.ChatSession` — the stateful ask/feedback loop the
paper's tool exposes. Run with ``--interactive`` to drive it yourself from
the terminal (type a question; prefix feedback with ``!``; ``quit`` exits).

Run:  python examples/assistant_chat.py
      python examples/assistant_chat.py --interactive
"""

import argparse

from repro.core import ChatSession, DemonstrationRetriever, Nl2SqlModel
from repro.datasets import build_aep_database, generate_aep_suite
from repro.llm import SimulatedLLM


def build_session() -> ChatSession:
    database = build_aep_database()
    _traffic, demos = generate_aep_suite(n_questions=10)
    model = Nl2SqlModel(
        llm=SimulatedLLM(), retriever=DemonstrationRetriever(demos)
    )
    return ChatSession(database, model)


def scripted(session: ChatSession) -> None:
    session.ask("How many audiences were created in January?")
    session.give_feedback("we are in 2024")
    session.ask("List the audiences created in June.")
    session.give_feedback("do not give descriptions")
    session.give_feedback("we are in 2024")
    print(session.transcript())


def interactive(session: ChatSession) -> None:
    print("Ask questions; prefix feedback with '!'; 'quit' to exit.")
    while True:
        try:
            line = input("> ").strip()
        except EOFError:
            return
        if not line:
            continue
        if line.lower() in ("quit", "exit"):
            return
        if line.startswith("!"):
            try:
                response = session.give_feedback(line[1:].strip())
            except Exception as exc:  # noqa: BLE001 - REPL surface
                print(f"(error: {exc})")
                continue
        else:
            response = session.ask(line)
        print(response.render())
        print(f"\n[Show Source] {response.sql}\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--interactive", action="store_true")
    args = parser.parse_args()
    session = build_session()
    if args.interactive:
        interactive(session)
    else:
        scripted(session)


if __name__ == "__main__":
    main()
