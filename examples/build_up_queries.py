#!/usr/bin/env python3
"""Future work (§5): building up a complex query through simple feedback.

The paper's concluding remarks propose letting users *construct* complex
SQL incrementally — ask a simple question first, then grow the query with
successive Add-type feedback. FISQL's anchored edits make this work with
no new machinery: each feedback round is routed, interpreted against the
current SQL, and applied as a typed AST edit.

Run:  python examples/build_up_queries.py
"""

from repro.core import FeedbackDemoStore, FeedbackRouter, Nl2SqlModel
from repro.datasets import build_aep_database
from repro.llm import SimulatedLLM, feedback_prompt


def main() -> None:
    database = build_aep_database()
    llm = SimulatedLLM()
    model = Nl2SqlModel(llm=llm)
    router = FeedbackRouter(llm)
    demo_store = FeedbackDemoStore.default()

    question = "List the names of all segments."
    prediction = model.predict(question, database)
    sql = prediction.sql
    print(f"User: {question}")
    print(f"  SQL: {sql}\n")

    refinements = [
        "only include segments whose status is 'active'",
        "also show the profile count",
        "order the names in ascending order.",
        "limit it to 5",
    ]

    for step, feedback in enumerate(refinements, start=1):
        feedback_type = router.route(feedback)
        prompt = feedback_prompt(
            schema=database.schema,
            question=question,
            previous_sql=sql,
            feedback=feedback,
            feedback_demos=demo_store.for_type(feedback_type),
            feedback_type=feedback_type,
            context_key=f"build-up:{step}",
        )
        completion = llm.complete(prompt)
        sql = completion.text
        print(f"User: {feedback}")
        print(f"  [{feedback_type}] {'; '.join(completion.notes)}")
        print(f"  SQL: {sql}\n")

    result = database.query(sql)
    print("Final result:")
    for row in result.rows:
        print(" ", row)


if __name__ == "__main__":
    main()
