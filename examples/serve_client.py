#!/usr/bin/env python3
"""The session server end-to-end: boot, converse over HTTP, drain.

Starts the :mod:`repro.serve` server in a thread on an ephemeral port,
drives a two-round ask → feedback → corrected conversation through
:class:`repro.serve.ServeClient` (a real socket, the same bytes a curl
user would see), then prints the server-side transcript and the
``/metrics`` run report before draining gracefully.

Run:  python examples/serve_client.py
"""

from repro import obs
from repro.core import DemonstrationRetriever
from repro.datasets import build_aep_database, generate_aep_suite
from repro.serve import CatalogEntry, ServeApp, ServeClient, start_in_thread


def build_app() -> ServeApp:
    """One hosted database (the AEP workload) with its RAG demo pool."""
    database = build_aep_database()
    _traffic, demos = generate_aep_suite(n_questions=10)
    catalog = {"aep": CatalogEntry(database, DemonstrationRetriever(demos))}
    return ServeApp(catalog)


def main() -> None:
    obs.enable()  # the server is born instrumented: /metrics is live
    app = build_app()
    server, _thread = start_in_thread(app)  # port 0 -> ephemeral
    client = ServeClient.connect(port=server.port)

    session = client.create_session(db="aep", tenant="demo")
    session_id = session["id"]
    print(f"opened session {session_id} on db={session['db']}\n")

    reply = client.ask(
        session_id, "How many audiences were created in January?"
    )
    print(f"[round 0] SQL: {reply['answer']['sql']}")

    # Round 1: the model assumed the wrong year; say so.
    reply = client.feedback(session_id, "we are in 2024")
    print(f"[round 1] SQL: {reply['answer']['sql']}")

    # Round 2: trim the projection.
    client.ask(session_id, "List the audiences created in June.")
    reply = client.feedback(session_id, "do not give descriptions")
    print(f"[round 2] SQL: {reply['answer']['sql']}")

    print("\n--- transcript (server side) " + "-" * 30)
    print(client.transcript(session_id)["transcript"])

    print("\n--- /healthz " + "-" * 46)
    print(client.healthz())

    print("\n--- /metrics " + "-" * 46)
    print(client.metrics())

    app.begin_drain()
    app.await_idle(timeout=5.0)
    server.shutdown()
    print("server drained and stopped.")


if __name__ == "__main__":
    main()
