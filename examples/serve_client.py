#!/usr/bin/env python3
"""The session server end-to-end: boot, converse over HTTP, drain.

Starts the :mod:`repro.serve` server in a thread on an ephemeral port,
drives a two-round ask → feedback → corrected conversation through
:class:`repro.serve.ServeClient` (a real socket, the same bytes a curl
user would see) with a caller-supplied ``X-Request-Id``, then prints the
server-side transcript, the ``/statusz`` telemetry view, and the
Prometheus ``/metrics`` exposition before draining gracefully.

Run:  python examples/serve_client.py
"""

from repro import obs
from repro.core import DemonstrationRetriever
from repro.datasets import build_aep_database, generate_aep_suite
from repro.serve import CatalogEntry, ServeApp, ServeClient, start_in_thread


def build_app() -> ServeApp:
    """One hosted database (the AEP workload) with its RAG demo pool."""
    database = build_aep_database()
    _traffic, demos = generate_aep_suite(n_questions=10)
    catalog = {"aep": CatalogEntry(database, DemonstrationRetriever(demos))}
    return ServeApp(catalog)


def main() -> None:
    obs.enable()  # the server is born instrumented: /metrics is live
    app = build_app()
    server, _thread = start_in_thread(app)  # port 0 -> ephemeral
    client = ServeClient.connect(port=server.port)

    session = client.create_session(db="aep", tenant="demo")
    session_id = session["id"]
    print(f"opened session {session_id} on db={session['db']}\n")

    reply = client.ask(
        session_id, "How many audiences were created in January?"
    )
    print(f"[round 0] SQL: {reply['answer']['sql']}")

    # Round 1: the model assumed the wrong year; say so — and tag the
    # request with our own correlation id, echoed back in the headers
    # and stamped on every span/log line it touches server-side.
    import json

    status, raw, headers = client.request_detailed(
        "POST",
        f"/sessions/{session_id}/feedback",
        {"feedback": "we are in 2024"},
        headers={"X-Request-Id": "example-feedback-1"},
    )
    assert status == 200
    reply = json.loads(raw)
    print(f"[round 1] SQL: {reply['answer']['sql']}")
    print(f"[round 1] X-Request-Id echoed: {headers.get('X-Request-Id')}")

    # Round 2: trim the projection.
    client.ask(session_id, "List the audiences created in June.")
    reply = client.feedback(session_id, "do not give descriptions")
    print(f"[round 2] SQL: {reply['answer']['sql']}")

    print("\n--- transcript (server side) " + "-" * 30)
    print(client.transcript(session_id)["transcript"])

    print("\n--- /healthz " + "-" * 46)
    print(client.healthz())

    print("\n--- /statusz " + "-" * 46)
    statusz = client.statusz()
    ask_window = statusz["telemetry"]["routes"]["ask"]["1m"]
    print(
        f"ask: {ask_window['count']} reqs, "
        f"p95 {ask_window['p95_ms']:.1f} ms (1m window)"
    )
    for tenant, view in statusz["telemetry"]["tenants"].items():
        slo = view["slo"]["1m"]
        print(
            f"tenant {tenant}: SLO attainment {slo['attainment']:.3f}, "
            f"burn {slo['burn_rate']:.2f}x"
        )

    print("\n--- /metrics " + "-" * 46)
    print(client.metrics())

    app.begin_drain()
    app.await_idle(timeout=5.0)
    server.shutdown()
    print("server drained and stopped.")


if __name__ == "__main__":
    main()
