"""Semantic answer cache wired through ``ServeApp``.

The load-bearing claim: a paraphrased repeat is served without the
NL2SQL model running at all — ``nl2sql.predictions`` stays flat while
``semcache.hit`` climbs — and the guardrails (feedback rounds, schema
fingerprint changes) provably bypass instead of serving stale SQL.
"""

import itertools

import pytest

from repro import obs
from repro.core import DemonstrationRetriever
from repro.datasets import build_aep_database, generate_aep_suite
from repro.semcache import SemanticAnswerCache
from repro.serve import CatalogEntry, ServeApp, SessionManager
from repro.serve.client import ServeClient
from repro.sql.schema import Column, Table
from repro.sql.types import DataType

CANONICAL = "How many audiences were created in January?"
# Count-intent paraphrases: a COUNT(*) answer may only be served to
# questions that actually ask for a count, never to a row listing.
PARAPHRASES = [
    "Count the audiences created in January",
    "what is the number of audiences created in january",
    "What is the total number of audiences created in January?",
]


@pytest.fixture
def semcache():
    return SemanticAnswerCache()


@pytest.fixture
def app(aep_catalog, sequential_ids, semcache):
    return ServeApp(
        aep_catalog,
        manager=SessionManager(id_factory=sequential_ids),
        semcache=semcache,
    )


@pytest.fixture
def client(app):
    return ServeClient.in_process(app)


def _counter_total(name):
    snapshot = obs.snapshot()
    return sum(
        counter["value"]
        for counter in snapshot.get("counters", [])
        if counter["name"] == name
    )


class TestParaphraseServing:
    def test_paraphrases_hit_without_model_calls(
        self, client, semcache, enabled_obs
    ):
        session = client.create_session(db="aep", tenant="team-a")
        first = client.ask(session["id"], CANONICAL)
        assert first["answer"]["sql"].startswith("SELECT COUNT(*)")
        assert _counter_total("nl2sql.predictions") == 1

        for paraphrase in PARAPHRASES[:2]:
            reply = client.ask(session["id"], paraphrase)
            assert reply["answer"]["sql"] == first["answer"]["sql"]

        # The proof: repeats never reached the model.
        assert _counter_total("nl2sql.predictions") == 1
        assert _counter_total("semcache.hit") == 2
        assert semcache.stats()["hits"] == 2
        assert semcache.stats()["misses"] == 1

    def test_cross_tenant_paraphrase_hits(self, client, semcache):
        a = client.create_session(db="aep", tenant="team-a")
        b = client.create_session(db="aep", tenant="team-b")
        first = client.ask(a["id"], CANONICAL)
        reply = client.ask(b["id"], PARAPHRASES[0])
        assert reply["answer"]["sql"] == first["answer"]["sql"]
        view = semcache.statusz_view()
        assert view["tenants"]["team-a"]["misses"] == 1
        assert view["tenants"]["team-b"]["hits"] == 1

    def test_disabled_app_has_no_semcache(self, aep_catalog, sequential_ids):
        app = ServeApp(
            aep_catalog,
            manager=SessionManager(id_factory=sequential_ids),
        )
        assert app.semcache is None
        client = ServeClient.in_process(app)
        assert "semcache" not in client.statusz()


class TestGuardrails:
    def test_feedback_bypasses_and_never_writes(self, client, semcache):
        session = client.create_session(db="aep", tenant="team-a")
        client.ask(session["id"], CANONICAL)
        assert len(semcache) == 1

        corrected = client.feedback(session["id"], "we are in 2024")
        assert "'2024-01-01'" in corrected["answer"]["sql"]
        assert semcache.stats()["bypasses"] == 1
        # The corrected SQL must not overwrite the cached answer.
        assert len(semcache) == 1
        fresh = client.create_session(db="aep", tenant="team-a")
        reply = client.ask(fresh["id"], CANONICAL)
        assert "'2023-01-01'" in reply["answer"]["sql"]
        assert semcache.stats()["hits"] == 1

    def test_schema_change_bypasses_and_invalidates(self, sequential_ids):
        database = build_aep_database()
        _traffic, demos = generate_aep_suite(n_questions=10)
        catalog = {"aep": CatalogEntry(database, DemonstrationRetriever(demos))}
        semcache = SemanticAnswerCache()
        app = ServeApp(
            catalog,
            manager=SessionManager(id_factory=sequential_ids),
            semcache=semcache,
        )
        client = ServeClient.in_process(app)
        session = client.create_session(db="aep", tenant="team-a")
        client.ask(session["id"], CANONICAL)
        assert len(semcache) == 1

        database.schema.add_table(
            Table(
                "audit_log",
                [Column("id", DataType.INTEGER, primary_key=True)],
            )
        )
        reply = client.ask(session["id"], "Show audiences created in January")
        assert reply["answer"]["sql"]
        assert semcache.stats()["invalidations"] == 1
        assert semcache.stats()["hits"] == 0
        # The invalidating round bypassed; the next one repopulates.
        client.ask(session["id"], "list the audiences created in january")
        assert len(semcache) == 1


class TestOperatorSurfaces:
    def test_statusz_reports_semcache_section(self, client, semcache):
        session = client.create_session(db="aep", tenant="team-a")
        client.ask(session["id"], CANONICAL)
        client.ask(session["id"], PARAPHRASES[0])

        payload = client.statusz()
        section = payload["semcache"]
        assert section["entries"] == 1
        assert section["hits"] == 1
        assert section["misses"] == 1
        fingerprints = section["fingerprints"]["experience_platform"]
        assert len(fingerprints) == 1
        assert len(fingerprints[0]) == 12
        assert section["tenants"]["team-a"]["hits"] == 1

    def test_metrics_exposes_semcache_families(self, client, enabled_obs):
        session = client.create_session(db="aep", tenant="team-a")
        client.ask(session["id"], CANONICAL)
        client.ask(session["id"], PARAPHRASES[0])

        text = client.metrics()
        assert "fisql_semcache_hit_total" in text
        assert "fisql_semcache_miss_total" in text
        assert "fisql_serve_semcache_hit_windowed" in text
        assert "fisql_nl2sql_predictions_total 1" in text

    def test_telemetry_rates_include_semcache(self, client):
        session = client.create_session(db="aep", tenant="team-a")
        client.ask(session["id"], CANONICAL)
        client.ask(session["id"], PARAPHRASES[0])
        rates = client.statusz()["telemetry"]["rates"]
        assert rates["1m"]["semcache_hit_rate"] == 0.5
        assert rates["1m"]["semcache_bypass_rate"] == 0.0
