"""Session persistence: eviction writes JSON, resume restores the chat."""

import itertools
import json

import pytest

from repro.serve.persistence import SESSION_SCHEMA_VERSION, SessionStore
from repro.serve.protocol import json_decode, json_encode
from repro.serve.server import ServeApp
from repro.serve.sessions import (
    SessionError,
    SessionManager,
    UnknownSessionError,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeChat:
    """Chat stand-in with the state()/restore_state persistence surface."""

    def __init__(self) -> None:
        self.turns: list = []

    def state(self) -> dict:
        return {"turns": list(self.turns), "question": None, "sql": None}

    def restore_state(self, state: dict) -> None:
        self.turns = list(state.get("turns", []))


def make_manager(store=None, **kwargs) -> SessionManager:
    counter = itertools.count(1)
    kwargs.setdefault("id_factory", lambda: f"s{next(counter)}")
    return SessionManager(store=store, **kwargs)


class TestSessionStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = SessionStore(tmp_path / "sessions")
        assert store.save("s1", "acme", "aep", {"turns": [1, 2]})
        document = store.load("s1")
        assert document["version"] == SESSION_SCHEMA_VERSION
        assert document["tenant"] == "acme"
        assert document["db"] == "aep"
        assert document["state"] == {"turns": [1, 2]}
        assert store.ids() == ["s1"]

    def test_pop_is_move_semantics(self, tmp_path):
        store = SessionStore(tmp_path)
        store.save("s1", "t", "db", {"turns": []})
        assert store.pop("s1") is not None
        assert store.pop("s1") is None
        assert store.ids() == []
        assert store.restored == 1

    def test_unsafe_ids_refused(self, tmp_path):
        store = SessionStore(tmp_path)
        assert store.save("../evil", "t", "db", {}) is False
        assert store.load("a/b") is None
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_or_stale_files_ignored(self, tmp_path):
        store = SessionStore(tmp_path)
        (tmp_path / "bad.json").write_text("{nope", encoding="utf-8")
        stale = {"version": SESSION_SCHEMA_VERSION + 1, "state": {}}
        (tmp_path / "old.json").write_text(json.dumps(stale), encoding="utf-8")
        assert store.load("bad") is None
        assert store.load("old") is None


class TestManagerPersistence:
    def test_ttl_eviction_persists_state(self, tmp_path):
        clock = FakeClock()
        store = SessionStore(tmp_path)
        manager = make_manager(store=store, ttl_seconds=10.0, clock=clock)
        record = manager.create(FakeChat, tenant="acme", db_id="aep")
        record.chat.turns.append({"role": "user", "text": "hi"})
        clock.advance(11.0)
        assert manager.sweep() == ["s1"]
        assert store.ids() == ["s1"]
        assert manager.stats()["persisted"] == 1
        saved = store.load("s1")
        assert saved["state"]["turns"] == [{"role": "user", "text": "hi"}]

    def test_lru_eviction_persists_state(self, tmp_path):
        clock = FakeClock()
        store = SessionStore(tmp_path)
        manager = make_manager(store=store, max_sessions=1, clock=clock)
        manager.create(FakeChat)
        clock.advance(1.0)
        manager.create(FakeChat)
        assert store.ids() == ["s1"]
        assert manager.evicted_lru == 1

    def test_resume_restores_and_consumes_file(self, tmp_path):
        clock = FakeClock()
        store = SessionStore(tmp_path)
        manager = make_manager(store=store, ttl_seconds=10.0, clock=clock)
        record = manager.create(FakeChat, tenant="acme", db_id="aep")
        record.chat.turns.append({"role": "user", "text": "hi"})
        clock.advance(11.0)
        manager.sweep()

        resumed = manager.create(
            FakeChat, tenant="acme", db_id="aep", resume_id="s1"
        )
        assert resumed.session_id == "s1"  # keeps the original id
        assert resumed.chat.turns == [{"role": "user", "text": "hi"}]
        assert store.ids() == []  # move semantics
        assert manager.stats()["restored"] == 1

    def test_resume_resident_session_conflicts(self, tmp_path):
        manager = make_manager(store=SessionStore(tmp_path))
        manager.create(FakeChat)
        with pytest.raises(SessionError, match="still resident"):
            manager.create(FakeChat, resume_id="s1")

    def test_resume_unknown_id(self, tmp_path):
        manager = make_manager(store=SessionStore(tmp_path))
        with pytest.raises(UnknownSessionError):
            manager.create(FakeChat, resume_id="ghost")

    def test_resume_without_store_configured(self):
        manager = make_manager()
        with pytest.raises(SessionError, match="not configured"):
            manager.create(FakeChat, resume_id="s1")

    def test_resume_mismatched_tenant_or_db(self, tmp_path):
        store = SessionStore(tmp_path)
        store.save("s9", "acme", "aep", {"turns": []})
        manager = make_manager(store=store)
        with pytest.raises(SessionError, match="tenant"):
            manager.create(FakeChat, tenant="rival", db_id="aep", resume_id="s9")
        with pytest.raises(SessionError, match="database"):
            manager.create(FakeChat, tenant="acme", db_id="other", resume_id="s9")
        assert store.ids() == ["s9"]  # failed resumes keep the file


class TestServeResume:
    def _app(self, aep_catalog, tmp_path, clock):
        counter = itertools.count(1)
        manager = SessionManager(
            store=SessionStore(tmp_path),
            ttl_seconds=10.0,
            clock=clock,
            id_factory=lambda: f"s{next(counter)}",
        )
        return ServeApp(aep_catalog, manager=manager, clock=clock)

    def _post(self, app, path, payload):
        status, _, body = app.handle("POST", path, json_encode(payload))
        return status, json_decode(body)

    def test_resume_continues_the_conversation(self, aep_catalog, tmp_path):
        clock = FakeClock()
        app = self._app(aep_catalog, tmp_path, clock)
        status, created = self._post(app, "/sessions", {"db": "aep"})
        assert status == 201
        session_id = created["session"]["id"]
        status, answer = self._post(
            app,
            f"/sessions/{session_id}/ask",
            {"question": "How many audiences were created in January?"},
        )
        assert status == 200
        turns_before = answer["turns"]

        clock.advance(11.0)
        app.manager.sweep()
        assert app.manager.ids() == []

        status, resumed = self._post(
            app, "/sessions", {"db": "aep", "resume": session_id}
        )
        assert status == 201
        assert resumed["restored"] is True
        assert resumed["session"]["id"] == session_id
        assert resumed["session"]["turns"] == turns_before
        # The restored session keeps answering feedback/questions.
        status, _ = self._post(
            app,
            f"/sessions/{session_id}/feedback",
            {"feedback": "we are in 2024"},
        )
        assert status == 200

    def test_resume_unknown_is_404(self, aep_catalog, tmp_path):
        app = self._app(aep_catalog, tmp_path, FakeClock())
        status, payload = self._post(
            app, "/sessions", {"db": "aep", "resume": "ghost"}
        )
        assert status == 404
        assert payload["error"]["code"] == "unknown_session"

    def test_resume_resident_is_conflict(self, aep_catalog, tmp_path):
        app = self._app(aep_catalog, tmp_path, FakeClock())
        _, created = self._post(app, "/sessions", {"db": "aep"})
        session_id = created["session"]["id"]
        status, payload = self._post(
            app, "/sessions", {"db": "aep", "resume": session_id}
        )
        assert status == 409
        assert payload["error"]["code"] == "conflict"
