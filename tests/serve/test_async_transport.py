"""The asyncio transport: same bytes as threads, plus loop-aware extras.

The async adapter must be invisible at the protocol level — identical
response bodies to the threaded transport for the same request sequence —
while adding what only an event loop can offer: loop-lag observability,
executor-saturation shedding before a worker is consumed, and per-tick
batch coalescing.
"""

from __future__ import annotations

import itertools
import json
import socket
import threading

import pytest

from repro import obs
from repro.llm.dispatch import LoopBatchingChatModel
from repro.serve import (
    SessionManager,
    ServeApp,
    ServeClient,
    ServeClientError,
    TenantPolicy,
    start_async_in_thread,
    start_in_thread,
)


def _fresh_app(aep_catalog, **kwargs) -> ServeApp:
    counter = itertools.count(1)
    return ServeApp(
        aep_catalog,
        manager=SessionManager(id_factory=lambda: f"s{next(counter)}"),
        **kwargs,
    )


@pytest.fixture
def async_handle(app):
    handle = start_async_in_thread(app)
    try:
        yield handle
    finally:
        handle.stop()


@pytest.fixture
def async_client(async_handle):
    return ServeClient.connect(port=async_handle.port)


def _conversation(client: ServeClient) -> list:
    """One scripted session; returns the raw (status, body) transcript."""
    exchanges = []
    for method, path, payload in (
        ("POST", "/sessions", {"db": "aep", "tenant": "default"}),
        (
            "POST",
            "/sessions/s1/ask",
            {"question": "How many audiences were created in January?"},
        ),
        ("POST", "/sessions/s1/feedback", {"feedback": "we are in 2024"}),
        ("GET", "/sessions/s1/transcript", None),
        ("GET", "/sessions", None),
        ("GET", "/healthz", None),
        ("DELETE", "/sessions/s1", None),
    ):
        exchanges.append(client.request_raw(method, path, payload))
    return exchanges


class TestTransportParity:
    def test_async_bytes_equal_threaded_bytes(self, aep_catalog):
        threaded_app = _fresh_app(aep_catalog)
        async_app = _fresh_app(aep_catalog)
        server, _thread = start_in_thread(threaded_app)
        handle = start_async_in_thread(async_app)
        try:
            threaded = _conversation(ServeClient.connect(port=server.port))
            asynced = _conversation(ServeClient.connect(port=handle.port))
        finally:
            server.shutdown()
            handle.stop()
        assert asynced == threaded


class TestCorrelationIds:
    def test_echoes_well_formed_request_id(self, async_client):
        _status, _body, headers = async_client.request_detailed(
            "GET", "/healthz", headers={"X-Request-Id": "req-parity-1"}
        )
        assert headers["X-Request-Id"] == "req-parity-1"

    def test_mints_when_absent(self, async_client):
        _status, _body, headers = async_client.request_detailed(
            "GET", "/healthz"
        )
        assert headers["X-Request-Id"]


class TestLoopObservability:
    def test_statusz_has_loop_section(self, async_client):
        payload = async_client.statusz()
        loop = payload["loop"]
        assert loop["transport"] == "async"
        assert loop["executor_workers"] >= 1
        assert loop["executor_queue"] == 0
        assert loop["loop_lag_ms"] >= 0.0
        assert loop["loop_lag_max_ms"] >= loop["loop_lag_ms"] or (
            loop["loop_lag_max_ms"] >= 0.0
        )

    def test_metrics_export_loop_gauges(self, async_client):
        text = async_client.metrics()
        assert 'fisql_serve_loop_lag_ms{stat="last"}' in text
        assert 'fisql_serve_loop_lag_ms{stat="max"}' in text
        assert "fisql_serve_executor_queue 0" in text

    def test_threaded_transport_has_no_loop_section(self, aep_catalog):
        app = _fresh_app(aep_catalog)
        server, _thread = start_in_thread(app)
        try:
            client = ServeClient.connect(port=server.port)
            assert "loop" not in client.statusz()
            assert "fisql_serve_loop_lag_ms" not in client.metrics()
        finally:
            server.shutdown()


class TestExecutorSaturation:
    def test_sheds_llm_posts_when_backlog_full(
        self, app, async_handle, async_client, enabled_obs
    ):
        session = async_client.create_session(db="aep")
        session_id = session["id"]
        # Force the saturation condition deterministically instead of
        # racing real slow requests against the executor.
        async_handle.server._inflight = 10_000
        try:
            with pytest.raises(ServeClientError) as excinfo:
                async_client.ask(session_id, "How many audiences?")
            assert excinfo.value.status == 503
            assert excinfo.value.payload["error"]["code"] == (
                "executor_saturated"
            )
            assert excinfo.value.retry_after is not None
            # Reads and probes are never shed at the transport.
            assert async_client.healthz()
            assert async_client.statusz()
        finally:
            async_handle.server._inflight = 0
        assert app.gate.stats()["shed"].get("executor_saturated") == 1
        assert async_handle.server.loop_snapshot()["sheds"] == 1
        # Back under the bound: asks are admitted again.
        assert async_client.ask(session_id, "How many audiences?")


class TestDrain:
    def test_drain_sheds_new_asks_and_keeps_probes(
        self, app, async_client
    ):
        session = async_client.create_session(db="aep")
        app.begin_drain()
        with pytest.raises(ServeClientError) as excinfo:
            async_client.ask(session["id"], "How many audiences?")
        assert excinfo.value.status == 503
        assert excinfo.value.payload["error"]["code"] == "draining"
        assert async_client.healthz()


class TestLoopBatching:
    def test_tenant_stack_uses_loop_batcher(self, aep_catalog):
        app = _fresh_app(
            aep_catalog,
            policy=TenantPolicy(batch_max=4, batch_wait_ms=10.0),
        )
        handle = start_async_in_thread(app)
        try:
            client = ServeClient.connect(port=handle.port)
            session = client.create_session(db="aep")
            session_id = session["id"]

            questions = [
                "How many audiences were created in January?",
                "How many segments were created in January?",
                "How many audiences were created in March?",
                "How many destinations were created in January?",
            ]
            results = [None] * len(questions)

            def ask(index: int) -> None:
                results[index] = client.ask(session_id, questions[index])

            threads = [
                threading.Thread(target=ask, args=(index,))
                for index in range(len(questions))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(result is not None for result in results)

            model = app._tenant_llms["default"]
            assert isinstance(model, LoopBatchingChatModel)
            assert model.dispatches >= 1
            assert model.queued == 0
        finally:
            handle.stop()

    def test_batcher_drains_with_the_app(self, aep_catalog):
        app = _fresh_app(
            aep_catalog,
            policy=TenantPolicy(batch_max=4, batch_wait_ms=10.0),
        )
        handle = start_async_in_thread(app)
        try:
            client = ServeClient.connect(port=handle.port)
            session = client.create_session(db="aep")
            client.ask(session["id"], "How many audiences?")
            app.begin_drain()
            model = app._tenant_llms["default"]
            assert model.draining
            assert app.await_idle(timeout=5.0)
        finally:
            handle.stop()


class TestHttpEdges:
    def test_malformed_request_line_gets_400(self, async_handle):
        with socket.create_connection(
            ("127.0.0.1", async_handle.port), timeout=10
        ) as sock:
            sock.sendall(b"NONSENSE\r\n\r\n")
            response = sock.recv(65536)
        assert response.startswith(b"HTTP/1.1 400 ")

    def test_bad_content_length_gets_400(self, async_handle):
        with socket.create_connection(
            ("127.0.0.1", async_handle.port), timeout=10
        ) as sock:
            sock.sendall(
                b"POST /sessions HTTP/1.1\r\n"
                b"Content-Length: banana\r\n\r\n"
            )
            response = sock.recv(65536)
        assert response.startswith(b"HTTP/1.1 400 ")

    def test_keep_alive_serves_multiple_requests(self, async_handle):
        with socket.create_connection(
            ("127.0.0.1", async_handle.port), timeout=10
        ) as sock:
            for _round in range(2):
                sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                head = b""
                while b"\r\n\r\n" not in head:
                    head += sock.recv(65536)
                header_text, _sep, rest = head.partition(b"\r\n\r\n")
                length = int(
                    [
                        line.split(b":")[1]
                        for line in header_text.split(b"\r\n")
                        if line.lower().startswith(b"content-length")
                    ][0]
                )
                body = rest
                while len(body) < length:
                    body += sock.recv(65536)
                assert json.loads(body)["status"] == "ok"
