"""SessionManager: locks, TTL sweep, LRU eviction, admission gate."""

import itertools
import threading

import pytest

from repro.serve.sessions import (
    SessionLimitError,
    SessionManager,
    UnknownSessionError,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_manager(**kwargs) -> SessionManager:
    counter = itertools.count(1)
    kwargs.setdefault("id_factory", lambda: f"s{next(counter)}")
    return SessionManager(**kwargs)


def dummy_chat():
    return object()


class TestBasics:
    def test_create_and_acquire(self):
        manager = make_manager()
        record = manager.create(dummy_chat, tenant="t", db_id="db")
        assert record.session_id == "s1"
        with manager.acquire("s1") as held:
            assert held is record
        assert record.requests == 1

    def test_unknown_session(self):
        manager = make_manager()
        with pytest.raises(UnknownSessionError):
            with manager.acquire("nope"):
                pass

    def test_remove(self):
        manager = make_manager()
        manager.create(dummy_chat)
        assert manager.remove("s1") is True
        assert manager.remove("s1") is False
        assert len(manager) == 0

    def test_ids_and_stats(self):
        manager = make_manager(max_sessions=4)
        manager.create(dummy_chat)
        manager.create(dummy_chat)
        assert manager.ids() == ["s1", "s2"]
        stats = manager.stats()
        assert stats["resident"] == 2
        assert stats["created"] == 2
        assert stats["max_sessions"] == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionManager(max_sessions=0)
        with pytest.raises(ValueError):
            SessionManager(ttl_seconds=0)


class TestTtl:
    def test_expired_sessions_swept(self):
        clock = FakeClock()
        manager = make_manager(ttl_seconds=10.0, clock=clock)
        manager.create(dummy_chat)
        clock.advance(11.0)
        assert manager.sweep() == ["s1"]
        assert len(manager) == 0
        assert manager.evicted_ttl == 1

    def test_sweep_happens_on_create(self):
        clock = FakeClock()
        manager = make_manager(ttl_seconds=10.0, clock=clock)
        manager.create(dummy_chat)
        clock.advance(11.0)
        manager.create(dummy_chat)
        assert manager.ids() == ["s2"]

    def test_recent_use_defers_expiry(self):
        clock = FakeClock()
        manager = make_manager(ttl_seconds=10.0, clock=clock)
        manager.create(dummy_chat)
        clock.advance(8.0)
        with manager.acquire("s1"):
            pass  # touches last_used_at
        clock.advance(8.0)
        assert manager.sweep() == []  # only 8s idle since the touch

    def test_busy_session_not_swept(self):
        clock = FakeClock()
        manager = make_manager(ttl_seconds=10.0, clock=clock)
        record = manager.create(dummy_chat)
        clock.advance(100.0)
        with record.lock:
            assert manager.sweep() == []
        assert manager.sweep() == ["s1"]


class TestLruAndAdmission:
    def test_lru_eviction_at_capacity(self):
        clock = FakeClock()
        manager = make_manager(max_sessions=2, clock=clock)
        manager.create(dummy_chat)
        clock.advance(1.0)
        manager.create(dummy_chat)
        clock.advance(1.0)
        with manager.acquire("s1"):
            pass  # s1 now most recently used; s2 is the LRU
        manager.create(dummy_chat)
        assert sorted(manager.ids()) == ["s1", "s3"]
        assert manager.evicted_lru == 1

    def test_admission_rejected_when_all_busy(self):
        manager = make_manager(max_sessions=1)
        record = manager.create(dummy_chat)
        with record.lock:
            with pytest.raises(SessionLimitError):
                manager.create(dummy_chat)
        assert manager.rejected == 1
        # Once idle again, the LRU path admits the newcomer.
        manager.create(dummy_chat)
        assert len(manager) == 1

    def test_busy_session_never_lru_victim(self):
        clock = FakeClock()
        manager = make_manager(max_sessions=2, clock=clock)
        oldest = manager.create(dummy_chat)
        clock.advance(1.0)
        manager.create(dummy_chat)
        with oldest.lock:  # oldest is busy: s2 must be the victim
            manager.create(dummy_chat)
        assert sorted(manager.ids()) == ["s1", "s3"]


class TestConcurrency:
    def test_acquire_serializes_per_session(self):
        manager = make_manager()
        manager.create(dummy_chat)
        order = []

        def worker(tag):
            with manager.acquire("s1"):
                order.append(f"{tag}-in")
                order.append(f"{tag}-out")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Entries must come in strict in/out pairs — no interleaving.
        assert len(order) == 16
        for i in range(0, 16, 2):
            assert order[i].endswith("-in")
            assert order[i + 1] == order[i].replace("-in", "-out")

    def test_eviction_race_raises_unknown(self):
        # A session evicted between lookup and lock acquisition must not
        # be handed out: hold the session lock, let a second acquire
        # block on it, evict the session, then release.
        manager = make_manager()
        record = manager.create(dummy_chat)
        blocked_result = []

        def blocked_acquire():
            try:
                with manager.acquire("s1"):
                    blocked_result.append("acquired")
            except UnknownSessionError:
                blocked_result.append("unknown")

        record.lock.acquire()
        thread = threading.Thread(target=blocked_acquire)
        thread.start()
        # Give the worker time to pass the lookup and park on the lock
        # (if it hasn't yet, it fails on the lookup path — same outcome).
        import time

        time.sleep(0.05)
        manager.remove("s1")
        record.lock.release()
        thread.join(timeout=5)
        assert blocked_result == ["unknown"]

    def test_duplicate_id_factory_rejected(self):
        manager = SessionManager(id_factory=lambda: "same")
        manager.create(dummy_chat)
        with pytest.raises(Exception):
            manager.create(dummy_chat)
