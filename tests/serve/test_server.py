"""ServeApp routes: happy paths, structured errors, tenants, drain."""

import itertools
import threading
import time

import pytest

from repro.errors import TransientLLMError
from repro.llm.simulated import SimulatedLLM
from repro.resilience import CircuitBreaker, ResilientChatModel, RetryPolicy
from repro.serve import (
    ServeApp,
    ServeClient,
    ServeClientError,
    SessionManager,
)


@pytest.fixture
def client(app):
    return ServeClient.in_process(app)


class TestHappyPath:
    def test_create_ask_feedback_transcript(self, client):
        session = client.create_session(db="aep", tenant="team-a")
        assert session["db"] == "aep"
        assert session["tenant"] == "team-a"
        assert session["turns"] == 0

        reply = client.ask(
            session["id"], "How many audiences were created in January?"
        )
        assert reply["answer"]["sql"].startswith("SELECT COUNT(*)")
        assert "'2023-01-01'" in reply["answer"]["sql"]
        assert reply["turns"] == 2

        revised = client.feedback(session["id"], "we are in 2024")
        assert "'2024-01-01'" in revised["answer"]["sql"]
        assert revised["turns"] == 4

        transcript = client.transcript(session["id"])
        assert len(transcript["turns"]) == 4
        assert transcript["turns"][0]["role"] == "user"
        assert "we are in 2024" in transcript["transcript"]

    def test_session_info_and_list(self, client):
        session = client.create_session(db="aep")
        assert client.list_sessions() == [session["id"]]
        info = client.session_info(session["id"])
        assert info["id"] == session["id"]

    def test_delete_session(self, client):
        session = client.create_session(db="aep")
        client.delete_session(session["id"])
        assert client.list_sessions() == []
        with pytest.raises(ServeClientError) as excinfo:
            client.ask(session["id"], "anything?")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_session"

    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["databases"] == 1
        assert health["sessions"]["resident"] == 0

    def test_metrics_disabled_still_valid_exposition(self, client):
        # Satellite fix: with observability off the page must stay valid
        # Prometheus text (scrapers choke on prose), not a prose note.
        text = client.metrics()
        assert "fisql_serve_up 1" in text
        assert "# TYPE fisql_serve_up gauge" in text
        assert "observability disabled" not in text

    def test_metrics_enabled_exposition(self, client, enabled_obs):
        session = client.create_session(db="aep")
        client.ask(session["id"], "How many audiences are there?")
        text = client.metrics()
        assert "fisql_serve_up 1" in text
        assert "# TYPE fisql_serve_requests_total counter" in text
        assert 'fisql_serve_requests_total{route="ask",status="200"} 1' in text
        assert "# TYPE fisql_serve_latency_ms summary" in text


class TestStructuredErrors:
    def test_invalid_json_body(self, app):
        status, _ctype, body = app.handle("POST", "/sessions", b"{oops")
        assert status == 400
        assert b'"invalid_json"' in body

    def test_missing_field(self, app):
        status, _ctype, body = app.handle("POST", "/sessions", b"{}")
        assert status == 400
        assert b'"invalid_request"' in body
        assert b'"db"' in body

    def test_unknown_field(self, client):
        status, body = client.request_raw(
            "POST", "/sessions", {"db": "aep", "nope": 1}
        )
        assert status == 400
        assert b'"invalid_request"' in body

    def test_unknown_database(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.create_session(db="missing-db")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_database"

    def test_unknown_route(self, client):
        status, body = client.request_raw("GET", "/bogus")
        assert status == 404
        assert b'"not_found"' in body

    def test_method_not_allowed(self, client):
        status, body = client.request_raw("DELETE", "/healthz")
        assert status == 405
        assert b'"method_not_allowed"' in body

    def test_feedback_before_ask_conflicts(self, client):
        session = client.create_session(db="aep")
        with pytest.raises(ServeClientError) as excinfo:
            client.feedback(session["id"], "this is wrong")
        assert excinfo.value.status == 409
        assert excinfo.value.code == "no_question"

    def test_capacity_rejection(self, aep_catalog):
        counter = itertools.count(1)
        app = ServeApp(
            aep_catalog,
            manager=SessionManager(
                max_sessions=1, id_factory=lambda: f"s{next(counter)}"
            ),
        )
        client = ServeClient.in_process(app)
        first = client.create_session(db="aep")
        record = app.manager._records[first["id"]]
        with record.lock:  # resident and busy: nothing evictable
            with pytest.raises(ServeClientError) as excinfo:
                client.create_session(db="aep")
        assert excinfo.value.status == 503
        assert excinfo.value.code == "capacity"


class _FailingLLM:
    def complete(self, prompt):
        raise TransientLLMError("synthetic backend outage")


class TestTenantIsolation:
    def test_one_tenants_breaker_does_not_starve_others(self, aep_catalog):
        def llm_factory(tenant):
            if tenant == "unlucky":
                return ResilientChatModel(
                    _FailingLLM(),
                    retry=RetryPolicy(max_retries=0, base_backoff_ms=0.0),
                    breaker=CircuitBreaker(
                        failure_threshold=1, reset_after_ms=60_000.0
                    ),
                )
            return SimulatedLLM()

        app = ServeApp(aep_catalog, llm_factory=llm_factory)
        client = ServeClient.in_process(app)
        bad = client.create_session(db="aep", tenant="unlucky")
        good = client.create_session(db="aep", tenant="steady")

        # First failing call surfaces as a 502 and trips the breaker...
        with pytest.raises(ServeClientError) as excinfo:
            client.ask(bad["id"], "How many audiences are there?")
        assert excinfo.value.status == 502
        assert excinfo.value.code == "llm_unavailable"

        # ...after which the tenant fails fast with circuit_open.
        with pytest.raises(ServeClientError) as excinfo:
            client.ask(bad["id"], "How many audiences are there?")
        assert excinfo.value.status == 503
        assert excinfo.value.code == "circuit_open"

        # The other tenant is completely unaffected.
        reply = client.ask(good["id"], "How many audiences are there?")
        assert reply["answer"]["sql"].startswith("SELECT")

    def test_tenant_stacks_are_cached(self, app):
        first = app.llm_for_tenant("t1")
        assert app.llm_for_tenant("t1") is first
        assert app.llm_for_tenant("t2") is not first


class TestDrain:
    def test_drain_refuses_new_work_and_finishes_inflight(self, app):
        client = ServeClient.in_process(app)
        session = client.create_session(db="aep")
        record = app.manager._records[session["id"]]

        results = []

        def inflight_ask():
            try:
                reply = client.ask(
                    session["id"], "How many audiences are there?"
                )
                results.append(reply["answer"]["sql"])
            except ServeClientError as error:
                results.append(error)

        # Park an ask on the session lock, then start draining.
        record.lock.acquire()
        thread = threading.Thread(target=inflight_ask)
        thread.start()
        deadline = time.monotonic() + 5.0
        while app._inflight == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert app._inflight == 1

        app.begin_drain()
        assert client.healthz()["status"] == "draining"
        with pytest.raises(ServeClientError) as excinfo:
            client.create_session(db="aep")
        assert excinfo.value.status == 503
        assert excinfo.value.code == "draining"

        # The in-flight request is allowed to finish...
        record.lock.release()
        thread.join(timeout=10)
        assert len(results) == 1
        assert isinstance(results[0], str) and results[0].startswith("SELECT")
        # ...and await_idle observes quiescence.
        assert app.await_idle(timeout=5.0) is True

    def test_reads_still_served_while_draining(self, client, app):
        session = client.create_session(db="aep")
        app.begin_drain()
        transcript = client.transcript(session["id"])
        assert transcript["session"]["id"] == session["id"]
        assert client.healthz()["status"] == "draining"
