"""Protocol layer: codec canonicality, request validation, views."""

import json

import pytest

from repro.core.assistant import AssistantResponse
from repro.core.chat import ChatTurn
from repro.core.nl2sql import Nl2SqlPrediction
from repro.serve.protocol import (
    AskRequest,
    CreateSessionRequest,
    FeedbackRequest,
    ProtocolError,
    answer_view,
    error_payload,
    json_decode,
    json_encode,
    turn_view,
)
from repro.sql.executor import QueryResult


class TestCodec:
    def test_roundtrip(self):
        payload = {"b": 1, "a": {"nested": [1, 2, None]}}
        assert json_decode(json_encode(payload)) == payload

    def test_canonical_key_order(self):
        a = json_encode({"z": 1, "a": 2})
        b = json_encode({"a": 2, "z": 1})
        assert a == b
        assert a == b'{"a":2,"z":1}'

    def test_decode_rejects_empty(self):
        with pytest.raises(ProtocolError) as excinfo:
            json_decode(b"")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid_json"

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError) as excinfo:
            json_decode(b"{not json")
        assert excinfo.value.code == "invalid_json"

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError) as excinfo:
            json_decode(b"[1,2,3]")
        assert excinfo.value.code == "invalid_json"


class TestRequestValidation:
    def test_create_session_defaults(self):
        request = CreateSessionRequest.from_payload({"db": "aep"})
        assert request.tenant == "default"
        assert request.routing is True

    def test_create_session_full(self):
        request = CreateSessionRequest.from_payload(
            {"db": "aep", "tenant": "team-a", "routing": False}
        )
        assert (request.db, request.tenant, request.routing) == (
            "aep",
            "team-a",
            False,
        )

    def test_missing_required_field(self):
        with pytest.raises(ProtocolError) as excinfo:
            CreateSessionRequest.from_payload({})
        error = excinfo.value
        assert error.status == 400
        assert error.code == "invalid_request"
        assert error.detail["field"] == "db"

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            AskRequest.from_payload({"question": "q", "bogus": 1})
        assert excinfo.value.detail["fields"] == ["bogus"]

    def test_wrong_type_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            AskRequest.from_payload({"question": 42})
        assert "must be str" in str(excinfo.value)

    def test_bool_is_not_a_string(self):
        with pytest.raises(ProtocolError):
            CreateSessionRequest.from_payload({"db": True})

    def test_empty_string_rejected(self):
        with pytest.raises(ProtocolError):
            AskRequest.from_payload({"question": "   "})

    def test_feedback_highlight_optional(self):
        request = FeedbackRequest.from_payload({"feedback": "fix it"})
        assert request.highlight is None
        request = FeedbackRequest.from_payload(
            {"feedback": "fix it", "highlight": "WHERE x = 1"}
        )
        assert request.highlight == "WHERE x = 1"

    def test_feedback_highlight_type_checked(self):
        with pytest.raises(ProtocolError):
            FeedbackRequest.from_payload({"feedback": "f", "highlight": 3})


class TestViews:
    def _response(self, with_result: bool) -> AssistantResponse:
        result = (
            QueryResult(columns=["n"], rows=[(3,)]) if with_result else None
        )
        return AssistantResponse(
            question="how many?",
            prediction=Nl2SqlPrediction(sql="SELECT COUNT(*) FROM t"),
            result=result,
            reformulation="Finds the count of the t records.",
            explanation="- count the rows.",
            error=None if with_result else "the generated SQL could not be parsed",
        )

    def test_answer_view_with_result(self):
        view = answer_view(self._response(with_result=True))
        assert view["sql"] == "SELECT COUNT(*) FROM t"
        assert view["result"] == {"columns": ["n"], "rows": [[3]]}
        assert view["error"] is None
        assert view["text"]
        json.loads(json_encode(view))  # JSON-serializable end to end

    def test_answer_view_with_error(self):
        view = answer_view(self._response(with_result=False))
        assert view["result"] is None
        assert "could not be parsed" in view["error"]

    def test_turn_view(self):
        turn = ChatTurn(role="user", text="hi", highlight="x = 1")
        assert turn_view(turn) == {
            "role": "user",
            "text": "hi",
            "sql": None,
            "highlight": "x = 1",
        }

    def test_error_payload_shape(self):
        payload = error_payload("capacity", "full", limit=4)
        assert payload == {
            "error": {"code": "capacity", "message": "full", "limit": 4}
        }

    def test_protocol_error_payload(self):
        error = ProtocolError(404, "unknown_db", "nope", {"db": "x"})
        assert error.payload() == {
            "error": {"code": "unknown_db", "message": "nope", "db": "x"}
        }
