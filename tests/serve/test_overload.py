"""Overload protection: the shed gate, 429/503 mapping, readyz, drain."""

import threading

import pytest

from repro.errors import OverloadError
from repro.llm.dispatch import BatchingChatModel
from repro.llm.interface import Completion, Prompt
from repro.serve import (
    LoadShedGate,
    ServeApp,
    ServeClient,
    ServeClientError,
    SessionManager,
    TenantPolicy,
)
from repro.serve.protocol import json_decode, json_encode


class FakeClock:
    def __init__(self, tick: float = 0.0) -> None:
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick
        return value

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLoadShedGate:
    def test_unbounded_by_default(self):
        gate = LoadShedGate()
        with gate.admit("t"):
            with gate.admit("t"):
                assert gate.inflight() == 2
        assert gate.inflight() == 0

    def test_global_cap_sheds_overloaded(self):
        gate = LoadShedGate(max_inflight=1)
        with gate.admit("a"):
            with pytest.raises(OverloadError) as excinfo:
                with gate.admit("b"):
                    pass
        assert excinfo.value.reason == "overloaded"
        # The slot freed: admission works again.
        with gate.admit("b"):
            pass
        assert gate.stats()["shed"] == {"overloaded": 1}

    def test_tenant_cap_isolates_tenants(self):
        gate = LoadShedGate(max_inflight_per_tenant=1)
        with gate.admit("noisy"):
            with pytest.raises(OverloadError) as excinfo:
                with gate.admit("noisy"):
                    pass
            assert excinfo.value.reason == "tenant_overloaded"
            with gate.admit("quiet"):  # other tenants unaffected
                assert gate.inflight("quiet") == 1

    def test_shed_request_releases_no_slot(self):
        gate = LoadShedGate(max_inflight=1)
        with gate.admit("a"):
            for _ in range(3):
                with pytest.raises(OverloadError):
                    with gate.admit("a"):
                        pass
            assert gate.inflight() == 1

    def test_deadline(self):
        clock = FakeClock()
        gate = LoadShedGate(deadline_ms=100.0, clock=clock)
        arrived = clock()
        clock.advance(0.05)
        gate.check_deadline(arrived)  # 50ms: fine
        clock.advance(0.1)
        with pytest.raises(OverloadError) as excinfo:
            gate.check_deadline(arrived)
        assert excinfo.value.reason == "deadline_exceeded"

    def test_no_deadline_never_sheds(self):
        gate = LoadShedGate()
        gate.check_deadline(-1e9)

    def test_stats(self):
        gate = LoadShedGate(max_inflight=4, max_inflight_per_tenant=2)
        with gate.admit("t"):
            stats = gate.stats()
        assert stats["inflight"] == 1
        assert stats["max_inflight"] == 4
        assert stats["max_inflight_per_tenant"] == 2
        assert stats["admitted"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadShedGate(max_inflight=0)
        with pytest.raises(ValueError):
            LoadShedGate(max_inflight_per_tenant=0)
        with pytest.raises(ValueError):
            LoadShedGate(deadline_ms=0)

    def test_overload_error_is_not_llm_error(self):
        # Retry policies must never burn attempts on shed requests.
        from repro.errors import LLMError

        assert not issubclass(OverloadError, LLMError)


def _make_app(aep_catalog, sequential_ids, **policy_kwargs):
    clock = policy_kwargs.pop("clock", None)
    kwargs = {"manager": SessionManager(id_factory=sequential_ids)}
    if clock is not None:
        kwargs["clock"] = clock
    return ServeApp(
        aep_catalog,
        policy=TenantPolicy(**policy_kwargs),
        **kwargs,
    )


def _ask_status(app, session_id):
    status, _, body = app.handle(
        "POST",
        f"/sessions/{session_id}/ask",
        json_encode({"question": "How many audiences are there?"}),
    )
    return status, json_decode(body)


class TestServerSheds:
    def test_global_overload_is_503(self, aep_catalog, sequential_ids):
        app = _make_app(aep_catalog, sequential_ids, max_inflight_total=1)
        client = ServeClient.in_process(app)
        session = client.create_session(db="aep", tenant="a")
        with app.gate.admit("elsewhere"):
            status, payload = _ask_status(app, session["id"])
        assert status == 503
        assert payload["error"]["code"] == "overloaded"
        assert payload["error"]["retryable"] is True
        # Slot released: the same ask now succeeds.
        status, _ = _ask_status(app, session["id"])
        assert status == 200

    def test_tenant_overload_is_429(self, aep_catalog, sequential_ids):
        app = _make_app(
            aep_catalog, sequential_ids, max_inflight_per_tenant=1
        )
        client = ServeClient.in_process(app)
        session = client.create_session(db="aep", tenant="noisy")
        with app.gate.admit("noisy"):
            status, payload = _ask_status(app, session["id"])
        assert status == 429
        assert payload["error"]["code"] == "tenant_overloaded"
        assert payload["error"]["retryable"] is True

    def test_other_tenant_unaffected(self, aep_catalog, sequential_ids):
        app = _make_app(
            aep_catalog, sequential_ids, max_inflight_per_tenant=1
        )
        client = ServeClient.in_process(app)
        quiet = client.create_session(db="aep", tenant="quiet")
        with app.gate.admit("noisy"):
            status, _ = _ask_status(app, quiet["id"])
        assert status == 200

    def test_deadline_exceeded_is_503(self, aep_catalog, sequential_ids):
        # Every clock reading advances 200ms: by the time the post-lock
        # deadline check reads the clock, the request has "waited" past
        # its 100ms deadline without any real sleeping.
        clock = FakeClock(tick=0.2)
        app = _make_app(
            aep_catalog,
            sequential_ids,
            request_deadline_ms=100.0,
            clock=clock,
        )
        client = ServeClient.in_process(app)
        session = client.create_session(db="aep")
        status, payload = _ask_status(app, session["id"])
        assert status == 503
        assert payload["error"]["code"] == "deadline_exceeded"

    def test_unknown_session_still_404(self, aep_catalog, sequential_ids):
        app = _make_app(aep_catalog, sequential_ids, max_inflight_total=8)
        status, payload = _ask_status(app, "ghost")
        assert status == 404
        assert payload["error"]["code"] == "unknown_session"


class TestReadyz:
    def test_ready_when_serving(self, aep_catalog, sequential_ids):
        app = _make_app(aep_catalog, sequential_ids, max_inflight_total=4)
        status, _, body = app.handle("GET", "/readyz")
        payload = json_decode(body)
        assert status == 200
        assert payload["ready"] is True
        assert payload["gate"]["max_inflight"] == 4

    def test_not_ready_while_draining(self, aep_catalog, sequential_ids):
        app = _make_app(aep_catalog, sequential_ids)
        app.begin_drain()
        status, _, body = app.handle("GET", "/readyz")
        payload = json_decode(body)
        assert status == 503
        assert payload["ready"] is False
        assert payload["draining"] is True

    def test_reports_breaker_states(self, aep_catalog, sequential_ids):
        app = _make_app(aep_catalog, sequential_ids)
        client = ServeClient.in_process(app)
        client.create_session(db="aep", tenant="team-a")
        _, _, body = app.handle("GET", "/readyz")
        assert json_decode(body)["breakers"] == {"team-a": "closed"}


class _GatedLLM:
    """Blocks every completion until released; records what it served."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.served = []

    def complete(self, prompt: Prompt) -> Completion:
        assert self.release.wait(timeout=10)
        self.served.append(prompt.text)
        return Completion(text=prompt.text.upper())


class TestBatcherDrain:
    def test_inflight_batched_request_completes_during_drain(self):
        inner = _GatedLLM()
        model = BatchingChatModel(inner, max_batch=4, max_wait_ms=5)
        results = []

        def worker():
            results.append(
                model.complete(Prompt(kind="nl2sql", text="inflight"))
            )

        thread = threading.Thread(target=worker)
        thread.start()
        # The enqueued prompt is mid-batch when the drain begins.
        model.begin_drain()
        with pytest.raises(OverloadError) as excinfo:
            model.complete(Prompt(kind="nl2sql", text="late"))
        assert excinfo.value.reason == "draining"
        inner.release.set()
        thread.join(timeout=10)
        assert [r.text for r in results] == ["INFLIGHT"]
        assert inner.served == ["inflight"]  # the late prompt never ran
        assert model.await_idle(timeout=10)
        assert model.shed == 1

    def test_queue_cap_sheds_queue_full(self):
        inner = _GatedLLM()
        model = BatchingChatModel(
            inner, max_batch=8, max_wait_ms=50, max_queue=1
        )
        started = threading.Event()

        def worker():
            started.set()
            model.complete(Prompt(kind="nl2sql", text="first"))

        thread = threading.Thread(target=worker)
        thread.start()
        started.wait(timeout=10)
        # Wait for the first prompt to actually occupy the queue slot.
        deadline = threading.Event()
        for _ in range(200):
            if model.queued:
                break
            deadline.wait(0.005)
        with pytest.raises(OverloadError) as excinfo:
            model.complete(Prompt(kind="nl2sql", text="second"))
        assert excinfo.value.reason == "queue_full"
        inner.release.set()
        thread.join(timeout=10)

    def test_app_drain_propagates_to_tenant_batchers(
        self, aep_catalog, sequential_ids
    ):
        app = ServeApp(
            aep_catalog,
            manager=SessionManager(id_factory=sequential_ids),
            policy=TenantPolicy(batch_max=4, batch_wait_ms=1.0),
        )
        client = ServeClient.in_process(app)
        session = client.create_session(db="aep", tenant="team-a")
        client.ask(session["id"], "How many audiences are there?")
        batcher = app.llm_for_tenant("team-a")
        assert isinstance(batcher, BatchingChatModel)
        assert not batcher.draining
        app.begin_drain()
        assert batcher.draining
        with pytest.raises(ServeClientError) as excinfo:
            client.ask(session["id"], "Another?")
        assert excinfo.value.status == 503
        assert excinfo.value.code == "draining"
