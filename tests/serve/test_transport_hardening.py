"""Transport hardening against hostile peers, on both transports.

The async transport always had a real parser with edge handling
(``test_async_transport.TestHttpEdges``); these tests pin the matching
defenses on the threaded transport — bad/negative ``Content-Length``,
oversized declarations, torn bodies, stalled reads — and the hardening
flags (``read_timeout_ms``, ``max_body_bytes``) on both. The probes are
the real attack injectors from :mod:`repro.chaos.transport`, so the
scenarios and the test suite exercise identical wire traffic.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.chaos.transport import oversized_body, slow_loris, torn_body
from repro.serve import (
    ServeClient,
    start_async_in_thread,
    start_in_thread,
)
from repro.serve.server import DEFAULT_MAX_BODY_BYTES


@pytest.fixture
def threaded(app):
    """A hardened threaded server: tight read deadline, small body cap."""
    server, _thread = start_in_thread(
        app, read_timeout_ms=300.0, max_body_bytes=2048
    )
    try:
        yield server
    finally:
        server.shutdown()


@pytest.fixture
def async_hardened(app):
    handle = start_async_in_thread(
        app, read_timeout_ms=300.0, max_body_bytes=2048
    )
    try:
        yield handle
    finally:
        handle.stop()


def _raw(port: int, request: bytes) -> bytes:
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(request)
        response = b""
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                response += chunk
        except (socket.timeout, OSError):
            pass
        return response


class TestThreadedEdges:
    """Mirrors TestHttpEdges from the async suite, threaded transport."""

    def test_bad_content_length_gets_400(self, threaded):
        response = _raw(
            threaded.port,
            b"POST /sessions HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        )
        assert b" 400 " in response.split(b"\r\n", 1)[0]
        assert b"bad_content_length" in response

    def test_negative_content_length_gets_400(self, threaded):
        response = _raw(
            threaded.port,
            b"POST /sessions HTTP/1.1\r\nContent-Length: -7\r\n\r\n",
        )
        assert b" 400 " in response.split(b"\r\n", 1)[0]
        assert b"bad_content_length" in response

    def test_oversized_declaration_gets_413_before_any_read(self, threaded):
        result = oversized_body("127.0.0.1", threaded.port, declared=1 << 40)
        assert result["status"] == 413
        assert result["elapsed_s"] < 2.0

    def test_torn_body_gets_400(self, threaded):
        result = torn_body(
            "127.0.0.1", threaded.port, declared=512, sent=b'{"db": "aep'
        )
        assert result["status"] == 400
        assert json.loads(result["body"])["error"]["code"] == "incomplete_body"

    def test_stalled_loris_is_cut_by_the_read_deadline(self, threaded):
        # A loris that stalls between bytes longer than the 300ms
        # per-read deadline; without the deadline it would sit for the
        # full hold window.
        result = slow_loris(
            "127.0.0.1",
            threaded.port,
            hold_s=3.0,
            drip_interval_s=0.6,
        )
        assert result["cut_off"]
        assert result["elapsed_s"] < 2.5

    def test_normal_traffic_unaffected_by_hardening(self, threaded):
        client = ServeClient.connect(port=threaded.port)
        session = client.create_session(db="aep")
        answer = client.ask(
            session["id"], "How many audiences were created in January?"
        )
        assert answer["turns"] == 2


class TestThreadedDefaults:
    """Even with no flags, the body cap is on (the default limit)."""

    def test_default_cap_rejects_a_terabyte(self, app):
        server, _thread = start_in_thread(app)  # no hardening flags
        try:
            result = oversized_body(
                "127.0.0.1", server.port, declared=DEFAULT_MAX_BODY_BYTES + 1
            )
        finally:
            server.shutdown()
        assert result["status"] == 413


class TestAsyncEdges:
    def test_oversized_declaration_gets_413(self, async_hardened):
        result = oversized_body(
            "127.0.0.1", async_hardened.port, declared=1 << 40
        )
        assert result["status"] == 413

    def test_negative_content_length_gets_400(self, async_hardened):
        response = _raw(
            async_hardened.port,
            b"POST /sessions HTTP/1.1\r\nContent-Length: -7\r\n\r\n",
        )
        assert b" 400 " in response.split(b"\r\n", 1)[0]

    def test_trickling_loris_is_cut_by_the_whole_read_deadline(
        self, async_hardened
    ):
        # Continuous 50ms drip: resets a per-recv timeout, but the async
        # transport bounds the *whole* head read with wait_for.
        result = slow_loris(
            "127.0.0.1",
            async_hardened.port,
            hold_s=3.0,
            drip_interval_s=0.05,
        )
        assert result["cut_off"]
        assert result["elapsed_s"] < 2.5

    def test_torn_body_never_reaches_the_app(self, async_hardened):
        result = torn_body(
            "127.0.0.1",
            async_hardened.port,
            declared=512,
            sent=b'{"db": "aep',
        )
        # Safe outcomes: an error status or a dropped connection —
        # anything but a 2xx acceptance of a truncated body.
        assert result["status"] is None or result["status"] >= 400

    def test_default_cap_rejects_a_terabyte(self, app):
        handle = start_async_in_thread(app)  # no hardening flags
        try:
            result = oversized_body(
                "127.0.0.1", handle.port, declared=DEFAULT_MAX_BODY_BYTES + 1
            )
        finally:
            handle.stop()
        assert result["status"] == 413
