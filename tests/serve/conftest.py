"""Shared fixtures for the serve suite.

The AEP catalog (database + demo retriever) is expensive enough to build
once per test session; each test gets its own :class:`ServeApp` (fresh
session manager, fresh tenant stacks) over the shared read-only catalog.
"""

import itertools

import pytest

from repro import obs
from repro.core import DemonstrationRetriever
from repro.datasets import build_aep_database, generate_aep_suite
from repro.serve import CatalogEntry, ServeApp, SessionManager


@pytest.fixture(scope="session")
def aep_catalog():
    database = build_aep_database()
    _traffic, demos = generate_aep_suite(n_questions=10)
    return {"aep": CatalogEntry(database, DemonstrationRetriever(demos))}


@pytest.fixture
def sequential_ids():
    counter = itertools.count(1)
    return lambda: f"s{next(counter)}"


@pytest.fixture
def app(aep_catalog, sequential_ids):
    return ServeApp(
        aep_catalog,
        manager=SessionManager(id_factory=sequential_ids),
    )


@pytest.fixture
def enabled_obs():
    obs.enable()
    try:
        yield
    finally:
        obs.disable()
