"""The telemetry plane, end to end: correlation ids, /statusz, parity.

The centerpiece is the acceptance load test: one caller-supplied
``X-Request-Id`` on ``POST /sessions/{id}/feedback`` must surface on the
serve span, the coalesced ``llm.batch`` event, the completion-cache
counter labels, the journal record, and the structured-log line — and
nowhere in the response body. The counterweight is the byte-parity test:
a batch run (no serve, no request context) must produce byte-identical
artifacts whether or not an event log is installed, with no
``request_id`` stamped anywhere.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.core.chat import ChatSession
from repro.core.nl2sql import Nl2SqlModel
from repro.durability.journal import RunJournal
from repro.llm.dispatch import CachingChatModel, CompletionCache
from repro.llm.simulated import SimulatedLLM
from repro.obs.structured_log import StructuredLog
from repro.serve import (
    ServeApp,
    ServeClient,
    SessionManager,
    TenantPolicy,
    answer_view,
    json_encode,
)

QUESTION = "How many audiences were created in January?"
FEEDBACK = "we are in 2024"


def _log_events(log: StructuredLog) -> list:
    events = []
    for path in log.files():
        for line in path.read_text().splitlines():
            if line:
                events.append(json.loads(line))
    return events


class TestRequestIds:
    def _app(self, aep_catalog, sequential_ids) -> ServeApp:
        return ServeApp(
            aep_catalog,
            manager=SessionManager(id_factory=sequential_ids),
            request_id_factory=obs.deterministic_id_factory("auto"),
        )

    def test_minted_when_absent(self, aep_catalog, sequential_ids):
        app = self._app(aep_catalog, sequential_ids)
        _s, _c, _b, headers = app.handle_request("GET", "/healthz")
        assert headers["X-Request-Id"] == "auto-000001"
        _s, _c, _b, headers = app.handle_request("GET", "/healthz")
        assert headers["X-Request-Id"] == "auto-000002"

    def test_supplied_id_is_honored_any_header_casing(
        self, aep_catalog, sequential_ids
    ):
        app = self._app(aep_catalog, sequential_ids)
        _s, _c, _b, headers = app.handle_request(
            "GET", "/healthz", headers={"x-ReQuEsT-iD": "my-id-1"}
        )
        assert headers["X-Request-Id"] == "my-id-1"

    @pytest.mark.parametrize(
        "bad", ["bad id", "with\nnewline", "", "   ", "-leading", "a" * 200]
    )
    def test_malformed_ids_are_replaced(
        self, aep_catalog, sequential_ids, bad
    ):
        app = self._app(aep_catalog, sequential_ids)
        _s, _c, _b, headers = app.handle_request(
            "GET", "/healthz", headers={"X-Request-Id": bad}
        )
        assert headers["X-Request-Id"] == "auto-000001"

    def test_http_transport_carries_the_header_both_ways(
        self, aep_catalog, sequential_ids
    ):
        from repro.serve import start_in_thread

        app = self._app(aep_catalog, sequential_ids)
        server, _thread = start_in_thread(app)
        try:
            client = ServeClient.connect(port=server.port)
            status, _body, headers = client.request_detailed(
                "GET", "/healthz", headers={"X-Request-Id": "over-http-1"}
            )
            assert status == 200
            assert headers.get("X-Request-Id") == "over-http-1"
        finally:
            server.shutdown()


class TestStatusz:
    def test_slo_math_over_the_wire(self, aep_catalog, sequential_ids):
        app = ServeApp(
            aep_catalog,
            manager=SessionManager(id_factory=sequential_ids),
            policy=TenantPolicy(slo_latency_ms=100.0, slo_target=0.9),
        )
        for _ in range(9):
            app.telemetry.record_request("ask", "team-a", 200, 50.0)
        app.telemetry.record_request("ask", "team-a", 200, 500.0)

        payload = ServeClient.in_process(app).statusz()
        assert payload["ready"] is True
        assert payload["draining"] is False
        slo = payload["telemetry"]["tenants"]["team-a"]["slo"]
        assert slo["objective_ms"] == 100.0
        assert slo["target"] == 0.9
        window = slo["1m"]
        assert window["total"] == 10
        assert window["good"] == 9
        assert window["attainment"] == pytest.approx(0.9)
        assert window["burn_rate"] == pytest.approx(1.0)

    def test_statusz_carries_operational_state(self, app):
        client = ServeClient.in_process(app)
        client.create_session(db="aep", tenant="team-a")
        payload = client.statusz()
        assert payload["sessions"]["resident"] == 1
        assert "batch_queue_depth" in payload
        assert "breakers" in payload
        assert set(payload["telemetry"]["windows"]) == {"1m", "5m", "15m"}

    def test_statusz_reflects_drain(self, app):
        app.begin_drain()
        payload = ServeClient.in_process(app).statusz()
        assert payload["ready"] is False
        assert payload["draining"] is True


class TestReadyz:
    def test_queue_depth_and_gate_utilization(
        self, aep_catalog, sequential_ids
    ):
        app = ServeApp(
            aep_catalog,
            manager=SessionManager(id_factory=sequential_ids),
            policy=TenantPolicy(max_inflight_total=8),
        )
        client = ServeClient.in_process(app)
        status, body = client.request_raw("GET", "/readyz")
        assert status == 200
        payload = json.loads(body)
        assert payload["batch_queue_depth"] == 0
        gate = payload["gate"]
        assert gate["utilization"] == 0.0
        assert gate["inflight_per_tenant"] == {}

    def test_unbounded_gate_reports_null_utilization(self, app):
        client = ServeClient.in_process(app)
        _status, body = client.request_raw("GET", "/readyz")
        assert json.loads(body)["gate"]["utilization"] is None


class TestMetricsTenantGauges:
    def test_per_tenant_p95_gauge_after_traffic(self, app):
        client = ServeClient.in_process(app)
        session = client.create_session(db="aep", tenant="team-a")
        client.ask(session["id"], QUESTION)
        text = client.metrics()
        assert (
            'fisql_serve_tenant_latency_ms{quantile="0.95",tenant="team-a"'
            ',window="1m"}' in text
        )
        assert (
            'fisql_serve_slo_attainment{tenant="team-a",window="1m"} 1'
            in text
        )
        assert 'fisql_serve_requests_windowed{window="1m"}' in text


class TestEndToEndCorrelation:
    """The ISSUE 6 acceptance criterion, in one test."""

    def test_one_request_id_visible_on_every_surface(
        self, aep_catalog, sequential_ids, tmp_path
    ):
        obs.enable()
        log = StructuredLog(tmp_path / "events")
        obs.set_event_log(log)
        journal = RunJournal(tmp_path / "journal")
        try:
            app = ServeApp(
                aep_catalog,
                manager=SessionManager(id_factory=sequential_ids),
                policy=TenantPolicy(batch_max=4, batch_wait_ms=10.0),
                cache=CompletionCache(),
                journal=journal,
                request_id_factory=obs.deterministic_id_factory("auto"),
            )
            client = ServeClient.in_process(app)
            session = client.create_session(db="aep", tenant="team-a")
            sid = session["id"]
            client.ask(sid, QUESTION)

            rid = "load-rid-0042"
            status, body, headers = client.request_detailed(
                "POST",
                f"/sessions/{sid}/feedback",
                {"feedback": FEEDBACK},
                headers={"X-Request-Id": rid},
            )
            assert status == 200
            # The id is echoed in the header and ONLY the header: response
            # bodies are part of the byte-parity contract.
            assert headers["X-Request-Id"] == rid
            assert rid.encode() not in body

            # Surface 1: the serve span carries the id as an attribute.
            spans = [
                record
                for record in obs.get_tracer().records()
                if record.name == "serve.request"
                and record.attributes.get("route") == "feedback"
            ]
            assert spans
            assert spans[-1].attributes["request_id"] == rid
            assert spans[-1].attributes["status"] == 200

            # Surface 2: the completion-cache counters are labelled with
            # the id (the feedback turn's prompts are novel -> misses).
            misses = obs.get_metrics().counter_by_label(
                "cache.miss", "request_id"
            )
            assert rid in misses

            # Surface 3: the journal record for the feedback turn.
            record = journal.get(f"serve.turn/{sid}/4")
            assert record is not None
            assert record["request_id"] == rid
            assert record["value"]["route"] == "feedback"
            assert record["value"]["tenant"] == "team-a"

            # Surfaces 4+5: the structured log — the coalesced llm.batch
            # event names the id, and the serve.request line is stamped.
            obs.set_event_log(None)  # flush + close before reading
            events = _log_events(log)
            batch = [
                event
                for event in events
                if event["event"] == "llm.batch"
                and rid in event.get("request_ids", [])
            ]
            assert batch
            assert all(event["coalesced"] for event in batch)
            served = [
                event
                for event in events
                if event["event"] == "serve.request"
                and event.get("request_id") == rid
            ]
            assert len(served) == 1
            assert served[0]["route"] == "feedback"
            assert served[0]["status"] == 200
            assert served[0]["tenant"] == "team-a"
            appended = [
                event
                for event in events
                if event["event"] == "journal.append"
                and event.get("request_id") == rid
            ]
            assert appended
            assert appended[-1]["key"] == f"serve.turn/{sid}/4"
        finally:
            journal.close()
            obs.disable()

    def test_concurrent_requests_keep_their_own_ids(
        self, aep_catalog, sequential_ids
    ):
        obs.enable()
        try:
            app = ServeApp(
                aep_catalog,
                manager=SessionManager(id_factory=sequential_ids),
                policy=TenantPolicy(batch_max=4, batch_wait_ms=5.0),
            )
            client = ServeClient.in_process(app)
            sessions = [
                client.create_session(db="aep", tenant=f"t{i % 2}")["id"]
                for i in range(8)
            ]
            echoes: dict = {}

            def worker(index: int) -> None:
                _s, _b, headers = client.request_detailed(
                    "POST",
                    f"/sessions/{sessions[index]}/ask",
                    {"question": QUESTION},
                    headers={"X-Request-Id": f"rid-{index}"},
                )
                echoes[index] = headers["X-Request-Id"]

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert echoes == {i: f"rid-{i}" for i in range(8)}

            # Every request's span carries exactly its own id.
            by_rid = {
                record.attributes["request_id"]
                for record in obs.get_tracer().records()
                if record.name == "serve.request"
                and record.attributes.get("route") == "ask"
            }
            assert by_rid == {f"rid-{i}" for i in range(8)}
        finally:
            obs.disable()


class TestBatchRunByteParity:
    """No serve, no request context: telemetry must change nothing."""

    def _batch_run(self, aep_catalog, journal_dir, log_dir=None):
        obs.enable()
        try:
            if log_dir is not None:
                obs.set_event_log(StructuredLog(log_dir))
            journal = RunJournal(journal_dir)
            entry = aep_catalog["aep"]
            llm = CachingChatModel(SimulatedLLM(), CompletionCache())
            model = Nl2SqlModel(llm=llm, retriever=entry.retriever)
            chat = ChatSession(entry.database, model)
            asked = json_encode(answer_view(chat.ask(QUESTION)))
            revised = json_encode(answer_view(chat.give_feedback(FEEDBACK)))
            journal.append("turn/1", "turn", {"answer": asked.decode()})
            journal.append("turn/2", "turn", {"answer": revised.decode()})
            journal.close()
            counters = {
                (
                    counter["name"],
                    tuple(sorted(counter.get("labels", {}).items())),
                ): counter["value"]
                for counter in obs.snapshot()["counters"]
            }
            segments = b"".join(
                path.read_bytes()
                for path in sorted(journal_dir.glob("*.jsonl"))
            )
            return asked, revised, segments, counters
        finally:
            obs.disable()

    def test_artifacts_identical_with_and_without_event_log(
        self, aep_catalog, tmp_path
    ):
        plain = self._batch_run(aep_catalog, tmp_path / "j1")
        logged = self._batch_run(
            aep_catalog, tmp_path / "j2", log_dir=tmp_path / "events"
        )
        assert plain[0] == logged[0]  # ask bytes
        assert plain[1] == logged[1]  # feedback bytes
        assert plain[2] == logged[2]  # journal segment bytes
        assert plain[3] == logged[3]  # metric counters + labels

        # No request context ever existed: nothing is stamped anywhere.
        assert b"request_id" not in plain[2]
        assert all(
            "request_id" not in dict(labels) for _name, labels in plain[3]
        )
        event_lines = (tmp_path / "events" / "events.jsonl").read_text()
        assert "request_id" not in event_lines
