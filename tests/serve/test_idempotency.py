"""Exactly-once turns: the Idempotency-Key header end to end.

Three layers, pinned separately: the bounded per-session index, the
server's replay path (same bytes, no second turn, survives evict +
resume), and the client's self-retry loop (Retry-After honoured,
ambiguous network errors retried only when a replay cannot
double-apply).
"""

from __future__ import annotations

import itertools
import json

import pytest

from repro.serve import (
    MAX_IDEMPOTENCY_KEY_LENGTH,
    IdempotencyIndex,
    ServeApp,
    ServeClient,
    ServeClientError,
    SessionManager,
    SessionStore,
    normalize_idempotency_key,
)
from repro.serve.client import InProcessTransport
from repro.serve.protocol import ProtocolError

QUESTION = "How many audiences were created in January?"


class TestNormalize:
    def test_good_keys_pass_through(self):
        for key in ("ik-1", "a", "A.b:c/d_e-f", "x" * MAX_IDEMPOTENCY_KEY_LENGTH):
            assert normalize_idempotency_key(key) == key

    @pytest.mark.parametrize(
        "bad",
        ["", " ", "-starts-with-dash", "spaces inside", "ü", "x" * 129],
    )
    def test_bad_keys_raise_400(self, bad):
        with pytest.raises(ProtocolError) as excinfo:
            normalize_idempotency_key(bad)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_idempotency_key"


class TestIndex:
    def test_store_then_lookup_replays(self):
        index = IdempotencyIndex()
        assert index.lookup("k1") is None
        index.store("k1", "ask", 200, b'{"ok": 1}')
        entry = index.lookup("k1")
        assert entry == {"route": "ask", "status": 200, "body": '{"ok": 1}'}
        assert index.replays == 1

    def test_bounded_fifo_eviction(self):
        index = IdempotencyIndex(max_keys=3)
        for n in range(5):
            index.store(f"k{n}", "ask", 200, b"{}")
        assert len(index) == 3
        assert index.lookup("k0") is None
        assert index.lookup("k1") is None
        assert index.lookup("k4") is not None

    def test_state_restore_roundtrip(self):
        index = IdempotencyIndex()
        index.store("k1", "ask", 200, b'{"n": 1}')
        index.store("k2", "feedback", 200, b'{"n": 2}')
        clone = IdempotencyIndex()
        assert clone.restore(index.state()) == 2
        assert clone.lookup("k2")["body"] == '{"n": 2}'
        assert clone.state() == index.state()

    def test_restore_tolerates_junk(self):
        index = IdempotencyIndex()
        assert index.restore(None) == 0
        assert index.restore("garbage") == 0
        assert (
            index.restore(
                [
                    "not-a-dict",
                    {"key": "ok", "status": "200", "body": "x", "route": "ask"},
                    {"key": "good", "status": 200, "body": "{}", "route": "ask"},
                ]
            )
            == 1
        )
        assert index.lookup("good") is not None


def _ask_with_key(client: ServeClient, session_id: str, key: str):
    return client.request_detailed(
        "POST",
        f"/sessions/{session_id}/ask",
        {"question": QUESTION},
        headers={"Idempotency-Key": key},
    )


class TestServeReplay:
    def test_same_key_replays_same_bytes_without_a_new_turn(self, app):
        client = ServeClient.in_process(app)
        session_id = client.create_session(db="aep")["id"]
        status1, body1, headers1 = _ask_with_key(client, session_id, "k-1")
        turns_after_first = client.session_info(session_id)["turns"]

        status2, body2, headers2 = _ask_with_key(client, session_id, "k-1")
        assert (status2, body2) == (status1, body1)
        assert "Idempotency-Replayed" not in headers1
        assert headers2.get("Idempotency-Replayed") == "true"
        assert client.session_info(session_id)["turns"] == turns_after_first

    def test_fresh_key_applies_a_fresh_turn(self, app):
        client = ServeClient.in_process(app)
        session_id = client.create_session(db="aep")["id"]
        _ask_with_key(client, session_id, "k-1")
        turns = client.session_info(session_id)["turns"]
        _status, _body, headers = _ask_with_key(client, session_id, "k-2")
        assert "Idempotency-Replayed" not in headers
        assert client.session_info(session_id)["turns"] == turns + 2

    def test_feedback_replays_too(self, app):
        client = ServeClient.in_process(app)
        session_id = client.create_session(db="aep")["id"]
        client.ask(session_id, QUESTION)
        first = client.request_detailed(
            "POST",
            f"/sessions/{session_id}/feedback",
            {"feedback": "we are in 2024"},
            headers={"Idempotency-Key": "fb-1"},
        )
        second = client.request_detailed(
            "POST",
            f"/sessions/{session_id}/feedback",
            {"feedback": "we are in 2024"},
            headers={"Idempotency-Key": "fb-1"},
        )
        assert second[:2] == first[:2]
        assert second[2].get("Idempotency-Replayed") == "true"

    def test_malformed_key_is_rejected(self, app):
        client = ServeClient.in_process(app)
        session_id = client.create_session(db="aep")["id"]
        status, body, _headers = client.request_detailed(
            "POST",
            f"/sessions/{session_id}/ask",
            {"question": QUESTION},
            headers={"Idempotency-Key": "bad key!"},
        )
        assert status == 400
        assert json.loads(body)["error"]["code"] == "bad_idempotency_key"
        assert client.session_info(session_id)["turns"] == 0

    def test_error_responses_are_not_recorded(self, app):
        """A key on a failed request must not pin the failure forever."""
        client = ServeClient.in_process(app)
        session_id = client.create_session(db="aep")["id"]
        status, _body, _headers = client.request_detailed(
            "POST",
            f"/sessions/{session_id}/feedback",
            {"feedback": "too early"},
            headers={"Idempotency-Key": "early"},
        )
        assert status == 409  # feedback before any question
        client.ask(session_id, QUESTION)
        status, _body, headers = client.request_detailed(
            "POST",
            f"/sessions/{session_id}/feedback",
            {"feedback": "we are in 2024"},
            headers={"Idempotency-Key": "early"},
        )
        assert status == 200  # re-executed, not a replayed 409
        assert "Idempotency-Replayed" not in headers

    def test_replay_survives_evict_and_resume(self, aep_catalog, tmp_path):
        counter = itertools.count(1)
        store = SessionStore(tmp_path / "sessions")
        app = ServeApp(
            aep_catalog,
            manager=SessionManager(
                id_factory=lambda: f"s{next(counter)}",
                store=store,
                max_sessions=1,
            ),
        )
        client = ServeClient.in_process(app)
        session_id = client.create_session(db="aep")["id"]
        first = _ask_with_key(client, session_id, "durable-key")
        assert first[0] == 200

        client.create_session(db="aep")  # LRU-evicts s1 to the store
        assert store.ids() == [session_id]

        resumed = client.request_raw(
            "POST", "/sessions", {"db": "aep", "resume": session_id}
        )
        assert resumed[0] in (200, 201)
        replay = _ask_with_key(client, session_id, "durable-key")
        assert replay[:2] == first[:2]
        assert replay[2].get("Idempotency-Replayed") == "true"


class _ScriptedTransport:
    """Replays a script of responses/exceptions; records every request."""

    def __init__(self, script):
        self.script = list(script)
        self.requests: list = []

    def request_detailed(self, method, path, body=None, headers=None):
        self.requests.append((method, path, dict(headers or {})))
        step = self.script.pop(0)
        if isinstance(step, Exception):
            raise step
        return step

    def request(self, method, path, body=None, headers=None):
        status, payload, _headers = self.request_detailed(
            method, path, body, headers
        )
        return status, payload


_OK = (200, b'{"session": {"id": "s1"}, "turns": 2}', {})
_SHED = (503, b'{"error": {"code": "draining"}}', {"Retry-After": "0.25"})


class TestClientRetry:
    def test_retry_honours_retry_after(self):
        transport = _ScriptedTransport([_SHED, _OK])
        sleeps: list = []
        client = ServeClient(transport, max_retries=2, sleep=sleeps.append)
        assert client.ask("s1", QUESTION)["turns"] == 2
        assert sleeps == [0.25]
        assert client.retries == 1

    def test_exponential_backoff_without_hint(self):
        shed = (503, b'{"error": {"code": "draining"}}', {})
        transport = _ScriptedTransport([shed, shed, shed])
        sleeps: list = []
        client = ServeClient(
            transport, max_retries=2, retry_backoff_s=0.05, sleep=sleeps.append
        )
        with pytest.raises(ServeClientError) as excinfo:
            client.ask("s1", QUESTION)
        assert excinfo.value.status == 503
        assert sleeps == [0.05, 0.1]

    def test_network_error_retried_with_same_key(self):
        transport = _ScriptedTransport([ConnectionResetError("gone"), _OK])
        client = ServeClient(transport, max_retries=2, sleep=lambda _s: None)
        assert client.ask("s1", QUESTION)
        keys = [
            headers.get("Idempotency-Key")
            for _m, _p, headers in transport.requests
        ]
        assert keys[0] is not None
        assert keys == [keys[0]] * 2  # the retry replays the same key

    def test_network_error_not_retried_without_key(self):
        """DELETE carries no key: a replay could double-apply, so the
        ambiguous network error surfaces instead of retrying."""
        transport = _ScriptedTransport([ConnectionResetError("gone")])
        client = ServeClient(transport, max_retries=2, sleep=lambda _s: None)
        with pytest.raises(ConnectionResetError):
            client.delete_session("s1")
        assert len(transport.requests) == 1

    def test_non_retryable_status_surfaces_immediately(self):
        gone = (404, b'{"error": {"code": "unknown_session"}}', {})
        transport = _ScriptedTransport([gone])
        client = ServeClient(transport, max_retries=3, sleep=lambda _s: None)
        with pytest.raises(ServeClientError) as excinfo:
            client.ask("s1", QUESTION)
        assert excinfo.value.status == 404
        assert client.retries == 0

    def test_default_client_sends_no_key(self, app):
        transport = _ScriptedTransport([_OK])
        client = ServeClient(transport)  # max_retries=0
        client.ask("s1", QUESTION)
        _method, _path, headers = transport.requests[0]
        assert "Idempotency-Key" not in headers

    def test_in_process_transport_is_the_default_path(self, app):
        """The scripted transport mirrors InProcessTransport's surface."""
        client = ServeClient(InProcessTransport(app))
        session_id = client.create_session(db="aep")["id"]
        assert client.ask(session_id, QUESTION)["turns"] == 2
