"""The HTTP surface vs the in-process pipeline, and the concurrent load test.

Two guarantees pinned here:

* **Transport parity** — the same scripted interaction against the same
  app state produces *byte-identical* response bodies over a real socket
  (``ThreadingHTTPServer``) and the in-process transport.
* **Pipeline parity under load** — replaying SPIDER error-set
  interactions through the HTTP surface from ≥8 concurrent client
  threads yields, per session, exactly the bytes the in-process
  :class:`~repro.core.chat.ChatSession` produces, with zero cross-session
  state leakage and a populated ``/metrics`` report (the ISSUE 3
  acceptance criterion).
"""

import itertools
import json
import threading

import pytest

from repro import obs
from repro.core.chat import ChatSession
from repro.eval.harness import build_context
from repro.serve import (
    ServeApp,
    ServeClient,
    ServeHTTPServer,
    SessionManager,
    answer_view,
    json_encode,
    start_in_thread,
)
from repro.sql.parser import parse_query

#: Acceptance floor: interactions replayed and concurrent client threads.
MIN_INTERACTIONS = 20
N_THREADS = 8


def _sequential_manager() -> SessionManager:
    counter = itertools.count(1)
    return SessionManager(id_factory=lambda: f"s{next(counter)}")


class TestTransportParity:
    SCRIPT = [
        ("POST", "/sessions", {"db": "aep", "tenant": "parity"}),
        (
            "POST",
            "/sessions/s1/ask",
            {"question": "How many audiences were created in January?"},
        ),
        ("POST", "/sessions/s1/feedback", {"feedback": "we are in 2024"}),
        ("GET", "/sessions/s1/transcript", None),
        ("GET", "/sessions/s1", None),
        ("GET", "/sessions", None),
        ("GET", "/healthz", None),
        ("POST", "/sessions/s1/ask", {"question": 13}),  # type error
        ("POST", "/sessions/missing/ask", {"question": "hi?"}),  # 404
        ("DELETE", "/sessions/s1", None),
    ]

    def test_socket_and_in_process_bytes_match(self, aep_catalog):
        in_process_app = ServeApp(
            aep_catalog, manager=_sequential_manager()
        )
        socket_app = ServeApp(aep_catalog, manager=_sequential_manager())
        server, _thread = start_in_thread(socket_app)
        try:
            in_process = ServeClient.in_process(in_process_app)
            over_http = ServeClient.connect(port=server.port)
            for method, path, payload in self.SCRIPT:
                a_status, a_body = in_process.request_raw(
                    method, path, payload
                )
                b_status, b_body = over_http.request_raw(
                    method, path, payload
                )
                assert a_status == b_status, (method, path)
                assert a_body == b_body, (method, path)
        finally:
            server.shutdown()

    def test_http_content_type_is_json(self, aep_catalog):
        app = ServeApp(aep_catalog, manager=_sequential_manager())
        server, _thread = start_in_thread(app)
        try:
            import http.client

            connection = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=10
            )
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert response.headers["Content-Type"] == "application/json"
            response.read()
            connection.close()
        finally:
            server.shutdown()


@pytest.fixture(scope="module")
def spider_interactions():
    """SPIDER error-set interactions: (example, feedback-text or None)."""
    context = build_context(scale="small")
    annotator = context.annotator_for("spider")
    interactions = []
    for record in context.error_set("spider"):
        example = record.example
        gold = parse_query(example.gold_sql)
        predicted = parse_query(record.predicted_sql)
        feedback = annotator.give_feedback(
            example_id=example.example_id,
            question=example.question,
            gold=gold,
            predicted=predicted,
            round_index=1,
            use_highlights=False,
        )
        interactions.append(
            (example, feedback.text if feedback is not None else None)
        )
    # The acceptance floor is >= 20 interactions; replay the set as many
    # times as needed (replays land in *separate* sessions, which also
    # cross-checks per-session determinism).
    while len(interactions) < MIN_INTERACTIONS:
        interactions = interactions + interactions
    return context, interactions


class TestSpiderLoad:
    def test_concurrent_replay_matches_in_process(self, spider_interactions):
        context, interactions = spider_interactions
        assert len(interactions) >= MIN_INTERACTIONS

        # In-process reference: a fresh ChatSession per interaction,
        # serialized through the same wire view for byte comparison.
        model = context.spider_assistant_model()
        references = []
        for example, feedback_text in interactions:
            database = context.spider.benchmark.database(example.db_id)
            chat = ChatSession(database, model)
            asked = json_encode(answer_view(chat.ask(example.question)))
            revised = None
            if feedback_text is not None:
                revised = json_encode(
                    answer_view(chat.give_feedback(feedback_text))
                )
            references.append((asked, revised))

        obs.enable()
        try:
            app = ServeApp.from_context(context, manager=_sequential_manager())
            server, _thread = start_in_thread(app)
            try:
                results: dict = {}
                failures: list = []

                def worker(worker_id: int) -> None:
                    client = ServeClient.connect(port=server.port)
                    for index in range(
                        worker_id, len(interactions), N_THREADS
                    ):
                        example, feedback_text = interactions[index]
                        try:
                            session = client.create_session(
                                db=example.db_id,
                                tenant=f"tenant-{worker_id % 4}",
                            )
                            sid = session["id"]
                            _status, ask_raw = client.request_raw(
                                "POST",
                                f"/sessions/{sid}/ask",
                                {"question": example.question},
                            )
                            asked = json_encode(
                                json.loads(ask_raw)["answer"]
                            )
                            revised = None
                            if feedback_text is not None:
                                _status, fb_raw = client.request_raw(
                                    "POST",
                                    f"/sessions/{sid}/feedback",
                                    {"feedback": feedback_text},
                                )
                                revised = json_encode(
                                    json.loads(fb_raw)["answer"]
                                )
                            transcript = client.transcript(sid)
                            results[index] = (sid, asked, revised, transcript)
                        except Exception as error:  # noqa: BLE001
                            failures.append((index, repr(error)))

                threads = [
                    threading.Thread(target=worker, args=(i,))
                    for i in range(N_THREADS)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=300)
                assert not failures, failures
                assert len(results) == len(interactions)

                # Per-session outcomes are identical to the in-process
                # pipeline, byte for byte.
                for index, (ref_ask, ref_fb) in enumerate(references):
                    sid, asked, revised, _transcript = results[index]
                    assert asked == ref_ask, f"ask mismatch at {index} ({sid})"
                    assert revised == ref_fb, (
                        f"feedback mismatch at {index} ({sid})"
                    )

                # Zero cross-session leakage: every transcript holds
                # exactly its own conversation.
                seen_ids = set()
                for index, (sid, _a, revised, transcript) in results.items():
                    example, feedback_text = interactions[index]
                    seen_ids.add(sid)
                    turns = transcript["turns"]
                    expected_turns = 2 if feedback_text is None else 4
                    assert len(turns) == expected_turns, (index, sid)
                    assert turns[0]["text"] == example.question
                    if feedback_text is not None:
                        assert turns[2]["text"] == feedback_text
                assert len(seen_ids) == len(interactions)
                assert len(app.manager) == len(interactions)

                # The /metrics exposition is populated with serve traffic.
                metrics = ServeClient.connect(port=server.port).metrics()
                assert "fisql_serve_up 1" in metrics
                assert "fisql_serve_requests_total" in metrics
                registry = obs.get_metrics()
                expected_requests = (
                    # create + ask + transcript per interaction, feedback
                    # when the annotator produced text, plus the /metrics
                    # scrape itself.
                    3 * len(interactions)
                    + sum(1 for _e, f in interactions if f is not None)
                    + 1
                )
                assert (
                    registry.counter_total("serve.requests")
                    == expected_requests
                )
            finally:
                server.shutdown()
        finally:
            obs.disable()
