"""Serving over a backend pool: routing, failover, health surfaces,
Retry-After headers."""

from __future__ import annotations

import pytest

from repro.errors import TransientLLMError
from repro.llm.interface import Completion, Prompt
from repro.llm.router import Backend, BackendPool
from repro.llm.simulated import SimulatedLLM
from repro.serve import (
    ServeApp,
    ServeClient,
    ServeClientError,
    SessionManager,
    TenantPolicy,
)
from repro.serve.protocol import json_encode


class DownModel:
    """Always transiently failing — a dead primary."""

    def complete(self, prompt: Prompt) -> Completion:
        raise TransientLLMError("backend down")


class TaggedModel:
    """Delegates to the simulated model but records prompt kinds."""

    def __init__(self) -> None:
        self._inner = SimulatedLLM()
        self.kinds: list[str] = []

    def complete(self, prompt: Prompt) -> Completion:
        self.kinds.append(prompt.kind)
        return self._inner.complete(prompt)


def make_pool(primary=None, secondary=None, **kwargs) -> BackendPool:
    return BackendPool(
        [
            Backend("primary", primary or SimulatedLLM()),
            Backend("secondary", secondary or SimulatedLLM()),
        ],
        **kwargs,
    )


def make_app(aep_catalog, sequential_ids, pool, **kwargs):
    return ServeApp(
        aep_catalog,
        manager=SessionManager(id_factory=sequential_ids),
        pool=pool,
        **kwargs,
    )


class TestRoutedServing:
    def test_chat_turn_served_through_pool(self, aep_catalog, sequential_ids):
        pool = make_pool()
        app = make_app(aep_catalog, sequential_ids, pool)
        client = ServeClient.in_process(app)
        session = client.create_session(db="aep")
        answer = client.ask(
            session["id"], "How many audiences are there?"
        )
        assert answer["answer"]["sql"]
        assert pool["primary"].health.calls_ok > 0
        assert pool["secondary"].health.calls_ok == 0

    def test_failover_to_secondary_when_primary_down(
        self, aep_catalog, sequential_ids
    ):
        pool = make_pool(primary=DownModel(), eject_after=100)
        app = make_app(aep_catalog, sequential_ids, pool)
        client = ServeClient.in_process(app)
        session = client.create_session(db="aep")
        answer = client.ask(
            session["id"], "How many audiences are there?"
        )
        assert answer["answer"]["sql"]
        assert pool["primary"].health.calls_failed > 0
        assert pool["secondary"].health.calls_ok > 0

    def test_tenant_route_map_steers_kinds(
        self, aep_catalog, sequential_ids
    ):
        cheap = TaggedModel()
        pool = make_pool(secondary=cheap)
        policy = TenantPolicy(
            route_map=(("feedback_routing", "secondary"),)
        )
        app = make_app(
            aep_catalog,
            sequential_ids,
            pool,
            tenant_policies={"gold": policy},
        )
        client = ServeClient.in_process(app)
        session = client.create_session(db="aep", tenant="gold")
        client.ask(session["id"], "How many audiences are there?")
        client.feedback(session["id"], "only the ones created in January")
        assert "feedback_routing" in cheap.kinds
        assert "nl2sql" not in cheap.kinds

    def test_statusz_and_readyz_report_backend_health(
        self, aep_catalog, sequential_ids
    ):
        pool = make_pool()
        app = make_app(aep_catalog, sequential_ids, pool)
        client = ServeClient.in_process(app)
        status = client.statusz()
        assert set(status["backends"]) == {"primary", "secondary"}
        assert status["backends"]["primary"]["healthy"] is True
        assert client.healthz()["status"] == "ok"
        from repro.serve.protocol import json_decode

        code, _ctype, body, _headers = app.handle_request("GET", "/readyz")
        payload = json_decode(body)
        assert code == 200
        assert payload["backends"]["secondary"]["healthy"] is True

    def test_metrics_exposition_has_backend_families(
        self, aep_catalog, sequential_ids
    ):
        pool = make_pool()
        app = make_app(aep_catalog, sequential_ids, pool)
        client = ServeClient.in_process(app)
        text = client.metrics()
        assert 'fisql_llm_backend_healthy{backend="primary"} 1' in text
        assert 'fisql_llm_backend_ejections_total{backend="primary"} 0' in text

    def test_pool_without_backends_keyword_stays_absent(
        self, aep_catalog, sequential_ids
    ):
        app = ServeApp(
            aep_catalog, manager=SessionManager(id_factory=sequential_ids)
        )
        client = ServeClient.in_process(app)
        assert "backends" not in client.statusz()


class TestRetryAfterHeaders:
    def test_shed_carries_retry_after_header(
        self, aep_catalog, sequential_ids
    ):
        app = ServeApp(
            aep_catalog,
            manager=SessionManager(id_factory=sequential_ids),
            policy=TenantPolicy(max_inflight_total=1),
        )
        client = ServeClient.in_process(app)
        session = client.create_session(db="aep")
        with app.gate.admit("elsewhere"):
            with pytest.raises(ServeClientError) as excinfo:
                client.ask(session["id"], "How many audiences are there?")
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after == 1.0

    def test_deadline_configured_shed_scales_retry_after(
        self, aep_catalog, sequential_ids
    ):
        app = ServeApp(
            aep_catalog,
            manager=SessionManager(id_factory=sequential_ids),
            policy=TenantPolicy(
                max_inflight_total=1, request_deadline_ms=4000.0
            ),
        )
        client = ServeClient.in_process(app)
        session = client.create_session(db="aep")
        with app.gate.admit("elsewhere"):
            with pytest.raises(ServeClientError) as excinfo:
                client.ask(session["id"], "How many audiences are there?")
        assert excinfo.value.retry_after == 4.0

    def test_drain_503_carries_retry_after(self, aep_catalog, sequential_ids):
        app = ServeApp(
            aep_catalog, manager=SessionManager(id_factory=sequential_ids)
        )
        client = ServeClient.in_process(app)
        session = client.create_session(db="aep")
        app.begin_drain()
        status, _ctype, _body, headers = app.handle_request(
            "POST",
            f"/sessions/{session['id']}/ask",
            json_encode({"question": "How many audiences are there?"}),
        )
        assert status == 503
        assert headers.get("Retry-After") == "10"

    def test_success_has_no_retry_after(self, aep_catalog, sequential_ids):
        app = ServeApp(
            aep_catalog, manager=SessionManager(id_factory=sequential_ids)
        )
        client = ServeClient.in_process(app)
        session = client.create_session(db="aep")
        status, _ctype, _body, headers = app.handle_request(
            "POST",
            f"/sessions/{session['id']}/ask",
            json_encode({"question": "How many audiences are there?"}),
        )
        assert status == 200
        assert "Retry-After" not in headers
        assert "X-Request-Id" in headers
