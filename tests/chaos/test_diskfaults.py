"""The disk-fault shim: deterministic hits, seeded profiles, torn renames.

The shim is the foundation the degradation tests stand on, so its own
contract is pinned precisely: exact hit counts, sticky semantics, seeded
reproducibility, env-var arming, and the torn-replace special case that
leaves real corrupt bytes for the checksummed reader to quarantine.
"""

from __future__ import annotations

import errno

import pytest

from repro.chaos.diskfaults import (
    DISK_FAULT_ENV,
    DiskFaultProfile,
    arm_disk_fault,
    arm_disk_profile,
    disarm_disk_faults,
    disk_fault,
    disk_fault_stats,
)
from repro.durability.atomic import (
    atomic_write_text,
    read_checksummed_json,
    write_checksummed_json,
)


@pytest.fixture(autouse=True)
def _disarm():
    disarm_disk_faults()
    yield
    disarm_disk_faults()


class TestArming:
    def test_unarmed_is_a_noop(self):
        for _ in range(100):
            disk_fault("disk.journal_append")
        assert disk_fault_stats() == {"hits": {}, "injected": 0}

    def test_fails_exactly_the_named_hit(self):
        arm_disk_fault("disk.journal_append", on_hit=3, error="enospc")
        disk_fault("disk.journal_append")
        disk_fault("disk.journal_append")
        with pytest.raises(OSError) as excinfo:
            disk_fault("disk.journal_append")
        assert excinfo.value.errno == errno.ENOSPC
        assert "injected" in str(excinfo.value)
        # Non-sticky: the disk "recovers" after the one failure.
        disk_fault("disk.journal_append")
        stats = disk_fault_stats()
        assert stats["hits"]["disk.journal_append"] == 4
        assert stats["injected"] == 1

    def test_sticky_keeps_failing(self):
        arm_disk_fault("disk.session_save", on_hit=2, sticky=True)
        disk_fault("disk.session_save")
        for _ in range(3):
            with pytest.raises(OSError):
                disk_fault("disk.session_save")
        assert disk_fault_stats()["injected"] == 3

    def test_sites_are_independent(self):
        arm_disk_fault("disk.cache_save", on_hit=1)
        disk_fault("disk.journal_append")  # different site: untouched
        with pytest.raises(OSError):
            disk_fault("disk.cache_save")

    def test_error_names_map_to_errnos(self):
        for name, code in (
            ("enospc", errno.ENOSPC),
            ("eio", errno.EIO),
            ("erofs", errno.EROFS),
            ("emfile", errno.EMFILE),
        ):
            disarm_disk_faults()
            arm_disk_fault("disk.atomic_write", error=name)
            with pytest.raises(OSError) as excinfo:
                disk_fault("disk.atomic_write")
            assert excinfo.value.errno == code

    def test_bad_arming_is_rejected(self):
        with pytest.raises(ValueError):
            arm_disk_fault("disk.journal_append", on_hit=0)
        with pytest.raises(ValueError):
            arm_disk_fault("disk.journal_append", error="gremlins")

    def test_disarm_resets_counters(self):
        arm_disk_fault("disk.journal_append", on_hit=1)
        with pytest.raises(OSError):
            disk_fault("disk.journal_append")
        disarm_disk_faults()
        disk_fault("disk.journal_append")  # unarmed again: no-op, no counting
        assert disk_fault_stats() == {"hits": {}, "injected": 0}


class TestProfile:
    def test_same_seed_fails_the_same_writes(self):
        def failures(seed: int) -> list:
            disarm_disk_faults()
            arm_disk_profile(DiskFaultProfile(rate=0.3, seed=seed))
            failed = []
            for index in range(50):
                try:
                    disk_fault("disk.atomic_write")
                except OSError:
                    failed.append(index)
            return failed

        first = failures(7)
        assert first  # 30% of 50 draws fails at least once
        assert failures(7) == first
        assert failures(8) != first

    def test_rate_zero_never_fires(self):
        arm_disk_profile(DiskFaultProfile(rate=0.0, seed=1))
        for _ in range(50):
            disk_fault("disk.semcache_save")
        assert disk_fault_stats()["injected"] == 0

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            DiskFaultProfile(rate=1.5)
        with pytest.raises(ValueError):
            DiskFaultProfile(rate=0.1, error="gremlins")


class TestEnvArming:
    def test_env_spec_arms_a_site(self, monkeypatch):
        monkeypatch.setenv(
            DISK_FAULT_ENV, "disk.journal_append:2:eio:sticky"
        )
        disk_fault("disk.journal_append")
        with pytest.raises(OSError) as excinfo:
            disk_fault("disk.journal_append")
        assert excinfo.value.errno == errno.EIO
        with pytest.raises(OSError):  # sticky via env too
            disk_fault("disk.journal_append")

    def test_env_spec_other_site_is_noop(self, monkeypatch):
        monkeypatch.setenv(DISK_FAULT_ENV, "disk.journal_append:1:eio")
        disk_fault("disk.session_save")
        assert disk_fault_stats()["injected"] == 0

    def test_malformed_env_spec_is_ignored(self, monkeypatch):
        monkeypatch.setenv(DISK_FAULT_ENV, "disk.journal_append:banana")
        disk_fault("disk.journal_append")
        assert disk_fault_stats()["injected"] == 0


class TestTornReplace:
    def test_torn_replace_leaves_corrupt_bytes(self, tmp_path):
        """A torn rename leaves a half-written target; the checksummed
        reader must quarantine it rather than load it."""
        target = tmp_path / "doc.json"
        write_checksummed_json(target, {"rows": list(range(64))})
        intact = target.read_bytes()

        arm_disk_fault("disk.replace", error="torn")
        with pytest.raises(OSError) as excinfo:
            write_checksummed_json(target, {"rows": list(range(128))})
        assert excinfo.value.errno == errno.EIO

        torn = target.read_bytes()
        assert torn != intact
        assert 0 < len(torn)
        disarm_disk_faults()
        assert read_checksummed_json(target, kind="test") is None
        assert not target.exists()  # quarantined aside
        assert list(tmp_path.glob("doc.json.corrupt*"))

    def test_atomic_write_fault_preserves_the_old_file(self, tmp_path):
        """ENOSPC at the temp-file stage must leave the target intact."""
        target = tmp_path / "doc.json"
        atomic_write_text(target, "old\n")
        arm_disk_fault("disk.atomic_write", error="enospc")
        with pytest.raises(OSError):
            atomic_write_text(target, "new\n")
        assert target.read_text() == "old\n"
        assert not list(tmp_path.glob(".doc.json.tmp*"))
