"""The chaos scenario runner, exercised the way CI's smoke job runs it.

Each scenario is a self-checking experiment: it injects one hostile
condition and returns a report whose checks *are* the assertions. The
tests here run the CI-fast scenarios end to end and pin the report
shape the ``fisql-repro chaos`` subcommand renders.
"""

from __future__ import annotations

import pytest

from repro.chaos.diskfaults import disarm_disk_faults
from repro.chaos.scenarios import SCENARIOS, run_scenario


@pytest.fixture(autouse=True)
def _disarm():
    disarm_disk_faults()
    yield
    disarm_disk_faults()


def _assert_clean_report(report: dict, name: str) -> None:
    assert report["scenario"] == name
    assert report["checks"], "a scenario must assert something"
    failed = [check for check in report["checks"] if not check["passed"]]
    details = "; ".join(
        f"{check['name']}: {check['detail']}" for check in failed
    )
    assert report["passed"], f"failed checks -- {details}"


def test_catalog_is_populated():
    assert set(SCENARIOS) == {
        "disk-full-mid-sweep",
        "slow-loris-drain",
        "retry-storm",
    }
    for runner in SCENARIOS.values():
        assert runner.__doc__


def test_unknown_scenario_is_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_scenario("meteor-strike")


def test_disk_full_mid_sweep_passes(tmp_path):
    report = run_scenario("disk-full-mid-sweep", work_dir=tmp_path)
    _assert_clean_report(report, "disk-full-mid-sweep")
    # The scenario's own evidence: it really did degrade mid-run.
    names = [check["name"] for check in report["checks"]]
    assert "journal flipped to degraded read-only mode" in names
    assert "fault-free --resume is byte-identical" in names


def test_retry_storm_passes(tmp_path):
    report = run_scenario("retry-storm", work_dir=tmp_path)
    _assert_clean_report(report, "retry-storm")
    names = [check["name"] for check in report["checks"]]
    assert "zero duplicated turns despite the storm" in names


def test_work_dir_artifacts_are_kept(tmp_path):
    run_scenario("disk-full-mid-sweep", work_dir=tmp_path)
    kept = tmp_path / "disk-full-mid-sweep"
    assert kept.is_dir()
    assert any(kept.iterdir())
