"""NLP toolkit tests: tokenizer, stemmer, similarity, TF-IDF."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.similarity import (
    jaccard,
    levenshtein,
    normalized_edit_similarity,
    string_similarity,
)
from repro.nlp.stem import stem, stem_tokens
from repro.nlp.tokenize import (
    content_tokens,
    ngrams,
    normalize,
    numbers_in,
    quoted_strings,
    tokenize,
)
from repro.nlp.vectorize import TfidfVectorizer, cosine_top_k


class TestTokenize:
    def test_basic_words(self):
        assert tokenize("How many singers are there?") == [
            "how", "many", "singers", "are", "there",
        ]

    def test_quoted_strings_survive(self):
        assert "ABC Segment" in tokenize("the 'ABC Segment' audience")

    def test_numbers(self):
        assert tokenize("top 5 by 2.5") == ["top", "5", "by", "2.5"]

    def test_normalize(self):
        assert normalize("  Hello   WORLD  ") == "hello world"

    def test_content_tokens_drop_stopwords(self):
        assert content_tokens("show me the singers") == ["singers"]

    def test_ngrams(self):
        grams = ngrams(["a", "b", "c"], max_n=2)
        phrases = [g[2] for g in grams]
        assert phrases == ["a", "b", "c", "a b", "b c"]

    def test_quoted_strings_helper(self):
        assert quoted_strings("use 'x' and \"y\"") == ["x", "y"]

    def test_numbers_in(self):
        assert numbers_in("we are in 2024, top 5") == [2024.0, 5.0]


class TestStem:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("audiences", "audience"),
            ("segments", "segment"),
            ("countries", "country"),
            ("movies", "movie"),
            ("coaches", "coach"),
            ("created", "create"),
            ("status", "status"),
            ("dishes", "dish"),
        ],
    )
    def test_known_stems(self, word, expected):
        assert stem(word) == expected

    def test_plural_and_singular_agree(self):
        pairs = [("painting", "paintings"), ("rating", "ratings"), ("company", "companies")]
        for singular, plural in pairs:
            assert stem(singular) == stem(plural)

    def test_short_words_untouched(self):
        assert stem("age") == "age"
        assert stem("is") == "is"

    def test_stem_tokens(self):
        assert stem_tokens(["Singers", "created"]) == ["singer", "create"]


class TestNormalizationEdgeCases:
    """Inputs the semantic cache leans on: unicode, empties, numerics."""

    def test_non_ascii_text_yields_no_tokens(self):
        # Fully non-ASCII questions tokenize to nothing — the semcache
        # treats them as unsignable rather than colliding them.
        assert tokenize("你好吗") == []
        assert tokenize("？！。") == []

    def test_accented_words_split_deterministically(self):
        # The word regex is ASCII-only; accented characters split words
        # into their ASCII runs, the same way on every call.
        assert tokenize("créé café naïve") == ["cr", "caf", "na", "ve"]
        assert tokenize("créé café naïve") == tokenize("créé café naïve")

    def test_normalize_preserves_unicode_but_lowers_it(self):
        assert normalize("  Ünïcode   TEXT ") == "ünïcode text"

    def test_empty_and_whitespace_inputs(self):
        for text in ("", "   ", "\t\n"):
            assert tokenize(text) == []
            assert content_tokens(text) == []
            assert numbers_in(text) == []
        assert normalize("") == ""
        assert stem("") == ""

    def test_numeric_literal_vs_limit_keyword(self):
        # "top" is a ranking keyword, not a stopword: both it and the
        # digit survive tokenization for downstream limit extraction.
        assert content_tokens("top 5 audiences") == ["top", "5", "audiences"]
        # Spelled-out numbers are words here — digit mapping is the
        # signature layer's job, not the tokenizer's.
        assert numbers_in("top five audiences") == []
        assert numbers_in("top 5 audiences") == [5.0]

    @pytest.mark.parametrize(
        "pair",
        [
            ("audiences", "audience"),
            ("created", "creates"),
            ("segments", "segment"),
            ("companies", "company"),
        ],
    )
    def test_stemming_is_stable_across_paraphrase_pairs(self, pair):
        left, right = pair
        assert stem(left) == stem(right)

    @pytest.mark.parametrize(
        "word", ["audiences", "created", "companies", "status", "flight"]
    )
    def test_stemming_is_idempotent(self, word):
        assert stem(stem(word)) == stem(word)


class TestSimilarity:
    def test_levenshtein_basics(self):
        assert levenshtein("", "") == 0
        assert levenshtein("abc", "abc") == 0
        assert levenshtein("abc", "abd") == 1
        assert levenshtein("abc", "") == 3

    def test_edit_similarity_bounds(self):
        assert normalized_edit_similarity("same", "same") == 1.0
        assert 0.0 <= normalized_edit_similarity("abc", "xyz") <= 1.0

    def test_jaccard(self):
        assert jaccard({"a"}, {"a"}) == 1.0
        assert jaccard({"a"}, {"b"}) == 0.0
        assert jaccard(set(), set()) == 1.0

    def test_schema_linking_cases(self):
        assert string_similarity("release year", "Song_release_year") > 0.5
        assert string_similarity("profile count", "profilecount") > 0.6
        assert string_similarity("price", "description") < 0.4

    def test_identical_is_one(self):
        assert string_similarity("name", "name") == 1.0


@given(st.text(max_size=12), st.text(max_size=12))
@settings(max_examples=200, deadline=None)
def test_levenshtein_symmetry(a, b):
    assert levenshtein(a, b) == levenshtein(b, a)


@given(st.text(max_size=10), st.text(max_size=10), st.text(max_size=10))
@settings(max_examples=100, deadline=None)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestTfidf:
    CORPUS = [
        "how many singers are there",
        "list the names of all songs",
        "what is the average age of singers",
        "count the stadiums in the city",
    ]

    def test_fit_transform_shape(self):
        vec = TfidfVectorizer()
        matrix = vec.fit_transform(self.CORPUS)
        assert matrix.shape == (4, vec.vocabulary_size)

    def test_rows_are_normalized(self):
        matrix = TfidfVectorizer().fit_transform(self.CORPUS)
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_self_retrieval(self):
        vec = TfidfVectorizer()
        matrix = vec.fit_transform(self.CORPUS)
        query = vec.transform(["how many singers are there"])[0]
        top = cosine_top_k(query, matrix, 1)
        assert top[0][0] == 0

    def test_related_query_retrieval(self):
        vec = TfidfVectorizer()
        matrix = vec.fit_transform(self.CORPUS)
        query = vec.transform(["average age of the singers"])[0]
        top = cosine_top_k(query, matrix, 2)
        assert top[0][0] == 2

    def test_out_of_vocabulary_query(self):
        vec = TfidfVectorizer()
        matrix = vec.fit_transform(self.CORPUS)
        query = vec.transform(["zzz qqq"])[0]
        assert np.allclose(query, 0)

    def test_unfitted_raises(self):
        with pytest.raises(ValueError):
            TfidfVectorizer().transform(["x"])

    def test_empty_matrix_top_k(self):
        assert cosine_top_k(np.zeros(3), np.zeros((0, 3)), 5) == []
