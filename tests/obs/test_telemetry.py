"""Windowed telemetry: rolling percentiles, counters, SLO math, the hub."""

from __future__ import annotations

import pytest

from repro.obs.telemetry import (
    RollingCounter,
    RollingHistogram,
    SloPolicy,
    TelemetryHub,
)


class TestRollingHistogram:
    def test_empty_summary_is_all_zero(self, fake_clock):
        histogram = RollingHistogram(clock=fake_clock)
        summary = histogram.summary(60)
        assert summary.count == 0
        assert summary.p50_ms == 0.0
        assert summary.p95_ms == 0.0
        assert summary.max_ms == 0.0
        assert summary.as_dict()["rate_per_s"] == 0.0

    def test_percentiles_track_the_distribution(self, fake_clock):
        histogram = RollingHistogram(clock=fake_clock)
        for _ in range(90):
            histogram.observe(10.0)
        for _ in range(10):
            histogram.observe(100.0)
        summary = histogram.summary(60)
        assert summary.count == 100
        # Bin-interpolated estimates: p50 lands in the bin holding 10 ms,
        # p99 in the bin holding 100 ms; max is exact.
        assert 4.0 <= summary.p50_ms <= 16.0
        assert 64.0 <= summary.p99_ms <= 100.0
        assert summary.max_ms == 100.0
        assert summary.mean_ms == pytest.approx(19.0)

    def test_window_expiry_under_virtual_clock(self, fake_clock):
        histogram = RollingHistogram(
            bucket_seconds=5.0, bucket_count=180, clock=fake_clock
        )
        histogram.observe(50.0)
        assert histogram.summary(60).count == 1

        fake_clock.advance(30)
        assert histogram.summary(60).count == 1  # 30s old: inside 1m
        assert histogram.summary(300).count == 1

        fake_clock.advance(45)  # 75s old now
        assert histogram.summary(60).count == 0  # expired from 1m
        assert histogram.summary(300).count == 1  # still inside 5m

        fake_clock.advance(900)  # far past the 15m span
        assert histogram.summary(900).count == 0

    def test_buckets_recycle_after_a_long_idle_gap(self, fake_clock):
        histogram = RollingHistogram(
            bucket_seconds=1.0, bucket_count=4, clock=fake_clock
        )
        histogram.observe(5.0)
        fake_clock.advance(100)  # many ring revolutions later
        histogram.observe(7.0)
        summary = histogram.summary(4)
        assert summary.count == 1  # the stale bucket was recycled
        assert summary.max_ms == 7.0

    def test_window_clamped_to_ring_span(self, fake_clock):
        histogram = RollingHistogram(
            bucket_seconds=1.0, bucket_count=10, clock=fake_clock
        )
        histogram.observe(1.0)
        summary = histogram.summary(10_000)
        assert summary.window_s == 10.0

    def test_overflow_bin_estimate_capped_at_true_max(self, fake_clock):
        histogram = RollingHistogram(clock=fake_clock)
        huge = 10_000_000.0  # beyond the last bound: the open-ended bin
        histogram.observe(huge)
        summary = histogram.summary(60)
        assert summary.p99_ms <= huge
        assert summary.max_ms == huge

    def test_validation(self, fake_clock):
        with pytest.raises(ValueError):
            RollingHistogram(bucket_seconds=0, clock=fake_clock)
        with pytest.raises(ValueError):
            RollingHistogram(bucket_count=0, clock=fake_clock)


class TestRollingCounter:
    def test_windowed_totals_and_rates(self, fake_clock):
        counter = RollingCounter(clock=fake_clock)
        counter.incr()
        counter.incr(2)
        assert counter.total(60) == 3
        assert counter.rate(60) == pytest.approx(3 / 60)

    def test_totals_expire_with_their_window(self, fake_clock):
        counter = RollingCounter(clock=fake_clock)
        counter.incr(5)
        fake_clock.advance(120)
        assert counter.total(60) == 0
        assert counter.total(300) == 5


class TestSloPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            SloPolicy(latency_ms=0)
        with pytest.raises(ValueError):
            SloPolicy(target=1.0)
        with pytest.raises(ValueError):
            SloPolicy(target=0.0)


class TestTelemetryHub:
    def test_slo_attainment_and_burn_rate(self, fake_clock):
        hub = TelemetryHub(
            clock=fake_clock, slo=SloPolicy(latency_ms=100.0, target=0.9)
        )
        for _ in range(8):
            hub.record_request("ask", "team-a", 200, 50.0)  # good
        hub.record_request("ask", "team-a", 200, 500.0)  # too slow
        hub.record_request("ask", "team-a", 500, 10.0)  # 5xx

        snapshot = hub.snapshot()
        slo = snapshot["tenants"]["team-a"]["slo"]
        assert slo["objective_ms"] == 100.0
        assert slo["target"] == 0.9
        window = slo["1m"]
        assert window["total"] == 10
        assert window["good"] == 8
        assert window["attainment"] == pytest.approx(0.8)
        # Burning budget at twice the rate the 90% target allows.
        assert window["burn_rate"] == pytest.approx(2.0)

    def test_rates_and_counters(self, fake_clock):
        hub = TelemetryHub(clock=fake_clock)
        hub.record_request("ask", None, 200, 10.0)
        hub.record_request("ask", None, 500, 10.0)
        hub.record_request("ask", None, 429, 10.0)
        hub.record_request("healthz", None, 503, 1.0)
        hub.record_cache(True)
        hub.record_cache(True)
        hub.record_cache(False)

        snapshot = hub.snapshot()
        assert set(snapshot["routes"]) == {"ask", "healthz"}
        counters = snapshot["counters"]
        assert counters["requests"]["1m"]["total"] == 4
        assert counters["errors"]["1m"]["total"] == 2  # 500 + 503
        assert counters["shed"]["1m"]["total"] == 2  # 429 + 503
        rates = snapshot["rates"]["1m"]
        assert rates["error_rate"] == pytest.approx(0.5)
        assert rates["shed_rate"] == pytest.approx(0.5)
        assert rates["cache_hit_rate"] == pytest.approx(2 / 3)

    def test_tenant_latency_windows_in_snapshot(self, fake_clock):
        hub = TelemetryHub(clock=fake_clock)
        hub.record_request("ask", "team-a", 200, 40.0)
        snapshot = hub.snapshot()
        latency = snapshot["tenants"]["team-a"]["latency"]
        assert set(latency) == {"1m", "5m", "15m"}
        assert latency["1m"]["count"] == 1
        assert latency["1m"]["max_ms"] == 40.0

    def test_attainment_is_one_with_no_traffic(self, fake_clock):
        hub = TelemetryHub(clock=fake_clock)
        hub.record_request("ask", "team-a", 200, 1.0)
        fake_clock.advance(3600)  # everything expired
        window = hub.snapshot()["tenants"]["team-a"]["slo"]["1m"]
        assert window["total"] == 0
        assert window["attainment"] == 1.0
        assert window["burn_rate"] == 0.0
