"""JSONL trace round-trip and the disabled (no-op) mode."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.core.routing import FeedbackRouter
from repro.llm.simulated import SimulatedLLM


class TestJsonlRoundTrip:
    def test_export_and_read_back(self, tmp_path, fake_clock):
        obs.enable(clock=fake_clock)
        with obs.span("outer", scale="small"):
            fake_clock.advance(0.010)
            with obs.span("inner"):
                fake_clock.advance(0.002)
        obs.count("llm.calls", kind="nl2sql")
        obs.observe("llm.latency_ms", 1.25, kind="nl2sql")

        path = tmp_path / "trace.jsonl"
        written = obs.export_jsonl(path)
        lines = obs.read_trace_jsonl(path)
        assert len(lines) == written == 5  # meta + 2 spans + counter + histogram

        meta = lines[0]
        assert meta["type"] == "meta"
        assert meta["version"] == obs.TRACE_SCHEMA_VERSION
        assert meta["dropped_spans"] == 0

        spans = {line["name"]: line for line in lines if line["type"] == "span"}
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["inner"]["duration_ms"] == pytest.approx(2.0)
        assert spans["outer"]["duration_ms"] == pytest.approx(12.0)
        assert spans["outer"]["attrs"] == {"scale": "small"}

        (counter,) = [line for line in lines if line["type"] == "counter"]
        assert counter["name"] == "llm.calls"
        assert counter["labels"] == {"kind": "nl2sql"}
        assert counter["value"] == 1

        (histogram,) = [line for line in lines if line["type"] == "histogram"]
        assert histogram["count"] == 1
        assert histogram["p50"] == 1.25

    def test_every_line_is_standalone_json(self, tmp_path, fake_clock):
        obs.enable(clock=fake_clock)
        with obs.span("s"):
            pass
        path = tmp_path / "trace.jsonl"
        obs.export_jsonl(path)
        for raw in path.read_text().splitlines():
            parsed = json.loads(raw)
            assert "type" in parsed

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match="malformed"):
            obs.read_trace_jsonl(path)

    def test_line_without_type_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "x"}\n')
        with pytest.raises(ValueError, match="missing 'type'"):
            obs.read_trace_jsonl(path)


class TestNoopMode:
    def test_disabled_hooks_are_shared_noops(self):
        obs.disable()
        assert obs.span("anything") is obs.NOOP_SPAN
        assert obs.timer("anything") is obs.NOOP_TIMER
        obs.count("anything")  # swallowed, never raises
        obs.observe("anything", 1.0)

    def test_disabled_snapshot_is_empty(self):
        obs.disable()
        snapshot = obs.snapshot()
        assert snapshot["enabled"] is False
        assert snapshot["counters"] == []
        assert snapshot["spans"] == []

    def test_export_requires_enabled(self, tmp_path):
        obs.disable()
        with pytest.raises(RuntimeError):
            obs.export_jsonl(tmp_path / "trace.jsonl")

    def test_enable_installs_fresh_registries(self, fake_clock):
        obs.enable(clock=fake_clock)
        obs.count("c")
        obs.enable(clock=fake_clock)
        assert obs.get_metrics().counter_value("c") == 0

    def test_instrumented_path_identical_when_disabled(self):
        """Routing through instrumented code must not change behaviour."""
        obs.disable()
        router = FeedbackRouter(SimulatedLLM())
        label_disabled = router.route("do not give descriptions")
        obs.enable()
        label_enabled = router.route("do not give descriptions")
        assert label_disabled == label_enabled == "remove"
        # Only the enabled run recorded anything.
        assert obs.get_metrics().counter_total("routing.decisions") == 1

    def test_noop_overhead_path_records_nothing(self):
        obs.disable()
        llm = SimulatedLLM()
        router = FeedbackRouter(llm)
        router.route("also show the names")
        assert obs.get_metrics() is None
        assert obs.get_tracer() is None
