"""Metrics registry: counter math, histogram percentiles, timers."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    find_histogram,
    percentile,
    summarize_histogram,
)


class TestPercentile:
    def test_interpolated_median(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5
        assert percentile(list(range(1, 101)), 50) == 50.5

    def test_exact_order_statistics(self):
        data = [10, 20, 30]
        assert percentile(data, 0) == 10
        assert percentile(data, 100) == 30
        assert percentile(data, 50) == 20

    def test_interpolation_between_ranks(self):
        assert percentile(list(range(1, 11)), 90) == pytest.approx(9.1)

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_unsorted_input_is_sorted_first(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_empty_returns_none(self):
        assert percentile([], 50) is None

    def test_empty_returns_default_when_given(self):
        assert percentile([], 95, default=0.0) == 0.0
        assert percentile([], 99, default=-1.0) == -1.0

    def test_out_of_range_quantile_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestCounters:
    def test_count_accumulates(self):
        registry = MetricsRegistry()
        registry.count("calls")
        registry.count("calls", 2)
        assert registry.counter_value("calls") == 3

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.count("llm.calls", kind="nl2sql")
        registry.count("llm.calls", kind="nl2sql")
        registry.count("llm.calls", kind="routing")
        assert registry.counter_value("llm.calls", kind="nl2sql") == 2
        assert registry.counter_value("llm.calls", kind="routing") == 1
        assert registry.counter_total("llm.calls") == 3
        assert registry.counter_by_label("llm.calls", "kind") == {
            "nl2sql": 2,
            "routing": 1,
        }

    def test_missing_counter_reads_zero(self):
        registry = MetricsRegistry()
        assert registry.counter_value("never") == 0
        assert registry.counter_total("never") == 0


class TestHistograms:
    def test_summary_math(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.observe("latency", value)
        snapshot = registry.snapshot()
        entry = find_histogram(snapshot["histograms"], "latency")
        assert entry["count"] == 4
        assert entry["sum"] == 10.0
        assert entry["min"] == 1.0
        assert entry["max"] == 4.0
        assert entry["mean"] == 2.5
        assert entry["p50"] == 2.5

    def test_labelled_histograms_are_independent(self):
        registry = MetricsRegistry()
        registry.observe("latency", 1.0, kind="a")
        registry.observe("latency", 100.0, kind="b")
        assert registry.histogram_values("latency", kind="a") == [1.0]
        assert registry.histogram_values("latency", kind="b") == [100.0]

    def test_summarize_empty_histogram(self):
        summary = summarize_histogram("empty", {}, [])
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
        assert summary["p99"] == 0.0


class TestTimer:
    def test_timer_records_elapsed_ms(self, fake_clock):
        registry = MetricsRegistry(clock=fake_clock)
        with registry.timer("op.latency_ms", op="x"):
            fake_clock.advance(0.25)
        assert registry.histogram_values("op.latency_ms", op="x") == [250.0]

    def test_timer_records_even_on_exception(self, fake_clock):
        registry = MetricsRegistry(clock=fake_clock)
        with pytest.raises(RuntimeError):
            with registry.timer("op.latency_ms"):
                fake_clock.advance(0.5)
                raise RuntimeError("boom")
        assert registry.histogram_values("op.latency_ms") == [500.0]


class TestSnapshot:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.count("c", kind="k")
        registry.observe("h", 1.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == [
            {"name": "c", "labels": {"kind": "k"}, "value": 1}
        ]
        (histogram,) = snapshot["histograms"]
        assert histogram["name"] == "h"
        assert histogram["labels"] == {}
        assert histogram["count"] == 1


class TestMerge:
    def test_counters_add_and_histograms_extend(self):
        main = MetricsRegistry()
        main.count("c", 2, kind="k")
        main.observe("h", 1.0)
        worker = MetricsRegistry()
        worker.count("c", 3, kind="k")
        worker.count("other")
        worker.observe("h", 2.0)

        main.merge(worker)
        assert main.counter_value("c", kind="k") == 5
        assert main.counter_value("other") == 1
        assert main.histogram_values("h") == [1.0, 2.0]

    def test_source_registry_unchanged(self):
        main, worker = MetricsRegistry(), MetricsRegistry()
        worker.count("c")
        main.merge(worker)
        main.count("c")
        assert worker.counter_value("c") == 1

    def test_merge_order_does_not_change_snapshot(self):
        def worker(names):
            registry = MetricsRegistry()
            for name in names:
                registry.count(name)
                registry.observe(f"{name}.ms", 1.0)
            return registry

        a = MetricsRegistry()
        a.merge(worker(["x", "y"]))
        a.merge(worker(["z"]))
        b = MetricsRegistry()
        b.merge(worker(["z"]))
        b.merge(worker(["x", "y"]))
        assert a.snapshot() == b.snapshot()


class TestSortedSnapshot:
    def test_series_sorted_by_name_then_labels(self):
        registry = MetricsRegistry()
        registry.count("b", kind="z")
        registry.count("b", kind="a")
        registry.count("a")
        names = [
            (entry["name"], entry["labels"])
            for entry in registry.snapshot()["counters"]
        ]
        assert names == [("a", {}), ("b", {"kind": "a"}), ("b", {"kind": "z"})]

    def test_insertion_order_is_irrelevant(self):
        forward, backward = MetricsRegistry(), MetricsRegistry()
        series = [("m", {"w": 1}), ("m", {"w": 2}), ("k", {})]
        for name, labels in series:
            forward.count(name, **labels)
            forward.observe(f"{name}.ms", 5.0, **labels)
        for name, labels in reversed(series):
            backward.count(name, **labels)
            backward.observe(f"{name}.ms", 5.0, **labels)
        assert forward.snapshot() == backward.snapshot()

    def test_mixed_label_value_types_sortable(self):
        registry = MetricsRegistry()
        registry.count("c", status=200)
        registry.count("c", status="ok")
        registry.count("c", status=True)
        assert len(registry.snapshot()["counters"]) == 3
