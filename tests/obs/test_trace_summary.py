"""trace-summary: flame rollup and round drill-down from a saved trace."""

import pytest

from repro.obs.export import read_trace_jsonl, write_trace_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace_summary import summarize_trace, summarize_trace_file
from repro.obs.tracer import Tracer


def _synthetic_trace(fake_clock):
    """A small run: two correction rounds nested under an experiment span."""
    tracer = Tracer(clock=fake_clock)
    metrics = MetricsRegistry(clock=fake_clock)
    with tracer.span("experiment.figure2"):
        for round_index, corrected in ((1, False), (2, True)):
            with tracer.span(
                "correction.round", round=round_index, corrected=corrected
            ):
                with tracer.span("llm.complete"):
                    fake_clock.advance(0.010)
                with tracer.span("sql.execute"):
                    fake_clock.advance(0.002)
        metrics.count("feedback.given", feedback_type="descriptive")
        metrics.observe("round.latency_ms", 12.0)
        metrics.observe("round.latency_ms", 2.0)
    return tracer, metrics


class TestSummarizeTrace:
    def test_full_summary_sections(self, fake_clock, tmp_path):
        tracer, metrics = _synthetic_trace(fake_clock)
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, tracer, metrics)

        summary = summarize_trace_file(path)
        assert "Trace summary (schema v1)" in summary
        assert "7 spans" in summary
        assert "Flame rollup" in summary
        assert "experiment.figure2" in summary
        # Children are indented under their parent path.
        assert "  correction.round" in summary
        assert "    llm.complete" in summary
        # Round drill-down groups by the round attribute.
        assert "round 1: 1 sessions" in summary
        assert "round 2: 1 sessions" in summary
        assert "1 corrected" in summary
        # Metrics sections are tabulated.
        assert "feedback.given" in summary
        assert "round.latency_ms" in summary

    def test_flame_totals_and_shares(self, fake_clock, tmp_path):
        tracer, metrics = _synthetic_trace(fake_clock)
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, tracer, metrics)

        summary = summarize_trace_file(path)
        flame = summary.split("Flame rollup")[1].split("Correction rounds")[0]
        root_line = next(
            line for line in flame.splitlines() if "experiment.figure2" in line
        )
        # The root owns 100% of the wall-clock (24 ms of advances).
        assert "100.0%" in root_line
        assert "24.00" in root_line
        llm_line = next(
            line for line in flame.splitlines() if "llm.complete" in line
        )
        # Two calls of 10 ms each.
        assert "2" in llm_line.split()
        assert "20.00" in llm_line

    def test_max_depth_truncates(self, fake_clock):
        tracer, metrics = _synthetic_trace(fake_clock)
        from repro.obs.export import trace_lines

        summary = summarize_trace(trace_lines(tracer, metrics), max_depth=1)
        assert "experiment.figure2" in summary
        flame = summary.split("Flame rollup")[1].split("Correction rounds")[0]
        assert "correction.round" not in flame
        # The drill-down section still sees every span.
        assert "round 1: 1 sessions" in summary

    def test_orphaned_parent_becomes_root(self):
        # Spans whose parent was dropped by the span cap must still render.
        lines = [
            {"type": "meta", "version": 1, "dropped_spans": 3},
            {
                "type": "span",
                "id": 7,
                "parent": 2,  # never exported
                "name": "llm.complete",
                "start_ms": 0.0,
                "duration_ms": 5.0,
                "attrs": {},
            },
        ]
        summary = summarize_trace(lines)
        assert "llm.complete" in summary
        assert "(3 dropped)" in summary

    def test_empty_trace(self):
        summary = summarize_trace([{"type": "meta", "version": 1}])
        assert "(no spans in trace)" in summary
        assert "(no correction.round spans in trace)" in summary
        assert "(no counters in trace)" in summary
        assert "(no histograms in trace)" in summary

    def test_roundtrip_through_jsonl(self, fake_clock, tmp_path):
        tracer, metrics = _synthetic_trace(fake_clock)
        path = tmp_path / "trace.jsonl"
        count = write_trace_jsonl(path, tracer, metrics)
        lines = read_trace_jsonl(path)
        assert len(lines) == count
        assert summarize_trace(lines) == summarize_trace_file(path)

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match="malformed trace line"):
            summarize_trace_file(path)
