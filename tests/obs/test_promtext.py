"""Prometheus text exposition: structural validity plus exact samples."""

from __future__ import annotations

import re

import pytest

from repro import obs
from repro.obs.promtext import (
    PROMETHEUS_CONTENT_TYPE,
    escape_value,
    render_prometheus,
    sanitize_label,
    sanitize_name,
)
from repro.obs.telemetry import SloPolicy, TelemetryHub

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*",?)*\})?'
    r" -?(?:\d+(?:\.\d+)?(?:e-?\d+)?|inf|nan)$"
)


def assert_valid_exposition(text: str) -> dict:
    """Parse an exposition page; return {family: type}. Fails on any
    malformed line, unknown type, or sample without a HELP+TYPE header."""
    assert text.endswith("\n")
    helped: set = set()
    typed: dict = {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            _hash, _kw, name, kind = line.split()
            assert kind in {"counter", "gauge", "summary", "histogram"}, line
            typed[name] = kind
            continue
        match = _SAMPLE.match(line)
        assert match, f"malformed sample line: {line!r}"
        name = match.group("name")
        family = re.sub(r"_(sum|count|bucket)$", "", name)
        assert name in typed or family in typed, f"untyped sample: {line!r}"
        assert name in helped or family in helped, f"no HELP for: {line!r}"
    return typed


class TestDisabled:
    def test_everything_off_is_still_valid(self):
        text = render_prometheus(None, None)
        families = assert_valid_exposition(text)
        assert families == {"fisql_serve_up": "gauge"}
        assert "fisql_serve_up 1\n" in text

    def test_up_can_report_down(self):
        assert "fisql_serve_up 0" in render_prometheus(None, None, up=False)

    def test_content_type_pins_the_exposition_version(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


class TestRegistrySources:
    def test_counters_and_summaries(self, enabled_obs):
        obs.count("serve.requests", route="ask", status=200)
        obs.count("serve.requests", route="ask", status=200)
        obs.count("cache.hit", kind="single")
        with obs.get_tracer().span("work"):
            pass
        text = render_prometheus(obs.snapshot(), None)
        families = assert_valid_exposition(text)
        assert families["fisql_serve_requests_total"] == "counter"
        # Labels are rendered sorted by key.
        assert (
            'fisql_serve_requests_total{route="ask",status="200"} 2' in text
        )
        assert 'fisql_cache_hit_total{kind="single"} 1' in text

    def test_histograms_become_summaries(self, enabled_obs):
        obs.get_metrics().observe("serve.latency_ms", 10.0, route="ask")
        text = render_prometheus(obs.snapshot(), None)
        families = assert_valid_exposition(text)
        assert families["fisql_serve_latency_ms"] == "summary"
        assert (
            'fisql_serve_latency_ms{quantile="0.95",route="ask"} 10' in text
        )
        assert 'fisql_serve_latency_ms_sum{route="ask"} 10' in text
        assert 'fisql_serve_latency_ms_count{route="ask"} 1' in text


class TestTelemetrySource:
    def test_per_tenant_quantiles_and_slo_gauges(self, fake_clock):
        hub = TelemetryHub(
            clock=fake_clock, slo=SloPolicy(latency_ms=100.0, target=0.9)
        )
        for _ in range(9):
            hub.record_request("ask", "team-a", 200, 50.0)
        hub.record_request("ask", "team-a", 200, 500.0)
        hub.record_cache(True)

        text = render_prometheus(None, hub.snapshot())
        families = assert_valid_exposition(text)
        assert families["fisql_serve_tenant_latency_ms"] == "gauge"
        # The acceptance-criterion line: a per-tenant windowed p95 gauge.
        p95 = re.search(
            r'^fisql_serve_tenant_latency_ms\{quantile="0.95",'
            r'tenant="team-a",window="1m"\} (\S+)$',
            text,
            re.M,
        )
        assert p95, text
        assert float(p95.group(1)) > 0
        assert re.search(
            r'^fisql_serve_route_latency_ms\{quantile="0.5",route="ask",'
            r'window="5m"\} \S+$',
            text,
            re.M,
        )
        assert (
            'fisql_serve_slo_attainment{tenant="team-a",window="1m"} 0.9'
            in text
        )
        assert (
            'fisql_serve_slo_burn_rate{tenant="team-a",window="1m"} 1' in text
        )
        assert 'fisql_serve_requests_windowed{window="1m"} 10' in text
        assert 'fisql_serve_cache_hit_windowed{window="1m"} 1' in text

    def test_idle_scrapes_are_byte_identical(self, fake_clock):
        hub = TelemetryHub(clock=fake_clock)
        hub.record_request("ask", "t", 200, 5.0)
        first = render_prometheus(None, hub.snapshot())
        second = render_prometheus(None, hub.snapshot())
        assert first == second


class TestSanitization:
    @pytest.mark.parametrize(
        ("raw", "clean"),
        [
            ("serve.latency_ms", "serve_latency_ms"),
            ("9lives", "_9lives"),
            ("", "_"),
            ("ok:name", "ok:name"),
        ],
    )
    def test_sanitize_name(self, raw, clean):
        assert sanitize_name(raw) == clean

    def test_sanitize_label_rejects_colons(self):
        assert sanitize_label("a:b") == "a_b"

    def test_escape_value(self):
        assert escape_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_hostile_label_values_stay_parseable(self, fake_clock):
        hub = TelemetryHub(clock=fake_clock)
        hub.record_request("ask", 'evil"tenant\\with\nnewline', 200, 5.0)
        text = render_prometheus(None, hub.snapshot())
        assert_valid_exposition(text)
        assert 'tenant="evil\\"tenant\\\\with\\nnewline"' in text
