"""End-to-end: ``fisql-repro … --metrics/--trace`` and the run report."""

from __future__ import annotations

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.obs.reporting import render_run_report


class TestCliMetrics:
    def test_figure2_small_metrics_emits_report_sections(self, capsys):
        exit_code = cli_main(["figure2", "--scale", "small", "--metrics"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "Run report (repro.obs)" in out
        # Section headers print even when the artifact never routes/corrects.
        assert "Routing decision distribution" in out
        assert "Correction rounds" in out
        assert "LLM calls by prompt kind" in out
        assert "SQL parse/execute" in out

    def test_table2_small_metrics_full_report(self, capsys):
        exit_code = cli_main(["table2", "--scale", "small", "--metrics"])
        assert exit_code == 0
        out = capsys.readouterr().out
        # Per-Prompt.kind LLM counts/latency.
        assert "nl2sql_feedback" in out
        assert "feedback_routing" in out
        assert "Mean ms" in out
        # Routing decision distribution with a total row.
        assert "Routing decision distribution" in out
        assert "total" in out
        # Per-round correction counts.
        assert "Rounds run" in out
        assert "Corrected" in out
        assert "sessions:" in out
        # SQL parse/execute totals.
        assert "parse:" in out and "failures" in out
        assert "execute:" in out

    def test_no_flags_prints_no_report_and_stays_disabled(self, capsys):
        exit_code = cli_main(["figure2", "--scale", "small"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Run report" not in out
        assert "[obs]" not in out
        assert not obs.is_enabled()

    def test_obs_disabled_after_instrumented_run(self, capsys):
        cli_main(["figure2", "--scale", "small", "--metrics"])
        capsys.readouterr()
        assert not obs.is_enabled()


class TestCliTrace:
    def test_trace_writes_valid_jsonl(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        exit_code = cli_main(
            ["table2", "--scale", "small", "--trace", str(trace_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "[obs] wrote" in out
        lines = obs.read_trace_jsonl(trace_path)
        assert lines, "trace must not be empty"
        assert lines[0]["type"] == "meta"
        spans = [line for line in lines if line["type"] == "span"]
        assert spans, "trace must contain spans"
        for span in spans:
            assert "start_ms" in span
            assert "duration_ms" in span
            assert "parent" in span
            assert span["duration_ms"] >= 0.0
        roots = [span for span in spans if span["parent"] is None]
        assert roots, "at least one root span"
        counters = [line for line in lines if line["type"] == "counter"]
        assert any(line["name"] == "llm.calls" for line in counters)


class TestTracePreflight:
    """The --trace preflight must not destroy or strand trace files."""

    def _failing_artifacts(self, monkeypatch):
        import repro.cli as cli_module

        def boom(_context):
            raise RuntimeError("mid-run failure")

        runner, renderer = cli_module._ARTIFACTS["figure2"]
        monkeypatch.setitem(cli_module._ARTIFACTS, "figure2", (boom, renderer))

    def test_existing_trace_preserved_when_run_fails(
        self, tmp_path, monkeypatch, capsys
    ):
        trace_path = tmp_path / "trace.jsonl"
        trace_path.write_text('{"type": "meta"}\n', encoding="utf-8")
        self._failing_artifacts(monkeypatch)
        with pytest.raises(RuntimeError):
            cli_main(["figure2", "--scale", "small", "--trace", str(trace_path)])
        assert trace_path.read_text(encoding="utf-8") == '{"type": "meta"}\n'

    def test_no_stub_left_behind_when_run_fails(
        self, tmp_path, monkeypatch, capsys
    ):
        trace_path = tmp_path / "trace.jsonl"
        self._failing_artifacts(monkeypatch)
        with pytest.raises(RuntimeError):
            cli_main(["figure2", "--scale", "small", "--trace", str(trace_path)])
        assert not trace_path.exists()

    def test_obs_disabled_even_when_run_fails(self, tmp_path, monkeypatch):
        self._failing_artifacts(monkeypatch)
        with pytest.raises(RuntimeError):
            cli_main(
                ["figure2", "--scale", "small", "--trace",
                 str(tmp_path / "t.jsonl")]
            )
        assert not obs.is_enabled()

    def test_unwritable_trace_path_fails_before_the_run(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(
                ["figure2", "--scale", "small", "--trace",
                 "/nonexistent-dir/trace.jsonl"]
            )
        assert excinfo.value.code == 2
        assert "cannot write trace file" in capsys.readouterr().err

    def test_existing_trace_overwritten_on_success(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        trace_path.write_text("old content\n", encoding="utf-8")
        exit_code = cli_main(
            ["figure2", "--scale", "small", "--trace", str(trace_path)]
        )
        assert exit_code == 0
        lines = obs.read_trace_jsonl(trace_path)
        assert lines and lines[0]["type"] == "meta"


class TestRunReportRendering:
    def test_empty_snapshot_renders_placeholders(self):
        report = render_run_report(
            {
                "enabled": True,
                "counters": [],
                "histograms": [],
                "spans": [],
                "dropped_spans": 0,
            }
        )
        assert "(no spans recorded)" in report
        assert "(no LLM calls recorded)" in report
        assert "(no routing decisions recorded)" in report
        assert "(no correction sessions recorded)" in report
        assert "(no SQL activity recorded)" in report

    def test_routing_shares_sum_to_100(self):
        snapshot = {
            "enabled": True,
            "counters": [
                {
                    "name": "routing.decisions",
                    "labels": {"decision": "add"},
                    "value": 1,
                },
                {
                    "name": "routing.decisions",
                    "labels": {"decision": "edit"},
                    "value": 3,
                },
            ],
            "histograms": [],
            "spans": [],
            "dropped_spans": 0,
        }
        report = render_run_report(snapshot)
        assert "25.0%" in report
        assert "75.0%" in report
        assert "100.0%" in report
