"""`fisql-repro top` renderer: golden snapshot plus edge cases.

``render_top`` is pure (payload in, text out), so the main test pins the
full frame for a hand-built ``/statusz`` payload. Table cells are padded,
so expected lines carry significant trailing spaces — they are assembled
from an explicit line list rather than a triple-quoted block to keep
them robust against whitespace-stripping editors.
"""

from __future__ import annotations

from repro.obs.top import CLEAR_SCREEN, DISPLAY_WINDOWS, render_top

PAYLOAD = {
    "ready": True,
    "draining": False,
    "sessions": {"resident": 3, "max_sessions": 64, "created": 7},
    "gate": {"inflight": 2, "max_inflight": 8, "utilization": 0.25},
    "batch_queue_depth": 1,
    "breakers": {"team-a": "closed", "team-b": "open"},
    "telemetry": {
        "rates": {
            "1m": {
                "error_rate": 0.1,
                "shed_rate": 0.0,
                "cache_hit_rate": 0.5,
            },
            "5m": {
                "error_rate": 0.05,
                "shed_rate": 0.0,
                "cache_hit_rate": 0.5,
            },
        },
        "routes": {
            "ask": {
                "1m": {
                    "count": 10,
                    "rate_per_s": 0.1667,
                    "p50_ms": 12.0,
                    "p95_ms": 48.0,
                    "p99_ms": 90.0,
                    "max_ms": 95.0,
                },
                "5m": {
                    "count": 40,
                    "rate_per_s": 0.1333,
                    "p50_ms": 11.0,
                    "p95_ms": 50.0,
                    "p99_ms": 92.0,
                    "max_ms": 120.0,
                },
            },
            "feedback": {
                "1m": {
                    "count": 2,
                    "rate_per_s": 0.0333,
                    "p50_ms": 20.0,
                    "p95_ms": 22.0,
                    "p99_ms": 22.0,
                    "max_ms": 22.0,
                },
            },
        },
        "tenants": {
            "team-a": {
                "latency": {
                    "1m": {
                        "count": 6,
                        "p50_ms": 10.0,
                        "p95_ms": 40.0,
                        "p99_ms": 80.0,
                        "max_ms": 85.0,
                    }
                },
                "slo": {
                    "target": 0.95,
                    "objective_ms": 500.0,
                    "1m": {"attainment": 0.8333, "burn_rate": 3.33},
                },
            },
        },
    },
}

GOLDEN = "\n".join(
    [
        "fisql-serve top — ready | sessions 3/64 (created 7) | "
        "inflight 2/8 (25.00%) | batch queue 1",
        "rates     1m: err 10.00% shed 0.00% cache 50.00% | "
        "5m: err 5.00% shed 0.00% cache 50.00%",
        "SLO objective: p(0.95) of requests under 500.0 ms",
        "",
        "Routes",
        "route     win  count  req/s  p50   p95   p99   max  ",
        "----------------------------------------------------",
        "ask       1m   10     0.17   12.0  48.0  90.0  95.0 ",
        "          5m   40     0.13   11.0  50.0  92.0  120.0",
        "feedback  1m   2      0.03   20.0  22.0  22.0  22.0 ",
        "",
        "Tenants",
        "tenant  win  count  p50   p95   p99   slo     burn   ",
        "-----------------------------------------------------",
        "team-a  1m   6      10.0  40.0  80.0  83.33%  3.33x !",
        "",
        "Breakers: team-b=open",
        "",
    ]
)


class TestGoldenFrame:
    def test_full_frame_snapshot(self):
        assert render_top(PAYLOAD) == GOLDEN

    def test_rendering_is_deterministic(self):
        assert render_top(PAYLOAD) == render_top(PAYLOAD)


def _semcache_payload():
    payload = {
        "ready": True,
        "sessions": {"resident": 1, "max_sessions": 64, "created": 1},
        "gate": {"inflight": 0, "max_inflight": 8, "utilization": 0.0},
        "batch_queue_depth": 0,
        "semcache": {
            "entries": 2,
            "max_entries": 4096,
            "invalidations": 1,
            "evictions": 0,
        },
        "telemetry": {
            "rates": {
                "1m": {
                    "error_rate": 0.0,
                    "shed_rate": 0.0,
                    "cache_hit_rate": 0.25,
                    "semcache_hit_rate": 0.5,
                    "semcache_bypass_rate": 0.2,
                },
                "5m": {
                    "error_rate": 0.0,
                    "shed_rate": 0.0,
                    "cache_hit_rate": 0.25,
                    "semcache_hit_rate": 0.5,
                    "semcache_bypass_rate": 0.2,
                },
            },
        },
    }
    return payload


SEMCACHE_GOLDEN = "\n".join(
    [
        "fisql-serve top — ready | sessions 1/64 (created 1) | "
        "inflight 0/8 (0.00%) | batch queue 0",
        "rates     1m: err 0.00% shed 0.00% cache 25.00% | "
        "5m: err 0.00% shed 0.00% cache 25.00%",
        "",
        "Routes",
        "(no traffic recorded yet)",
        "",
        "Tenants",
        "(no tenant traffic recorded yet)",
        "",
        "Caches",
        "win  completion  semantic  bypass",
        "---------------------------------",
        "1m   25.00%      50.00%    20.00%",
        "5m   25.00%      50.00%    20.00%",
        "semcache entries: 2/4096 | invalidations: 1 | evictions: 0",
        "",
    ]
)


class TestCachePanel:
    def test_semcache_frame_snapshot(self):
        assert render_top(_semcache_payload()) == SEMCACHE_GOLDEN

    def test_panel_absent_without_semcache_rates(self):
        # The plain golden frame above is the real guarantee; this pins
        # the gate directly: no semcache rates, no Caches section.
        assert "Caches" not in render_top(PAYLOAD)

    def test_panel_renders_without_statusz_section(self):
        payload = _semcache_payload()
        del payload["semcache"]
        frame = render_top(payload)
        assert "Caches" in frame
        assert "semcache entries:" not in frame


class TestEdgeCases:
    def test_empty_payload_shows_fallbacks(self):
        frame = render_top({})
        assert "NOT READY" in frame
        assert "(no traffic recorded yet)" in frame
        assert "(no tenant traffic recorded yet)" in frame
        assert "Breakers:" not in frame  # all-closed (here: none) is quiet

    def test_draining_wins_over_ready(self):
        frame = render_top({"ready": True, "draining": True})
        assert "DRAINING" in frame

    def test_burn_under_one_is_not_flagged(self):
        payload = {
            "ready": True,
            "telemetry": {
                "tenants": {
                    "t": {
                        "latency": {},
                        "slo": {
                            "target": 0.95,
                            "objective_ms": 500.0,
                            "1m": {"attainment": 0.99, "burn_rate": 0.2},
                        },
                    }
                }
            },
        }
        frame = render_top(payload)
        assert "0.20x" in frame
        assert "0.20x !" not in frame

    def test_closed_breakers_are_omitted(self):
        frame = render_top({"ready": True, "breakers": {"a": "closed"}})
        assert "Breakers:" not in frame

    def test_constants(self):
        assert DISPLAY_WINDOWS == ("1m", "5m", "15m")
        assert CLEAR_SCREEN.startswith("\x1b")
