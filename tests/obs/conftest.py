"""Observability fixtures: keep the process-global state clean per test."""

from __future__ import annotations

import pytest

from repro import obs


class FakeClock:
    """A manually-advanced monotonic clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self.value = start

    def __call__(self) -> float:
        return self.value

    def advance(self, seconds: float) -> None:
        self.value += seconds


@pytest.fixture()
def fake_clock() -> FakeClock:
    return FakeClock()


@pytest.fixture()
def enabled_obs():
    obs.enable()
    yield
    obs.disable()


@pytest.fixture(autouse=True)
def _obs_disabled_after_each_test():
    """Tests may enable() freely; the global always ends the test disabled."""
    yield
    obs.disable()
