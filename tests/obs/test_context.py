"""Correlation-ID context: binding, nesting, thread isolation, minting."""

from __future__ import annotations

import threading

from repro.obs.context import (
    current_request_id,
    deterministic_id_factory,
    new_request_id,
    request_context,
)


class TestRequestContext:
    def test_default_is_none(self):
        assert current_request_id() is None

    def test_binds_and_restores(self):
        with request_context("r1"):
            assert current_request_id() == "r1"
            with request_context("r2"):
                assert current_request_id() == "r2"
            assert current_request_id() == "r1"
        assert current_request_id() is None

    def test_restores_after_exception(self):
        try:
            with request_context("r1"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_request_id() is None

    def test_threads_do_not_inherit_the_context(self):
        # One request per thread: a worker spawned mid-request must not
        # see the spawning request's id.
        seen: dict = {}

        def worker() -> None:
            seen["id"] = current_request_id()

        with request_context("r1"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["id"] is None


class TestIdFactories:
    def test_new_request_id_is_unique_and_greppable(self):
        first, second = new_request_id(), new_request_id()
        assert first != second
        assert first.startswith("req-")
        assert second.startswith("req-")

    def test_deterministic_factory_is_sequential(self):
        make = deterministic_id_factory("x")
        assert [make(), make(), make()] == ["x-000001", "x-000002", "x-000003"]

    def test_deterministic_factories_are_independent(self):
        a, b = deterministic_id_factory(), deterministic_id_factory()
        assert a() == "req-000001"
        assert a() == "req-000002"
        assert b() == "req-000001"
