"""StructuredLog: request-id stamping, size rotation, pruning, the facade."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.context import request_context
from repro.obs.structured_log import StructuredLog


def _lines(path) -> list:
    return [
        json.loads(line) for line in path.read_text().splitlines() if line
    ]


class TestEvents:
    def test_event_fields_and_timestamp(self, tmp_path, fake_clock):
        fake_clock.value = 1234.5
        log = StructuredLog(tmp_path, clock=fake_clock)
        log.event("serve.request", route="ask", status=200)
        log.close()
        (record,) = _lines(log.path)
        assert record["event"] == "serve.request"
        assert record["ts"] == 1234.5
        assert record["route"] == "ask"
        assert record["status"] == 200

    def test_request_id_stamped_only_inside_a_request(
        self, tmp_path, fake_clock
    ):
        log = StructuredLog(tmp_path, clock=fake_clock)
        log.event("outside")
        with request_context("req-000042"):
            log.event("inside", size=3)
        log.close()
        outside, inside = _lines(log.path)
        assert "request_id" not in outside
        assert inside["request_id"] == "req-000042"
        assert inside["size"] == 3

    def test_lines_are_canonical_json(self, tmp_path, fake_clock):
        log = StructuredLog(tmp_path, clock=fake_clock)
        log.event("z", b=1, a=2)
        log.close()
        (line,) = log.path.read_text().splitlines()
        assert line == '{"a":2,"b":1,"event":"z","ts":0.0}'


class TestRotation:
    def test_rotation_and_pruning(self, tmp_path, fake_clock):
        # max_bytes=1: every event overflows the active file and rotates.
        log = StructuredLog(
            tmp_path, max_bytes=1, max_files=2, clock=fake_clock
        )
        for index in range(5):
            log.event("e", i=index)
        log.close()
        assert log.rotations == 5
        names = [path.name for path in log.files()]
        assert names == ["events-000004.jsonl", "events-000005.jsonl"]
        # The surviving files hold the *latest* events.
        (fourth,) = _lines(tmp_path / "events-000004.jsonl")
        assert fourth["i"] == 3

    def test_reopen_continues_rotation_numbering(self, tmp_path, fake_clock):
        first = StructuredLog(
            tmp_path, max_bytes=1, max_files=5, clock=fake_clock
        )
        first.event("a")
        first.close()
        second = StructuredLog(
            tmp_path, max_bytes=1, max_files=5, clock=fake_clock
        )
        second.event("b")
        second.close()
        names = [path.name for path in second.files()]
        assert names == ["events-000001.jsonl", "events-000002.jsonl"]

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            StructuredLog(tmp_path, max_bytes=0)
        with pytest.raises(ValueError):
            StructuredLog(tmp_path, max_files=0)


class TestObsFacade:
    def test_event_is_noop_without_a_log(self):
        obs.event("nothing.happens", x=1)  # must not raise
        assert obs.get_event_log() is None

    def test_set_event_log_and_emit(self, tmp_path):
        log = StructuredLog(tmp_path)
        obs.set_event_log(log)
        assert obs.get_event_log() is log
        obs.event("x", a=1)
        obs.set_event_log(None)  # closes the previous sink
        (record,) = _lines(log.path)
        assert record["event"] == "x"
        assert record["a"] == 1

    def test_disable_detaches_the_log(self, tmp_path):
        obs.set_event_log(StructuredLog(tmp_path))
        obs.disable()
        assert obs.get_event_log() is None
