"""Span tracer: nesting, deterministic timing, caps, thread isolation."""

from __future__ import annotations

import threading

import pytest

from repro.obs.tracer import NOOP_SPAN, Tracer


class TestSpanNesting:
    def test_parent_links_and_timing(self, fake_clock):
        tracer = Tracer(clock=fake_clock)
        with tracer.span("outer", scale="small") as outer:
            fake_clock.advance(0.010)
            with tracer.span("inner") as inner:
                fake_clock.advance(0.005)
        records = {record.name: record for record in tracer.records()}
        assert set(records) == {"outer", "inner"}
        assert records["inner"].parent_id == records["outer"].span_id
        assert records["outer"].parent_id is None
        assert records["inner"].duration_ms == pytest.approx(5.0)
        assert records["outer"].duration_ms == pytest.approx(15.0)
        assert records["outer"].start_ms == pytest.approx(0.0)
        assert records["inner"].start_ms == pytest.approx(10.0)
        assert records["outer"].attributes == {"scale": "small"}

    def test_siblings_share_a_parent(self, fake_clock):
        tracer = Tracer(clock=fake_clock)
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        children = [r for r in tracer.records() if r.name in ("a", "b")]
        assert all(child.parent_id == root.span_id for child in children)

    def test_set_attribute_on_live_span(self, fake_clock):
        tracer = Tracer(clock=fake_clock)
        with tracer.span("work") as span:
            span.set("rows", 3)
        (record,) = tracer.records()
        assert record.attributes == {"rows": 3}

    def test_exception_recorded_and_propagated(self, fake_clock):
        tracer = Tracer(clock=fake_clock)
        try:
            with tracer.span("boom"):
                raise RuntimeError("nope")
        except RuntimeError:
            pass
        (record,) = tracer.records()
        assert record.attributes["error"] == "RuntimeError"

    def test_span_ids_are_unique_and_monotonic(self, fake_clock):
        tracer = Tracer(clock=fake_clock)
        for _index in range(5):
            with tracer.span("s"):
                pass
        ids = [record.span_id for record in tracer.records()]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5


class TestTracerLimits:
    def test_max_spans_cap_counts_drops(self, fake_clock):
        tracer = Tracer(clock=fake_clock, max_spans=2)
        for _index in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.records()) == 2
        assert tracer.dropped == 3

    def test_aggregate_rolls_up_by_name(self, fake_clock):
        tracer = Tracer(clock=fake_clock)
        for duration in (0.001, 0.003):
            with tracer.span("fast"):
                fake_clock.advance(duration)
        with tracer.span("slow"):
            fake_clock.advance(0.1)
        rollup = {row["name"]: row for row in tracer.aggregate()}
        assert rollup["fast"]["count"] == 2
        assert round(rollup["fast"]["total_ms"], 6) == 4.0
        assert round(rollup["fast"]["mean_ms"], 6) == 2.0
        assert round(rollup["slow"]["max_ms"], 6) == 100.0
        # Sorted by total time descending.
        assert [row["name"] for row in tracer.aggregate()] == ["slow", "fast"]


class TestThreadIsolation:
    def test_threads_get_independent_stacks(self, fake_clock):
        tracer = Tracer(clock=fake_clock)
        results = {}

        def worker():
            with tracer.span("thread-span") as span:
                results["parent"] = span.parent_id

        with tracer.span("main-span"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The worker's span must not adopt the main thread's open span.
        assert results["parent"] is None

    def test_concurrent_recording_is_lossless(self, fake_clock):
        tracer = Tracer(clock=fake_clock)

        def worker():
            for _index in range(50):
                with tracer.span("w"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer.records()) == 200
        ids = [record.span_id for record in tracer.records()]
        assert len(set(ids)) == 200


class TestNoopSpan:
    def test_noop_span_is_inert(self):
        with NOOP_SPAN as span:
            assert span.set("k", "v") is NOOP_SPAN
