"""The batched/cached dispatch layer: keys, adapters, cache, batcher."""

import threading

import pytest

from repro import obs
from repro.datasets.base import Demonstration
from repro.errors import TransientLLMError
from repro.llm.dispatch import (
    BatchingChatModel,
    CachingChatModel,
    CompletionCache,
    canonical_prompt_key,
    complete_batch,
    settle_batch,
)
from repro.llm.interface import Completion, Prompt
from repro.llm.prompts import nl2sql_prompt
from repro.llm.simulated import SimulatedLLM
from repro.sql.schema import DatabaseSchema


@pytest.fixture(autouse=True)
def _obs_disabled_after_each_test():
    yield
    obs.disable()


class RecordingLLM:
    """Sequential-only model that records every prompt it answers."""

    def __init__(self) -> None:
        self.seen = []

    def complete(self, prompt: Prompt) -> Completion:
        self.seen.append(prompt.text)
        return Completion(text=f"SQL({prompt.text})")


class NativeBatchLLM(RecordingLLM):
    """A model with a native batch path, for adapter-routing assertions."""

    def __init__(self) -> None:
        super().__init__()
        self.batch_calls = 0

    def complete_batch(self, prompts):
        self.batch_calls += 1
        return [self.complete(prompt) for prompt in prompts]


class FlakyLLM:
    """Fails every prompt whose text contains 'bad'."""

    def complete(self, prompt: Prompt) -> Completion:
        if "bad" in prompt.text:
            raise TransientLLMError(f"flaky: {prompt.text}")
        return Completion(text=prompt.text.upper())


def _prompt(text: str, kind: str = "nl2sql", **payload) -> Prompt:
    return Prompt(kind=kind, text=text, payload=payload)


class TestCanonicalPromptKey:
    def test_deterministic(self):
        a = _prompt("q", question="q", n=1)
        b = _prompt("q", question="q", n=1)
        assert canonical_prompt_key(a) == canonical_prompt_key(b)

    def test_text_and_kind_matter(self):
        base = canonical_prompt_key(_prompt("q"))
        assert canonical_prompt_key(_prompt("other")) != base
        assert canonical_prompt_key(_prompt("q", kind="feedback")) != base

    def test_payload_scalars_matter_even_outside_text(self):
        # context_key/feedback_type influence the simulated editor but are
        # not part of the rendered text — the key must separate them.
        a = _prompt("same text", context_key="chat:1")
        b = _prompt("same text", context_key="chat:3")
        assert canonical_prompt_key(a) != canonical_prompt_key(b)

    def test_demo_glossary_matters(self, music_db):
        demo_plain = Demonstration(question="q", sql="SELECT 1", db_id="db")
        demo_glossed = Demonstration(
            question="q",
            sql="SELECT 1",
            db_id="db",
            glossary={"audience": "segments"},
        )
        a = nl2sql_prompt(music_db.schema, "how many?", demos=[demo_plain])
        b = nl2sql_prompt(music_db.schema, "how many?", demos=[demo_glossed])
        assert a.text == b.text  # glossary is invisible in the rendering...
        assert canonical_prompt_key(a) != canonical_prompt_key(b)

    def test_schema_objects_hash_by_name(self, music_db):
        prompt = nl2sql_prompt(music_db.schema, "how many singers?")
        assert isinstance(prompt.payload["schema"], DatabaseSchema)
        key = canonical_prompt_key(prompt)
        assert key == canonical_prompt_key(
            nl2sql_prompt(music_db.schema, "how many singers?")
        )


class TestBatchAdapters:
    def test_sequential_fallback(self):
        model = RecordingLLM()
        prompts = [_prompt("a"), _prompt("b")]
        completions = complete_batch(model, prompts)
        assert [c.text for c in completions] == ["SQL(a)", "SQL(b)"]

    def test_native_batch_preferred(self):
        model = NativeBatchLLM()
        complete_batch(model, [_prompt("a"), _prompt("b")])
        assert model.batch_calls == 1

    def test_empty_batch(self):
        assert complete_batch(RecordingLLM(), []) == []
        assert settle_batch(RecordingLLM(), []) == []

    def test_settle_isolates_per_item_errors(self):
        outcomes = settle_batch(
            FlakyLLM(), [_prompt("ok"), _prompt("bad one"), _prompt("fine")]
        )
        assert outcomes[0].text == "OK"
        assert isinstance(outcomes[1], TransientLLMError)
        assert outcomes[2].text == "FINE"

    def test_batch_size_histogram(self):
        obs.enable()
        complete_batch(RecordingLLM(), [_prompt("a"), _prompt("b")])
        settle_batch(RecordingLLM(), [_prompt("c")])
        values = obs.get_metrics().histogram_values("llm.batch_size")
        assert values == [2.0, 1.0]

    def test_simulated_native_batch_matches_sequential(self, music_db):
        prompts = [
            nl2sql_prompt(music_db.schema, "how many singers?"),
            nl2sql_prompt(music_db.schema, "list all songs"),
        ]
        sequential = [SimulatedLLM().complete(p).text for p in prompts]
        batched = [c.text for c in SimulatedLLM().complete_batch(prompts)]
        assert batched == sequential


class TestCompletionCache:
    def test_get_put_roundtrip(self):
        cache = CompletionCache()
        cache.put("k", Completion(text="SELECT 1", notes=["n"]))
        hit = cache.get("k")
        assert hit.text == "SELECT 1" and hit.notes == ["n"]
        # Mutating the returned completion must not poison the cache.
        hit.notes.append("mutated")
        assert cache.get("k").notes == ["n"]

    def test_hit_miss_stats(self):
        cache = CompletionCache()
        assert cache.get("missing") is None
        cache.put("k", Completion(text="x"))
        cache.get("k")
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_persistence_roundtrip(self, tmp_path):
        cache = CompletionCache()
        cache.put("k1", Completion(text="SELECT 1", notes=["a", "b"]))
        cache.put("k2", Completion(text="SELECT 2"))
        assert cache.save(tmp_path) == 2

        warmed = CompletionCache.load(tmp_path)
        assert len(warmed) == 2
        assert warmed.loaded == 2
        assert warmed.get("k1").notes == ["a", "b"]

    def test_save_is_canonical_bytes(self, tmp_path):
        a, b = CompletionCache(), CompletionCache()
        for cache in (a, b):
            cache.put("k2", Completion(text="two"))
            cache.put("k1", Completion(text="one"))
        a.save(tmp_path / "a")
        b.save(tmp_path / "b")
        assert (tmp_path / "a" / "completions.json").read_bytes() == (
            tmp_path / "b" / "completions.json"
        ).read_bytes()

    def test_corrupt_file_degrades_to_cold(self, tmp_path):
        (tmp_path / "completions.json").write_text("{not json", encoding="utf-8")
        assert len(CompletionCache.load(tmp_path)) == 0

    def test_corrupt_file_is_quarantined_then_rewritable(self, tmp_path):
        (tmp_path / "completions.json").write_text("{not json", encoding="utf-8")
        cache = CompletionCache.load(tmp_path)
        # The torn file moved aside as evidence; a fresh save works.
        assert (tmp_path / "completions.json.corrupt").exists()
        cache.put("k", Completion(text="x"))
        cache.save(tmp_path)
        assert len(CompletionCache.load(tmp_path)) == 1

    def test_missing_directory_degrades_to_cold(self, tmp_path):
        assert len(CompletionCache.load(tmp_path / "nope")) == 0

    def test_save_survives_partial_writer_crash(self, tmp_path):
        # Atomic replace: a pre-existing cache plus a leftover temp file
        # from a crashed writer must load the old (complete) contents.
        cache = CompletionCache()
        cache.put("k", Completion(text="old"))
        cache.save(tmp_path)
        (tmp_path / ".completions.json.tmp.999").write_text("{torn", encoding="utf-8")
        assert CompletionCache.load(tmp_path).get("k").text == "old"


class TestCompletionCacheLRU:
    def test_eviction_over_cap(self):
        cache = CompletionCache(max_entries=2)
        cache.put("a", Completion(text="1"))
        cache.put("b", Completion(text="2"))
        cache.put("c", Completion(text="3"))
        assert len(cache) == 2
        assert cache.get("a") is None  # the oldest went first
        assert cache.get("c").text == "3"
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = CompletionCache(max_entries=2)
        cache.put("a", Completion(text="1"))
        cache.put("b", Completion(text="2"))
        cache.get("a")  # now "b" is least recent
        cache.put("c", Completion(text="3"))
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_put_refreshes_recency(self):
        cache = CompletionCache(max_entries=2)
        cache.put("a", Completion(text="1"))
        cache.put("b", Completion(text="2"))
        cache.put("a", Completion(text="1*"))
        cache.put("c", Completion(text="3"))
        assert cache.get("a").text == "1*"
        assert cache.get("b") is None

    def test_load_applies_cap(self, tmp_path):
        full = CompletionCache()
        for index in range(5):
            full.put(f"k{index}", Completion(text=str(index)))
        full.save(tmp_path)
        capped = CompletionCache.load(tmp_path, max_entries=2)
        assert len(capped) == 2
        assert capped.get("k4") is not None  # the most recent survive

    def test_clear_reports_dropped(self):
        cache = CompletionCache()
        cache.put("a", Completion(text="1"))
        cache.put("b", Completion(text="2"))
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_stats_include_cap_and_evictions(self):
        cache = CompletionCache(max_entries=1)
        cache.put("a", Completion(text="1"))
        cache.put("b", Completion(text="2"))
        stats = cache.stats()
        assert stats["max_entries"] == 1
        assert stats["evictions"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CompletionCache(max_entries=0)


class TestCachingChatModel:
    def test_second_call_hits(self):
        inner = RecordingLLM()
        model = CachingChatModel(inner)
        prompt = _prompt("q")
        first = model.complete(prompt)
        second = model.complete(prompt)
        assert first.text == second.text
        assert len(inner.seen) == 1

    def test_batch_dispatches_only_misses(self):
        inner = NativeBatchLLM()
        model = CachingChatModel(inner)
        model.complete(_prompt("a"))
        results = model.complete_batch([_prompt("a"), _prompt("b")])
        assert [r.text for r in results] == ["SQL(a)", "SQL(b)"]
        assert inner.seen == ["a", "b"]  # "a" answered from cache

    def test_counters_by_kind(self):
        obs.enable()
        model = CachingChatModel(RecordingLLM())
        model.complete(_prompt("q"))
        model.complete(_prompt("q"))
        metrics = obs.get_metrics()
        assert metrics.counter_value("cache.miss", kind="nl2sql") == 1
        assert metrics.counter_value("cache.hit", kind="nl2sql") == 1

    def test_errors_are_not_cached(self):
        model = CachingChatModel(FlakyLLM())
        outcomes = model.complete_batch_settled([_prompt("bad")])
        assert isinstance(outcomes[0], TransientLLMError)
        assert len(model.cache) == 0
        # A later fixed backend is consulted again, not the error replayed.
        assert model.cache.get(canonical_prompt_key(_prompt("bad"))) is None


class TestBatchingChatModel:
    def test_max_batch_one_is_passthrough(self):
        inner = RecordingLLM()
        model = BatchingChatModel(inner, max_batch=1)
        assert model.complete(_prompt("a")).text == "SQL(a)"
        assert model.dispatches == 0  # never queued

    def test_solo_caller_completes_within_wait(self):
        model = BatchingChatModel(RecordingLLM(), max_batch=8, max_wait_ms=5)
        assert model.complete(_prompt("solo")).text == "SQL(solo)"
        assert model.dispatches == 1
        assert model.coalesced == 1

    def test_concurrent_callers_coalesce(self):
        inner = NativeBatchLLM()
        model = BatchingChatModel(inner, max_batch=8, max_wait_ms=200)
        barrier = threading.Barrier(4)
        results = [None] * 4

        def worker(index: int) -> None:
            barrier.wait()
            results[index] = model.complete(_prompt(f"p{index}"))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert [r.text for r in results] == [f"SQL(p{i})" for i in range(4)]
        assert model.coalesced == 4
        assert model.dispatches < 4  # at least one batch formed

    def test_error_reaches_the_right_caller(self):
        model = BatchingChatModel(FlakyLLM(), max_batch=4, max_wait_ms=5)
        with pytest.raises(TransientLLMError):
            model.complete(_prompt("bad"))
        assert model.complete(_prompt("good")).text == "GOOD"

    def test_explicit_batch_bypasses_coalescing(self):
        inner = NativeBatchLLM()
        model = BatchingChatModel(inner, max_batch=8, max_wait_ms=50)
        results = model.complete_batch([_prompt("a"), _prompt("b")])
        assert [r.text for r in results] == ["SQL(a)", "SQL(b)"]
        assert inner.batch_calls == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchingChatModel(RecordingLLM(), max_batch=0)
        with pytest.raises(ValueError):
            BatchingChatModel(RecordingLLM(), max_wait_ms=-1)


@pytest.fixture
def loop_env():
    """A live event loop on a daemon thread plus a dispatch executor —
    the environment the async transport hands to its loop batcher."""
    import asyncio
    from concurrent.futures import ThreadPoolExecutor

    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    executor = ThreadPoolExecutor(max_workers=2)
    yield loop, executor
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=5)
    loop.close()
    executor.shutdown(wait=False)


class TestLoopBatchingChatModel:
    def _model(self, loop_env, inner=None, **kwargs):
        from repro.llm.dispatch import LoopBatchingChatModel

        loop, executor = loop_env
        kwargs.setdefault("max_batch", 4)
        kwargs.setdefault("max_wait_ms", 5.0)
        return LoopBatchingChatModel(
            inner or RecordingLLM(), loop, executor, **kwargs
        )

    def test_solo_caller_completes_within_wait(self, loop_env):
        model = self._model(loop_env)
        assert model.complete(_prompt("alone")).text == "SQL(alone)"
        assert model.dispatches == 1
        assert model.queued == 0

    def test_concurrent_callers_share_a_dispatch(self, loop_env):
        model = self._model(loop_env, max_batch=4, max_wait_ms=100)
        barrier = threading.Barrier(4)
        results = [None] * 4

        def worker(i):
            barrier.wait()
            results[i] = model.complete(_prompt(f"p{i}"))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(r.text for r in results) == [
            f"SQL(p{i})" for i in range(4)
        ]
        assert model.coalesced == 4
        assert model.dispatches < 4

    def test_error_reaches_the_right_caller(self, loop_env):
        model = self._model(loop_env, inner=FlakyLLM())
        with pytest.raises(TransientLLMError):
            model.complete(_prompt("bad"))
        assert model.complete(_prompt("good")).text == "GOOD"

    def test_full_queue_sheds(self, loop_env):
        from repro.errors import OverloadError

        # A long wait timer keeps the first prompt parked in the queue,
        # so the second one finds the (size-1) queue full and is shed.
        model = self._model(
            loop_env, max_batch=8, max_wait_ms=60_000, max_queue=1
        )
        results = []
        first = threading.Thread(
            target=lambda: results.append(model.complete(_prompt("held")))
        )
        first.start()
        deadline = 500
        while model.queued < 1 and deadline:
            threading.Event().wait(0.01)
            deadline -= 1
        assert model.queued == 1
        with pytest.raises(OverloadError) as excinfo:
            model.complete(_prompt("overflow"))
        assert excinfo.value.reason == "queue_full"
        assert model.shed == 1
        # Drain flushes the parked prompt; the first caller still settles.
        model.begin_drain()
        first.join(timeout=5)
        assert [r.text for r in results] == ["SQL(held)"]
        assert model.await_idle(timeout=5)

    def test_drain_sheds_new_prompts(self, loop_env):
        from repro.errors import OverloadError

        model = self._model(loop_env)
        assert model.complete(_prompt("before")).text == "SQL(before)"
        model.begin_drain()
        assert model.draining
        with pytest.raises(OverloadError) as excinfo:
            model.complete(_prompt("after"))
        assert excinfo.value.reason == "draining"
        assert "draining" in str(excinfo.value)
        assert model.await_idle(timeout=5)

    def test_explicit_batch_bypasses_coalescing(self, loop_env):
        inner = NativeBatchLLM()
        model = self._model(loop_env, inner=inner, max_batch=8)
        results = model.complete_batch([_prompt("a"), _prompt("b")])
        assert [r.text for r in results] == ["SQL(a)", "SQL(b)"]
        assert inner.batch_calls == 1

    def test_validation(self, loop_env):
        with pytest.raises(ValueError):
            self._model(loop_env, max_batch=0)
        with pytest.raises(ValueError):
            self._model(loop_env, max_wait_ms=-1)
        with pytest.raises(ValueError):
            self._model(loop_env, max_queue=0)
