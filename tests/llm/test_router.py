"""Router unit tests: candidates, failover, ejection, hedging, parsers."""

from __future__ import annotations

import time

import pytest

from repro.errors import (
    CircuitOpenError,
    LLMError,
    NoHealthyBackendError,
    TransientLLMError,
)
from repro.llm.interface import (
    KIND_FEEDBACK,
    KIND_NL2SQL,
    KIND_ROUTING,
    Completion,
    Prompt,
)
from repro.llm.router import (
    Backend,
    BackendPool,
    RoutingChatModel,
    build_backend_pool,
    parse_backend_spec,
    parse_route_map,
    probe_prompt,
    tiered_route_map,
)


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


class ScriptedModel:
    """Replays a script of completions/exceptions, then a default."""

    def __init__(self, script=None, default="ok", delay_s=0.0):
        self.script = list(script or [])
        self.default = default
        self.delay_s = delay_s
        self.calls: list[Prompt] = []

    def complete(self, prompt: Prompt) -> Completion:
        self.calls.append(prompt)
        if self.delay_s:
            time.sleep(self.delay_s)
        item = self.script.pop(0) if self.script else self.default
        if isinstance(item, Exception):
            raise item
        return Completion(text=item)


def make_pool(models: dict, clock=None, **kwargs) -> BackendPool:
    backends = [Backend(name, model) for name, model in models.items()]
    if clock is not None:
        kwargs["clock"] = clock.now
    return BackendPool(backends, **kwargs)


def routing_prompt(text: str = "q") -> Prompt:
    return Prompt(kind=KIND_ROUTING, text=text, payload={"feedback": text})


class TestPoolShape:
    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            BackendPool([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            BackendPool(
                [Backend("a", ScriptedModel()), Backend("a", ScriptedModel())]
            )

    def test_lookup_and_contains(self):
        pool = make_pool({"a": ScriptedModel(), "b": ScriptedModel()})
        assert pool.names == ["a", "b"]
        assert "a" in pool and "missing" not in pool
        assert pool["b"].name == "b"
        with pytest.raises(KeyError):
            pool["missing"]


class TestRouting:
    def test_route_map_prefers_named_backend(self):
        strong, cheap = ScriptedModel(default="s"), ScriptedModel(default="c")
        pool = make_pool({"strong": strong, "cheap": cheap})
        router = RoutingChatModel(
            pool, route_map=tiered_route_map("strong", "cheap")
        )
        out = router.complete(routing_prompt())
        assert out.text == "c"
        assert not strong.calls

    def test_unmapped_kind_uses_pool_order(self):
        first, second = ScriptedModel(default="1"), ScriptedModel(default="2")
        pool = make_pool({"first": first, "second": second})
        router = RoutingChatModel(pool)
        assert router.complete(routing_prompt()).text == "1"
        assert not second.calls

    def test_route_map_to_unknown_backend_rejected(self):
        pool = make_pool({"only": ScriptedModel()})
        with pytest.raises(ValueError):
            RoutingChatModel(pool, route_map={KIND_NL2SQL: "missing"})


class TestFailover:
    def test_transient_error_fails_over(self):
        primary = ScriptedModel(script=[TransientLLMError("boom")])
        secondary = ScriptedModel(default="saved")
        pool = make_pool({"primary": primary, "secondary": secondary})
        router = RoutingChatModel(pool)
        assert router.complete(routing_prompt()).text == "saved"
        assert pool["primary"].health.consecutive_failures == 1
        assert pool["secondary"].health.calls_ok == 1

    def test_circuit_open_fails_over(self):
        primary = ScriptedModel(script=[CircuitOpenError("open")])
        secondary = ScriptedModel(default="saved")
        pool = make_pool({"primary": primary, "secondary": secondary})
        router = RoutingChatModel(pool)
        assert router.complete(routing_prompt()).text == "saved"

    def test_fatal_error_propagates_without_failover(self):
        primary = ScriptedModel(script=[LLMError("bad request")])
        secondary = ScriptedModel(default="never")
        pool = make_pool({"primary": primary, "secondary": secondary})
        router = RoutingChatModel(pool)
        with pytest.raises(LLMError):
            router.complete(routing_prompt())
        assert not secondary.calls

    def test_all_transient_raises_last_error(self):
        pool = make_pool(
            {
                "a": ScriptedModel(default=TransientLLMError("a down")),
                "b": ScriptedModel(default=TransientLLMError("b down")),
            }
        )
        router = RoutingChatModel(pool)
        with pytest.raises(TransientLLMError, match="b down"):
            router.complete(routing_prompt())


class TestEjectionAndReadmission:
    def test_ejection_after_consecutive_failures(self):
        clock = FakeClock()
        primary = ScriptedModel(default=TransientLLMError("down"))
        secondary = ScriptedModel(default="ok")
        pool = make_pool(
            {"primary": primary, "secondary": secondary},
            clock=clock,
            eject_after=2,
        )
        router = RoutingChatModel(pool)
        for _ in range(2):
            router.complete(routing_prompt())
        assert not pool["primary"].health.healthy
        assert pool["primary"].health.ejections == 1
        # Ejected backends are skipped entirely on later calls.
        calls_before = len(primary.calls)
        router.complete(routing_prompt())
        assert len(primary.calls) == calls_before

    def test_all_ejected_fails_fast(self):
        clock = FakeClock()
        pool = make_pool(
            {"only": ScriptedModel(default=TransientLLMError("down"))},
            clock=clock,
            eject_after=1,
        )
        router = RoutingChatModel(pool)
        with pytest.raises(TransientLLMError):
            router.complete(routing_prompt())
        with pytest.raises(NoHealthyBackendError):
            router.complete(routing_prompt())

    def test_readmission_probe_after_delay(self):
        clock = FakeClock()
        primary = ScriptedModel(
            script=[TransientLLMError("down")], default="back"
        )
        pool = make_pool(
            {"primary": primary, "secondary": ScriptedModel(default="2nd")},
            clock=clock,
            eject_after=1,
            readmit_after_ms=1000.0,
        )
        router = RoutingChatModel(pool, probe_on_path=True)
        router.complete(routing_prompt())  # fails over, ejects primary
        assert not pool["primary"].health.healthy
        # Before the readmission delay: no probe fires.
        clock.advance(0.5)
        router.complete(routing_prompt())
        assert pool["primary"].health.probes == 0
        # After the delay the probe succeeds and readmits.
        clock.advance(0.6)
        assert router.complete(routing_prompt()).text == "back"
        health = pool["primary"].health
        assert health.healthy
        assert health.probes == 1
        assert health.readmissions == 1

    def test_failed_probe_keeps_backend_ejected(self):
        clock = FakeClock()
        primary = ScriptedModel(default=TransientLLMError("still down"))
        pool = make_pool(
            {"primary": primary, "secondary": ScriptedModel()},
            clock=clock,
            eject_after=1,
            readmit_after_ms=1000.0,
        )
        router = RoutingChatModel(pool, probe_on_path=True)
        router.complete(routing_prompt())
        clock.advance(1.1)
        router.complete(routing_prompt())
        health = pool["primary"].health
        assert not health.healthy
        assert health.probe_failures == 1
        # Probes are themselves rate-limited to the readmission interval.
        router.complete(routing_prompt())
        assert health.probes == 1

    def test_probe_prompt_is_cheap_routing_kind(self):
        prompt = probe_prompt()
        assert prompt.kind == KIND_ROUTING
        assert "feedback" in prompt.payload

    def test_health_snapshot_reports_breaker_and_ejection(self):
        clock = FakeClock()
        pool = make_pool(
            {"only": ScriptedModel(default=TransientLLMError("down"))},
            clock=clock,
            eject_after=1,
        )
        router = RoutingChatModel(pool)
        with pytest.raises(TransientLLMError):
            router.complete(routing_prompt())
        clock.advance(2.0)
        snapshot = pool.health_snapshot()
        entry = snapshot["only"]
        assert entry["healthy"] is False
        assert entry["ejections"] == 1
        assert entry["ejected_for_ms"] == pytest.approx(2000.0)


class TestHedging:
    def test_fast_primary_never_hedges(self):
        primary = ScriptedModel(default="fast")
        hedge = ScriptedModel(default="never")
        pool = make_pool({"primary": primary, "hedge": hedge})
        router = RoutingChatModel(pool, hedge_after_ms=500.0)
        assert router.complete(routing_prompt()).text == "fast"
        assert not hedge.calls

    def test_slow_primary_hedges_and_hedge_wins(self):
        primary = ScriptedModel(default="slow", delay_s=0.4)
        hedge = ScriptedModel(default="quick")
        pool = make_pool({"primary": primary, "hedge": hedge})
        router = RoutingChatModel(pool, hedge_after_ms=30.0)
        started = time.monotonic()
        out = router.complete(routing_prompt())
        elapsed = time.monotonic() - started
        assert out.text == "quick"
        assert elapsed < 0.35
        assert pool["hedge"].health.calls_ok == 1

    def test_both_hedge_slots_fail_then_third_serves(self):
        pool = make_pool(
            {
                "a": ScriptedModel(default=TransientLLMError("a"), delay_s=0.05),
                "b": ScriptedModel(default=TransientLLMError("b")),
                "c": ScriptedModel(default="third"),
            }
        )
        router = RoutingChatModel(pool, hedge_after_ms=1.0)
        assert router.complete(routing_prompt()).text == "third"

    def test_negative_hedge_rejected(self):
        pool = make_pool({"a": ScriptedModel()})
        with pytest.raises(ValueError):
            RoutingChatModel(pool, hedge_after_ms=-1.0)


class TestBatchRouting:
    def test_batch_groups_by_route_and_fails_over(self):
        primary = ScriptedModel(
            script=[TransientLLMError("x")], default="p"
        )
        secondary = ScriptedModel(default="s")
        pool = make_pool({"primary": primary, "secondary": secondary})
        router = RoutingChatModel(pool)
        prompts = [routing_prompt(f"q{i}") for i in range(3)]
        outcomes = router.complete_batch_settled(prompts)
        assert [o.text for o in outcomes] == ["s", "p", "p"]

    def test_batch_raises_first_fatal_error(self):
        pool = make_pool({"a": ScriptedModel(script=[LLMError("fatal")])})
        router = RoutingChatModel(pool)
        with pytest.raises(LLMError):
            router.complete_batch([routing_prompt()])

    def test_batch_all_ejected_settles_no_healthy(self):
        clock = FakeClock()
        pool = make_pool(
            {"only": ScriptedModel(default=TransientLLMError("down"))},
            clock=clock,
            eject_after=1,
        )
        router = RoutingChatModel(pool)
        first = router.complete_batch_settled([routing_prompt()])
        assert isinstance(first[0], TransientLLMError)
        second = router.complete_batch_settled([routing_prompt()])
        assert isinstance(second[0], NoHealthyBackendError)


class TestParsers:
    def test_parse_backend_spec_simulated(self):
        spec = parse_backend_spec("primary=simulated,fault=outage,retries=1")
        assert spec.name == "primary"
        assert spec.kind == "simulated"
        assert spec.option("fault") == "outage"
        assert spec.option("retries") == "1"
        assert spec.option("missing", "dflt") == "dflt"

    def test_parse_backend_spec_http_requires_base_url(self):
        with pytest.raises(ValueError, match="base-url"):
            parse_backend_spec("api=http")
        spec = parse_backend_spec(
            "api=http,base-url=http://127.0.0.1:9/v1,model=gpt-4"
        )
        assert spec.option("base-url") == "http://127.0.0.1:9/v1"

    @pytest.mark.parametrize(
        "text",
        ["", "noequals", "x=teapot", "a=simulated,bogus-key=1"],
    )
    def test_parse_backend_spec_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_backend_spec(text)

    def test_parse_route_map_aliases(self):
        names = ["strong", "cheap"]
        parsed = parse_route_map(
            "nl2sql=strong,feedback=strong,routing=cheap,rewrite=cheap",
            names,
        )
        assert parsed == tiered_route_map("strong", "cheap")
        assert parse_route_map("correction=cheap", names) == {
            KIND_FEEDBACK: "cheap"
        }

    def test_parse_route_map_rejects_unknowns(self):
        with pytest.raises(ValueError, match="unknown prompt kind"):
            parse_route_map("espresso=a", ["a"])
        with pytest.raises(ValueError, match="unknown backend"):
            parse_route_map("nl2sql=missing", ["a"])


class TestBuildBackendPool:
    def test_builds_isolated_breaker_per_backend(self):
        clock = FakeClock()
        pool = build_backend_pool(
            [
                parse_backend_spec("a=simulated,breaker-threshold=2"),
                parse_backend_spec("b=simulated"),
            ],
            clock=clock.now,
            sleep=lambda s: clock.advance(s),
        )
        assert pool.names == ["a", "b"]
        assert pool["a"].breaker is not pool["b"].breaker
        assert pool["a"].breaker.state == "closed"

    def test_faulted_backend_ejects_and_pool_survives(self):
        clock = FakeClock()
        pool = build_backend_pool(
            [
                parse_backend_spec(
                    "primary=simulated,fault=outage,retries=0"
                ),
                parse_backend_spec("secondary=simulated"),
            ],
            clock=clock.now,
            sleep=lambda s: clock.advance(s),
            eject_after=2,
        )
        router = RoutingChatModel(pool)
        for i in range(20):
            out = router.complete(routing_prompt(f"q{i}"))
            assert isinstance(out, Completion)
        assert pool["secondary"].health.calls_ok > 0
