"""Prompt construction and simulated-LLM dispatch tests."""

import pytest

from repro.datasets.base import Demonstration
from repro.errors import PromptError
from repro.llm.interface import (
    KIND_FEEDBACK,
    KIND_NL2SQL,
    KIND_REWRITE,
    KIND_ROUTING,
    Prompt,
)
from repro.llm.prompts import (
    feedback_prompt,
    nl2sql_prompt,
    render_feedback_demo,
    rewrite_prompt,
    routing_prompt,
)
from repro.llm.simulated import SimulatedLLM, derive_conventions, merge_glossaries
from repro.sql.engine import Database


@pytest.fixture()
def schema(aep_db):
    return aep_db.schema


class TestPromptShapes:
    def test_zero_shot_prompt_contains_schema_and_question(self, schema):
        prompt = nl2sql_prompt(schema, "How many segments are there?")
        assert prompt.kind == KIND_NL2SQL
        assert "CREATE TABLE hkg_dim_segment" in prompt.text
        assert "How many segments are there?" in prompt.text
        assert "examples" not in prompt.text.lower()

    def test_rag_prompt_includes_demos(self, schema):
        demo = Demonstration(
            question="q1", sql="SELECT 1", db_id="experience_platform"
        )
        prompt = nl2sql_prompt(schema, "another", demos=[demo])
        assert "Here are some examples" in prompt.text
        assert "SELECT 1" in prompt.text

    def test_feedback_prompt_figure6_structure(self, schema):
        prompt = feedback_prompt(
            schema=schema,
            question="how many audiences were created in January?",
            previous_sql="SELECT COUNT(*) FROM hkg_dim_segment",
            feedback="we are in 2024",
        )
        assert prompt.kind == KIND_FEEDBACK
        assert "has received the following feedback: we are in 2024" in prompt.text
        assert "please rewrite the SQL query" in prompt.text

    def test_feedback_prompt_includes_highlight(self, schema):
        prompt = feedback_prompt(
            schema=schema,
            question="q",
            previous_sql="SELECT 1",
            feedback="change to 2024",
            highlight="WHERE createdtime",
        )
        assert "highlighted" in prompt.text

    def test_figure5_demo_format(self):
        block = render_feedback_demo(
            question="q", sql="SELECT 1", feedback="f", revised_sql="SELECT 2"
        )
        assert block.splitlines()[0] == "Question: q"
        assert "Taking into account the feedback" in block

    def test_routing_prompt_has_fewshots(self):
        prompt = routing_prompt("we are in 2024", examples=[("do not", "Remove")])
        assert prompt.kind == KIND_ROUTING
        assert "Feedback: do not" in prompt.text

    def test_rewrite_prompt(self):
        prompt = rewrite_prompt("q", "f")
        assert prompt.kind == KIND_REWRITE
        assert "Rewritten question:" in prompt.text


class TestConventionLearning:
    def test_count_distinct_convention(self):
        demos = [
            Demonstration(
                question="How many colors are represented among the cars?",
                sql="SELECT COUNT(DISTINCT color) FROM car",
                db_id="x",
            )
        ]
        assert "count_distinct" in derive_conventions(demos)

    def test_sum_convention(self):
        demos = [
            Demonstration(
                question="How many sales do the stores have altogether?",
                sql="SELECT SUM(sales) FROM store",
                db_id="x",
            )
        ]
        assert "sum_how_many" in derive_conventions(demos)

    def test_distinct_values_convention(self):
        demos = [
            Demonstration(
                question="What are the color values of the cars?",
                sql="SELECT DISTINCT color FROM car",
                db_id="x",
            )
        ]
        assert "distinct_values" in derive_conventions(demos)

    def test_first_is_top_convention(self):
        demos = [
            Demonstration(
                question="List the names of the first 5 cars by price.",
                sql="SELECT name FROM car ORDER BY price DESC LIMIT 5",
                db_id="x",
            )
        ]
        assert "first_is_top" in derive_conventions(demos)

    def test_name_only_convention(self):
        demos = [
            Demonstration(
                question="List the cars with price greater than 10.",
                sql="SELECT name FROM car WHERE price > 10",
                db_id="x",
            )
        ]
        assert "name_only_listing" in derive_conventions(demos)

    def test_unparseable_demo_ignored(self):
        demos = [Demonstration(question="how many x", sql="NOT SQL", db_id="x")]
        assert derive_conventions(demos) == frozenset()

    def test_clean_demo_teaches_nothing(self):
        demos = [
            Demonstration(
                question="How many cars are there?",
                sql="SELECT COUNT(*) FROM car",
                db_id="x",
            )
        ]
        assert derive_conventions(demos) == frozenset()

    def test_glossary_merge(self):
        demos = [
            Demonstration(question="a", sql="SELECT 1", db_id="x", glossary={"a": "t1"}),
            Demonstration(question="b", sql="SELECT 1", db_id="x", glossary={"b": "t2"}),
        ]
        assert merge_glossaries(demos) == {"a": "t1", "b": "t2"}


class TestSimulatedDispatch:
    def test_nl2sql_completion_is_sql(self, aep_db):
        llm = SimulatedLLM()
        prompt = nl2sql_prompt(aep_db.schema, "How many segments are there?")
        completion = llm.complete(prompt)
        assert completion.text == "SELECT COUNT(*) FROM hkg_dim_segment"

    def test_routing_completion(self):
        llm = SimulatedLLM()
        assert llm.complete(routing_prompt("we are in 2024")).text == "edit"
        assert llm.complete(routing_prompt("do not give descriptions")).text == (
            "remove"
        )

    def test_feedback_completion_edits_year(self, aep_db):
        llm = SimulatedLLM()
        prompt = feedback_prompt(
            schema=aep_db.schema,
            question="how many audiences were created in January?",
            previous_sql=(
                "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
                "'2023-01-01' AND createdtime < '2023-02-01'"
            ),
            feedback="we are in 2024",
            feedback_type="edit",
        )
        completion = llm.complete(prompt)
        assert "'2024-01-01'" in completion.text
        assert "'2024-02-01'" in completion.text

    def test_feedback_on_unparseable_sql_is_noop(self, aep_db):
        llm = SimulatedLLM()
        prompt = feedback_prompt(
            schema=aep_db.schema,
            question="q",
            previous_sql="totally not sql",
            feedback="we are in 2024",
        )
        completion = llm.complete(prompt)
        assert completion.text == "totally not sql"

    def test_unknown_prompt_kind_raises(self):
        with pytest.raises(PromptError):
            SimulatedLLM().complete(Prompt(kind="nope", text=""))


class TestRewriteMerge:
    def test_year_inlined_after_month(self):
        llm = SimulatedLLM()
        prompt = rewrite_prompt(
            "How many audiences were created in January?", "we are in 2024"
        )
        merged = llm.complete(prompt).text
        assert "January 2024" in merged

    def test_existing_year_replaced(self):
        llm = SimulatedLLM()
        prompt = rewrite_prompt(
            "How many audiences were created in January 2023?", "we are in 2024"
        )
        assert "2024" in llm.complete(prompt).text

    def test_operation_feedback_becomes_trailing_clause(self):
        llm = SimulatedLLM()
        prompt = rewrite_prompt(
            "List the segments.", "do not give descriptions"
        )
        merged = llm.complete(prompt).text
        assert "note that do not give descriptions" in merged
