"""HTTP backend tests: error mapping, Retry-After, and the fake server."""

from __future__ import annotations

import errno

import pytest

from repro.errors import LLMError, RateLimitError, TransientLLMError
from repro.llm.http_backend import (
    DEFAULT_MODEL,
    FakeOpenAIServer,
    HttpChatModel,
    default_responder,
    parse_retry_after,
)
from repro.llm.interface import KIND_ROUTING, Prompt


def prompt(text: str = "hello") -> Prompt:
    return Prompt(kind=KIND_ROUTING, text=text, payload={"feedback": text})


class TestParseRetryAfter:
    @pytest.mark.parametrize(
        ("value", "expected"),
        [
            (None, None),
            ("2", 2000.0),
            ("0.5", 500.0),
            (" 3 ", 3000.0),
            ("0", 0.0),
            ("-1", None),
            ("soon", None),
            ("Wed, 21 Oct 2015 07:28:00 GMT", None),
        ],
    )
    def test_parse(self, value, expected):
        assert parse_retry_after(value) == expected


class TestHttpChatModel:
    def test_rejects_malformed_base_url(self):
        with pytest.raises(ValueError):
            HttpChatModel("not-a-url")
        with pytest.raises(ValueError):
            HttpChatModel("ftp://host/v1")

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            HttpChatModel("http://127.0.0.1:1/v1", timeout_s=0)

    def test_round_trip_is_deterministic(self):
        with FakeOpenAIServer() as server:
            model = HttpChatModel(server.base_url)
            first = model.complete(prompt("same text"))
            second = model.complete(prompt("same text"))
        assert first.text == second.text
        assert first.text.startswith("ok:")

    def test_429_maps_to_rate_limit_with_retry_after(self):
        with FakeOpenAIServer() as server:
            server.set_failure(429, retry_after_s=0.5)
            model = HttpChatModel(server.base_url)
            with pytest.raises(RateLimitError) as excinfo:
                model.complete(prompt())
        assert excinfo.value.retry_after_ms == 500.0

    def test_503_maps_to_transient_with_retry_after(self):
        with FakeOpenAIServer() as server:
            server.set_failure(503, retry_after_s=2)
            model = HttpChatModel(server.base_url)
            with pytest.raises(TransientLLMError) as excinfo:
                model.complete(prompt())
        assert excinfo.value.retry_after_ms == 2000.0

    def test_4xx_is_fatal_not_transient(self):
        with FakeOpenAIServer() as server:
            server.set_failure(418)
            model = HttpChatModel(server.base_url)
            with pytest.raises(LLMError) as excinfo:
                model.complete(prompt())
        assert not isinstance(excinfo.value, TransientLLMError)

    def test_dead_server_is_transient(self):
        server = FakeOpenAIServer().start()
        url = server.base_url
        server.stop()
        model = HttpChatModel(url, timeout_s=2.0)
        with pytest.raises(TransientLLMError):
            model.complete(prompt())

    def test_malformed_body_is_transient(self):
        def bad_responder(request: dict) -> str:
            return "irrelevant"

        with FakeOpenAIServer(responder=bad_responder) as server:
            # Monkeypatch respond to return garbage JSON bytes.
            original = server.respond

            def torn(path: str, raw: bytes):
                status, headers, _body = original(path, raw)
                return status, headers, b'{"choices": ['

            server.respond = torn  # type: ignore[method-assign]
            model = HttpChatModel(server.base_url)
            with pytest.raises(TransientLLMError):
                model.complete(prompt())

    @pytest.mark.parametrize(
        "code",
        [errno.ENOSPC, errno.EMFILE, errno.ENFILE, errno.ENOMEM],
    )
    def test_local_exhaustion_is_fatal_not_transient(self, code):
        """Out of disk/fds/memory on *this* host: a retry needs the very
        resource that is gone, so the error must not be retried."""
        model = HttpChatModel("http://127.0.0.1:1/v1")

        class Exhausted:
            def request(self, *_args, **_kwargs):
                raise OSError(code, "exhausted")

            def close(self):
                pass

        model._connection = Exhausted  # type: ignore[method-assign]
        with pytest.raises(LLMError) as excinfo:
            model.complete(prompt())
        assert not isinstance(excinfo.value, TransientLLMError)
        assert "local resource exhaustion" in str(excinfo.value)

    def test_other_oserrors_stay_transient(self):
        model = HttpChatModel("http://127.0.0.1:1/v1")

        class Refused:
            def request(self, *_args, **_kwargs):
                raise OSError(errno.ECONNREFUSED, "refused")

            def close(self):
                pass

        model._connection = Refused  # type: ignore[method-assign]
        with pytest.raises(TransientLLMError):
            model.complete(prompt())

    def test_batch_falls_back_to_sequential(self):
        with FakeOpenAIServer() as server:
            model = HttpChatModel(server.base_url)
            out = model.complete_batch([prompt("a"), prompt("b")])
        assert len(out) == 2
        assert out[0].text != out[1].text


class TestFakeOpenAIServer:
    def test_default_responder_digests_last_user_message(self):
        text = default_responder(
            {"messages": [{"role": "user", "content": "abc"}]}
        )
        assert text == default_responder(
            {"messages": [{"role": "user", "content": "abc"}]}
        )
        assert text != default_responder(
            {"messages": [{"role": "user", "content": "xyz"}]}
        )

    def test_unknown_route_is_404(self):
        import http.client
        import json

        with FakeOpenAIServer() as server:
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=5.0
            )
            try:
                connection.request("POST", "/v1/embeddings", body=b"{}")
                response = connection.getresponse()
                assert response.status == 404
                json.loads(response.read())
            finally:
                connection.close()

    def test_request_counter_and_failure_reset(self):
        with FakeOpenAIServer() as server:
            model = HttpChatModel(server.base_url, model=DEFAULT_MODEL)
            server.set_failure(500)
            with pytest.raises(TransientLLMError):
                model.complete(prompt())
            server.set_failure(None)
            model.complete(prompt())
            assert server.requests == 2
