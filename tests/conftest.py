"""Shared fixtures: small seeded suites so tests stay fast."""

from __future__ import annotations

import pytest

from repro.datasets.aep import build_aep_database, generate_aep_suite
from repro.datasets.spider import generate_spider_suite
from repro.sql.engine import Database


@pytest.fixture(scope="session")
def small_suite():
    """A small SPIDER-like suite shared across tests (read-only)."""
    return generate_spider_suite(n_databases=16, n_dev=90, n_train=70)


@pytest.fixture(scope="session")
def aep_suite():
    """The AEP benchmark + demonstration pool (read-only)."""
    return generate_aep_suite(n_questions=70)


@pytest.fixture(scope="session")
def aep_db() -> Database:
    return build_aep_database()


@pytest.fixture()
def music_db() -> Database:
    """A hand-built database exercising most engine features."""
    db = Database.from_ddl(
        "music",
        """
        CREATE TABLE singer (
            singer_id INTEGER PRIMARY KEY,
            Name TEXT,
            Age INTEGER,
            Country TEXT,
            Song_Name TEXT
        );
        CREATE TABLE song (
            song_id INTEGER PRIMARY KEY,
            singer_id INTEGER,
            Title TEXT,
            Sales REAL,
            Release_year INTEGER,
            FOREIGN KEY (singer_id) REFERENCES singer(singer_id)
        );
        """,
    )
    db.execute(
        "INSERT INTO singer VALUES "
        "(1, 'Joe Sharp', 52, 'Netherlands', 'Sun'),"
        "(2, 'Timbaland', 32, 'United States', 'Love'),"
        "(3, 'Justin Brown', 29, 'France', 'Hey Oh'),"
        "(4, 'Rose White', 41, 'France', 'Sun'),"
        "(5, 'John Nizinik', 43, 'France', 'Gentleman'),"
        "(6, 'Tribal King', 25, 'France', 'Fake It')"
    )
    db.execute(
        "INSERT INTO song VALUES "
        "(1, 2, 'Do They Know', 8.0, 2002),"
        "(2, 2, 'The Way I Are', 9.0, 2007),"
        "(3, 3, 'Hey Oh', 7.5, 2013),"
        "(4, 6, 'Fake It', 6.5, 2016),"
        "(5, 5, 'Gentleman', 5.5, 2014),"
        "(6, 4, 'Sun', 8.5, 2008)"
    )
    return db
