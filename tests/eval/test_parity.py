"""Byte-parity: parallel/batched/cached evaluation equals sequential.

The acceptance bar for the dispatch layer is not "roughly the same
accuracy" — it is byte-identical per-example outcomes and rendered
artifacts across {sequential, sharded workers, batched dispatch, warm
completion cache}. These tests pin that equivalence on the SPIDER error
set and on the table2 correction benchmark.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments import run_table2
from repro.eval.harness import build_context
from repro.eval.metrics import evaluate_model, shard_examples
from repro.eval.reporting import render_table2
from repro.llm.dispatch import CachingChatModel, CompletionCache
from repro.llm.simulated import SimulatedLLM


@pytest.fixture(scope="module")
def error_examples():
    context = build_context(scale="small")
    return [record.example for record in context.error_set("spider")]


def _fingerprint(report):
    return [
        (
            record.example.example_id,
            record.predicted_sql,
            record.correct,
            record.failed,
            tuple(record.notes),
        )
        for record in report.records
    ]


def _evaluate(examples, llm=None, workers=1, batch_size=1):
    context = build_context(
        scale="small", llm=llm, workers=workers, batch_size=batch_size
    )
    return evaluate_model(
        context.spider_assistant_model(),
        context.spider.benchmark,
        examples,
        workers=workers,
        batch_size=batch_size,
    )


class TestShardExamples:
    def test_shards_partition_in_order(self, error_examples):
        shards = shard_examples(error_examples, 4)
        flattened = [example for shard in shards for example in shard]
        assert flattened == list(error_examples)
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_more_workers_than_examples(self, error_examples):
        shards = shard_examples(error_examples[:2], 8)
        assert [len(shard) for shard in shards] == [1, 1]


class TestOutcomeParity:
    def test_workers_match_sequential(self, error_examples):
        baseline = _fingerprint(_evaluate(error_examples))
        sharded = _fingerprint(_evaluate(error_examples, workers=4))
        assert sharded == baseline

    def test_batched_dispatch_matches_sequential(self, error_examples):
        baseline = _fingerprint(_evaluate(error_examples))
        batched = _fingerprint(_evaluate(error_examples, batch_size=8))
        assert batched == baseline

    def test_warm_cache_with_workers_matches_sequential(
        self, error_examples, tmp_path
    ):
        baseline = _fingerprint(_evaluate(error_examples))

        cache = CompletionCache()
        cold_llm = CachingChatModel(SimulatedLLM(), cache)
        cold = _fingerprint(
            _evaluate(error_examples, llm=cold_llm, workers=4, batch_size=8)
        )
        assert cold == baseline
        assert cache.stats()["misses"] > 0

        # Round-trip through disk, then re-evaluate fully warm.
        cache.save(tmp_path)
        warmed = CompletionCache.load(tmp_path)
        warm_llm = CachingChatModel(SimulatedLLM(), warmed)
        warm = _fingerprint(
            _evaluate(error_examples, llm=warm_llm, workers=4, batch_size=8)
        )
        assert warm == baseline
        assert warmed.stats()["misses"] == 0
        assert warmed.stats()["hits"] > 0


class TestArtifactParity:
    def test_table2_render_is_byte_identical(self):
        sequential = render_table2(run_table2(build_context(scale="small")))
        cache = CompletionCache()
        parallel_context = build_context(
            scale="small",
            llm=CachingChatModel(SimulatedLLM(), cache),
            workers=4,
            batch_size=8,
        )
        parallel = render_table2(run_table2(parallel_context))
        assert parallel == sequential

        warm_context = build_context(
            scale="small",
            llm=CachingChatModel(SimulatedLLM(), cache),
            workers=4,
            batch_size=8,
        )
        warm = render_table2(run_table2(warm_context))
        assert warm == sequential
