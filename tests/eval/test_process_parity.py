"""Byte-parity for ``--worker-mode process``: multi-core equals sequential.

The process tier ships frozen run-specs to worker processes, which
rebuild their own model stacks and journal to their own segments. The
acceptance bar is the same as for threads and batching: byte-identical
rendered artifacts and journal-resume equivalence — across modes, in
either direction.
"""

from __future__ import annotations

import pytest

from repro.durability import RunJournal
from repro.eval.experiments import run_figure2, run_table2
from repro.eval.harness import build_context
from repro.eval.reporting import render_figure2, render_table2

SEED = 11


@pytest.fixture(scope="module")
def suite_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("suites"))


def _artifacts(**kwargs):
    context = build_context(scale="small", seed=SEED, **kwargs)
    return (
        render_figure2(run_figure2(context)),
        render_table2(run_table2(context)),
    )


@pytest.fixture(scope="module")
def sequential(suite_dir):
    return _artifacts(suite_dir=suite_dir)


class TestProcessModeParity:
    def test_process_mode_matches_sequential(self, sequential, suite_dir):
        assert (
            _artifacts(workers=3, worker_mode="process", suite_dir=suite_dir)
            == sequential
        )

    def test_thread_mode_matches_sequential(self, sequential, suite_dir):
        assert (
            _artifacts(workers=3, worker_mode="thread", suite_dir=suite_dir)
            == sequential
        )

    def test_single_worker_process_mode_is_sequential(
        self, sequential, suite_dir
    ):
        # workers=1 short-circuits to the sequential path in any mode.
        assert (
            _artifacts(workers=1, worker_mode="process", suite_dir=suite_dir)
            == sequential
        )

    def test_unknown_worker_mode_rejected(self):
        with pytest.raises(ValueError):
            build_context(scale="small", worker_mode="fiber")


class TestProcessModeJournal:
    def test_process_journal_resumes_sequentially(
        self, sequential, suite_dir, tmp_path
    ):
        """A process-mode sweep journals durably: per-worker segments are
        sealed at end of task, and a later *sequential* run replays them
        to the same bytes — worker mode is not part of the scope."""
        journal_dir = tmp_path / "journal"
        journal = RunJournal(journal_dir)
        assert (
            _artifacts(
                workers=3,
                worker_mode="process",
                suite_dir=suite_dir,
                journal=journal,
            )
            == sequential
        )
        journal.seal()
        journal.close()
        appended = journal.appended
        assert appended > 0
        # Every worker sealed its own segments; nothing active remains
        # except possibly the parent's (empty) segment.
        sealed = list(journal_dir.glob("segment-*.w*.sealed.json"))
        assert sealed, "worker processes should leave sealed segments"

        resumed = RunJournal(journal_dir)
        assert (
            _artifacts(suite_dir=suite_dir, journal=resumed) == sequential
        )
        assert resumed.replayed == appended
        assert resumed.appended == 0
        resumed.close()
