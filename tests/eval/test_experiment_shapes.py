"""Shape assertions for every table/figure, at medium scale.

The paper's absolute numbers depend on GPT-3.5-turbo; what the reproduction
must hold are the qualitative findings (see DESIGN.md):

1. Figure 2 — zero-shot accuracy is far higher on SPIDER than on the
   closed-domain Experience Platform traffic.
2. Table 2  — FISQL beats Query Rewrite by roughly 2x on both datasets,
   and routing helps (FISQL ≥ FISQL(-Routing)).
3. Figure 8 — a second feedback round adds a double-digit improvement and
   the no-routing ablation converges towards FISQL.
4. Table 3  — highlights help on the Experience Platform and are neutral
   (within noise) on SPIDER.
"""

import pytest

from repro.eval.experiments import (
    run_figure2,
    run_figure8,
    run_table2,
    run_table3,
)
from repro.eval.harness import build_context
from repro.eval.reporting import (
    render_figure2,
    render_figure8,
    render_table2,
    render_table3,
)


@pytest.fixture(scope="module")
def context():
    return build_context(scale="medium")


class TestFigure2Shape:
    def test_spider_much_higher_than_aep(self, context):
        result = run_figure2(context)
        assert result.spider_accuracy > result.aep_accuracy + 25

    def test_spider_in_band(self, context):
        result = run_figure2(context)
        assert 58 <= result.spider_accuracy <= 80

    def test_aep_in_band(self, context):
        result = run_figure2(context)
        assert 12 <= result.aep_accuracy <= 38

    def test_rendering(self, context):
        text = render_figure2(run_figure2(context))
        assert "SPIDER" in text and "68.6" in text


class TestAssistantErrorProtocol:
    def test_assistant_beats_zero_shot_on_spider(self, context):
        zero_shot = run_figure2(context).spider_accuracy
        assistant = 100 * context.assistant_report("spider").accuracy
        assert assistant > zero_shot + 3

    def test_annotated_fraction_of_errors(self, context):
        errors = context.assistant_report("spider").errors()
        annotated = context.error_set("spider")
        fraction = len(annotated) / len(errors)
        assert 0.25 <= fraction <= 0.60  # paper: 101/243 ≈ 0.41


class TestTable2Shape:
    @pytest.fixture(scope="class")
    def result(self, context):
        return run_table2(context)

    def test_fisql_doubles_query_rewrite_on_spider(self, result):
        assert result.percent("FISQL", "spider") >= 1.6 * result.percent(
            "Query Rewrite", "spider"
        )

    def test_fisql_beats_query_rewrite_on_aep(self, result):
        assert result.percent("FISQL", "aep") >= 1.4 * result.percent(
            "Query Rewrite", "aep"
        )

    def test_routing_helps_but_modestly(self, result):
        fisql = result.percent("FISQL", "spider")
        ablated = result.percent("FISQL (- Routing)", "spider")
        assert fisql >= ablated
        assert fisql - ablated <= 10

    def test_aep_correction_rate_above_spider(self, result):
        assert result.percent("FISQL", "aep") > result.percent("FISQL", "spider")

    def test_fisql_bands(self, result):
        assert 30 <= result.percent("FISQL", "spider") <= 60
        assert 52 <= result.percent("FISQL", "aep") <= 85

    def test_rendering(self, result):
        text = render_table2(result)
        assert "Query Rewrite" in text and "67.92" in text


class TestFigure8Shape:
    @pytest.fixture(scope="class")
    def result(self, context):
        return run_figure8(context)

    def test_rounds_monotone(self, result):
        assert result.fisql_by_round[1] >= result.fisql_by_round[0]
        assert result.no_routing_by_round[1] >= result.no_routing_by_round[0]

    def test_second_round_adds_double_digits(self, result):
        gain = result.fisql_by_round[1] - result.fisql_by_round[0]
        assert 4 <= gain <= 30

    def test_no_routing_converges(self, result):
        gap_round2 = (
            result.fisql_by_round[1] - result.no_routing_by_round[1]
        )
        assert abs(gap_round2) <= 6

    def test_rendering(self, result):
        text = render_figure8(result)
        assert "Round" in text and "FISQL (- Routing)" in text


class TestTable3Shape:
    @pytest.fixture(scope="class")
    def result(self, context):
        return run_table3(context)

    def test_highlighting_does_not_hurt(self, result):
        assert result.highlighting_aep >= result.fisql_aep
        assert result.highlighting_spider >= result.fisql_spider - 1e-9

    def test_spider_effect_is_small(self, result):
        assert abs(result.highlighting_spider - result.fisql_spider) <= 5

    def test_rendering(self, result):
        text = render_table3(result)
        assert "Highlighting" in text and "69.81" in text
