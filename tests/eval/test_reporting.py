"""Rendering tests for the paper-format tables/series."""

from repro.eval.experiments import (
    CorrectionCell,
    Figure2Result,
    Figure8Result,
    Table2Result,
    Table3Result,
)
from repro.eval.reporting import (
    _table,
    render_figure2,
    render_figure8,
    render_table2,
    render_table3,
)


class TestTableFormatter:
    def test_alignment(self):
        text = _table(["A", "Bee"], [["xxxx", "1"], ["y", "22"]])
        lines = text.splitlines()
        assert lines[0].startswith("A    ")
        assert "-+-" in lines[1]
        assert len({line.index("|") for line in [lines[0]] + lines[2:]}) == 1

    def test_empty_rows(self):
        text = _table(["H"], [])
        assert "H" in text


class TestRenderers:
    def test_figure2(self):
        result = Figure2Result(
            spider_accuracy=66.0, aep_accuracy=25.0,
            spider_total=1034, aep_total=110,
        )
        text = render_figure2(result)
        assert "66.0" in text and "24.0" in text and "1034" in text

    def test_table2_missing_cells_dash(self):
        result = Table2Result(
            cells=[
                CorrectionCell(
                    method="FISQL",
                    dataset="spider",
                    corrected_percent=44.0,
                    n_errors=100,
                )
            ]
        )
        text = render_table2(result)
        assert "44.00" in text
        # Query Rewrite has no measurement → dash.
        assert "| -" in text

    def test_table2_percent_lookup(self):
        result = Table2Result(
            cells=[
                CorrectionCell(
                    method="FISQL",
                    dataset="aep",
                    corrected_percent=67.0,
                    n_errors=53,
                )
            ]
        )
        assert result.percent("FISQL", "aep") == 67.0
        assert result.cell("FISQL", "spider") is None

    def test_figure8(self):
        result = Figure8Result(
            fisql_by_round=[44.0, 59.0],
            no_routing_by_round=[43.0, 59.0],
            n_errors=101,
        )
        text = render_figure8(result)
        assert "44.00" in text and "59.00" in text
        assert "Round" in text

    def test_table3(self):
        result = Table3Result(
            fisql_aep=67.9,
            fisql_spider=44.5,
            highlighting_aep=69.8,
            highlighting_spider=44.5,
        )
        text = render_table3(result)
        assert "69.80" in text
        assert "FISQL (+ Highlighting)" in text
