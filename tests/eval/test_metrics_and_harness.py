"""Metrics and harness unit tests."""

import pytest

from repro.core.session import CorrectionOutcome
from repro.core.nl2sql import Nl2SqlModel
from repro.eval.harness import SCALES, build_context
from repro.eval.metrics import (
    AccuracyReport,
    PredictionRecord,
    correction_rate,
    evaluate_model,
    execution_correct,
)
from repro.datasets.base import Example


class TestExecutionCorrect:
    def test_correct(self, music_db):
        assert execution_correct(
            music_db, "SELECT COUNT(*) FROM singer", "SELECT COUNT(Name) FROM singer"
        )

    def test_incorrect(self, music_db):
        assert not execution_correct(
            music_db,
            "SELECT COUNT(*) FROM singer",
            "SELECT COUNT(*) FROM singer WHERE Age > 40",
        )

    def test_broken_prediction(self, music_db):
        assert not execution_correct(
            music_db, "SELECT COUNT(*) FROM singer", "oops"
        )


class TestCorrectionRate:
    def _outcome(self, round_index):
        return CorrectionOutcome(example_id="e", corrected_round=round_index)

    def test_percentages(self):
        outcomes = [self._outcome(1), self._outcome(2), self._outcome(None)]
        assert correction_rate(outcomes, within_rounds=1) == pytest.approx(100 / 3)
        assert correction_rate(outcomes, within_rounds=2) == pytest.approx(200 / 3)

    def test_empty(self):
        assert correction_rate([]) == 0.0


class TestEvaluateModel:
    def test_report_counts(self, small_suite):
        model = Nl2SqlModel()
        report = evaluate_model(
            model, small_suite.benchmark, small_suite.dev_examples[:20]
        )
        assert report.total == 20
        assert 0 <= report.correct <= 20
        assert report.accuracy == report.correct / 20
        assert len(report.errors()) == 20 - report.correct

    def test_empty_report(self):
        report = AccuracyReport()
        assert report.accuracy == 0.0


class TestContext:
    def test_scales_defined(self):
        assert {"full", "medium", "small"} <= set(SCALES)
        assert SCALES["full"]["n_dev"] == 1034
        assert SCALES["full"]["n_databases"] == 200

    def test_context_cached(self):
        a = build_context(scale="small")
        b = build_context(scale="small")
        assert a is b

    def test_error_set_subset_of_errors(self):
        context = build_context(scale="small")
        errors = context.assistant_report("spider").errors()
        annotated = context.error_set("spider")
        error_ids = {r.example.example_id for r in errors}
        assert all(r.example.example_id in error_ids for r in annotated)
        assert len(annotated) <= len(errors)

    def test_error_set_all_wrong(self):
        context = build_context(scale="small")
        for record in context.error_set("aep"):
            assert not record.correct

    def test_zero_shot_has_no_retriever(self):
        context = build_context(scale="small")
        assert context.zero_shot_model().retriever is None
        assert context.spider_assistant_model().retriever is not None

    def test_unknown_scale_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown scale 'galactic'"):
            build_context(scale="galactic")

    def test_unknown_scale_error_names_valid_scales(self):
        with pytest.raises(ValueError) as excinfo:
            build_context(scale="tiny")
        message = str(excinfo.value)
        for scale in SCALES:
            assert scale in message

    def test_annotator_unknown_example_raises_value_error(self):
        context = build_context(scale="small")
        annotator = context.annotator_for("spider")
        with pytest.raises(ValueError, match="unknown example_id 'no-such-id'"):
            annotator.give_feedback(
                example_id="no-such-id",
                question="?",
                gold=None,
                predicted=None,
                round_index=1,
                use_highlights=False,
            )
