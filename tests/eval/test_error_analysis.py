"""Error-analysis (§4.2 breakdown) tests."""

import pytest

from repro.core.session import CorrectionOutcome, RoundRecord
from repro.datasets.base import Example
from repro.eval.analysis import (
    CAUSE_MISALIGNED,
    CAUSE_MULTI_ERROR,
    CAUSE_NO_FEEDBACK,
    CAUSE_UNINTERPRETED,
    analyze_corrections,
)
from repro.eval.harness import build_context
from repro.eval.metrics import PredictionRecord


def record(example_id="e1", trap_kind=None, gold="SELECT 1", pred="SELECT 2"):
    return PredictionRecord(
        example=Example(
            example_id=example_id,
            db_id="experience_platform",
            question="q",
            gold_sql=gold,
            trap_kind=trap_kind,
        ),
        predicted_sql=pred,
        correct=False,
    )


def outcome(example_id="e1", corrected_round=None, rounds=()):
    return CorrectionOutcome(
        example_id=example_id,
        corrected_round=corrected_round,
        rounds=list(rounds),
    )


def round_record(feedback, before, after, notes=()):
    return RoundRecord(
        round_index=1,
        feedback_text=feedback,
        feedback_type="edit",
        highlight=None,
        sql_before=before,
        sql_after=after,
        corrected=False,
        notes=list(notes),
    )


@pytest.fixture(scope="module")
def aep_benchmark():
    return build_context(scale="small").aep_benchmark


class TestAttribution:
    def test_corrected_counted(self, aep_benchmark):
        analysis = analyze_corrections(
            [record()], [outcome(corrected_round=1)], aep_benchmark
        )
        assert analysis.corrected == 1
        assert analysis.corrected_percent == 100.0

    def test_no_feedback(self, aep_benchmark):
        analysis = analyze_corrections([record()], [outcome()], aep_benchmark)
        assert analysis.residual_causes[CAUSE_NO_FEEDBACK] == 1

    def test_misaligned_detected(self, aep_benchmark):
        rounds = [
            round_record(
                "this is not what I asked for",
                "SELECT 2",
                "SELECT 2",
                notes=["could not interpret the feedback; query unchanged"],
            )
        ]
        analysis = analyze_corrections(
            [record()], [outcome(rounds=rounds)], aep_benchmark
        )
        assert analysis.residual_causes[CAUSE_MISALIGNED] == 1

    def test_uninterpreted_detected(self, aep_benchmark):
        rounds = [
            round_record(
                "shift the window by a fortnight",
                "SELECT 2",
                "SELECT 2",
                notes=["could not interpret the feedback; query unchanged"],
            )
        ]
        analysis = analyze_corrections(
            [record()], [outcome(rounds=rounds)], aep_benchmark
        )
        assert analysis.residual_causes[CAUSE_UNINTERPRETED] == 1

    def test_multi_error_detected(self, aep_benchmark):
        rec = record(
            trap_kind="multi",
            gold=(
                "SELECT segmentname FROM hkg_dim_segment WHERE createdtime "
                ">= '2024-01-01' AND createdtime < '2024-02-01'"
            ),
            pred=(
                "SELECT segmentname, description FROM hkg_dim_segment WHERE "
                "createdtime >= '2023-01-01' AND createdtime < '2023-02-01'"
            ),
        )
        rounds = [
            round_record(
                "do not give descriptions",
                rec.predicted_sql,
                (
                    "SELECT segmentname FROM hkg_dim_segment WHERE "
                    "createdtime >= '2023-01-01' AND createdtime < "
                    "'2023-02-01'"
                ),
            )
        ]
        analysis = analyze_corrections(
            [rec], [outcome(rounds=rounds)], aep_benchmark
        )
        assert analysis.residual_causes[CAUSE_MULTI_ERROR] == 1

    def test_per_kind_breakdown(self, aep_benchmark):
        records = [
            record(example_id="a", trap_kind="default_year"),
            record(example_id="b", trap_kind="default_year"),
            record(example_id="c"),
        ]
        outcomes = [
            outcome("a", corrected_round=1),
            outcome("b"),
            outcome("c", corrected_round=1),
        ]
        analysis = analyze_corrections(records, outcomes, aep_benchmark)
        assert analysis.by_trap_kind["default_year"] == (1, 2)
        assert analysis.by_trap_kind["untrapped"] == (1, 1)

    def test_misaligned_length_check(self, aep_benchmark):
        with pytest.raises(ValueError):
            analyze_corrections([record()], [], aep_benchmark)

    def test_render(self, aep_benchmark):
        analysis = analyze_corrections(
            [record()], [outcome(corrected_round=1)], aep_benchmark
        )
        text = analysis.render()
        assert "Corrected 1/1" in text
        assert "Residual failure causes" in text


class TestEndToEnd:
    def test_analysis_on_real_outcomes(self):
        """Run FISQL over the small-scale error set and attribute residuals."""
        from repro.eval.experiments import _run_fisql

        context = build_context(scale="small")
        errors = context.error_set("spider")
        fisql = _run_fisql(
            context, "spider", errors, routing=True, highlights=False,
            max_rounds=1,
        )
        analysis = analyze_corrections(
            errors, fisql, context.spider.benchmark
        )
        assert analysis.total == len(errors)
        assert 0 < analysis.corrected < analysis.total
        # The paper's three causes should all be observable.
        assert sum(analysis.residual_causes.values()) == (
            analysis.total - analysis.corrected
        )
