"""Durability suite: atomic files, crash points, the journal, resume."""
