"""Resume parity: journaled reruns render byte-identical artifacts.

The durability contract: a run that journals, dies, and resumes must
produce *exactly* the bytes an uninterrupted run produces, with only the
unjournaled items re-executed. These tests prove it in-process at the
small scale; ``test_crash_resume.py`` proves the kill -9 version through
the CLI.
"""

import pytest

from repro.durability import RunJournal
from repro.durability.crashpoints import (
    SimulatedCrash,
    arm_crash_point,
    disarm_crash_points,
)
from repro.eval.experiments import run_figure2, run_table2
from repro.eval.harness import build_context
from repro.eval.reporting import render_figure2, render_table2

SEED = 20250325


@pytest.fixture(autouse=True)
def _disarm_after_each_test():
    yield
    disarm_crash_points()


@pytest.fixture(scope="module")
def figure2_baseline():
    context = build_context(scale="small", seed=SEED)
    return render_figure2(run_figure2(context))


class TestResumeParity:
    def test_cold_then_resume_is_byte_identical(
        self, tmp_path, figure2_baseline
    ):
        cold_journal = RunJournal(tmp_path)
        cold_context = build_context(
            scale="small", seed=SEED, journal=cold_journal
        )
        cold = render_figure2(run_figure2(cold_context))
        cold_journal.close()
        assert cold == figure2_baseline
        assert cold_journal.appended > 0
        assert cold_journal.replayed == 0

        warm_journal = RunJournal(tmp_path)
        warm_context = build_context(
            scale="small", seed=SEED, journal=warm_journal
        )
        warm = render_figure2(run_figure2(warm_context))
        warm_journal.close()
        assert warm == figure2_baseline
        assert warm_journal.appended == 0
        assert warm_journal.replayed == cold_journal.appended

    def test_crash_mid_run_then_resume(self, tmp_path, figure2_baseline):
        arm_crash_point("journal.append", on_hit=25, action="raise")
        crashed_journal = RunJournal(tmp_path)
        crashed_context = build_context(
            scale="small", seed=SEED, journal=crashed_journal
        )
        with pytest.raises(SimulatedCrash):
            run_figure2(crashed_context)
        disarm_crash_points()
        # No close/seal: the crashed process never got to clean up.

        resumed_journal = RunJournal(tmp_path)
        assert len(resumed_journal) == 25  # every fsync'd item survived
        resumed_context = build_context(
            scale="small", seed=SEED, journal=resumed_journal
        )
        resumed = render_figure2(run_figure2(resumed_context))
        resumed_journal.close()
        assert resumed == figure2_baseline
        assert resumed_journal.replayed == 25
        assert resumed_journal.appended > 0

    def test_resume_across_parallelism_change(
        self, tmp_path, figure2_baseline
    ):
        cold_journal = RunJournal(tmp_path)
        cold_context = build_context(
            scale="small", seed=SEED, journal=cold_journal
        )
        run_figure2(cold_context)
        cold_journal.close()

        # Journal scopes exclude workers/batch_size: a resume under
        # different parallelism replays everything and recomputes nothing.
        warm_journal = RunJournal(tmp_path)
        warm_context = build_context(
            scale="small",
            seed=SEED,
            journal=warm_journal,
            workers=2,
            batch_size=4,
        )
        warm = render_figure2(run_figure2(warm_context))
        warm_journal.close()
        assert warm == figure2_baseline
        assert warm_journal.appended == 0

    def test_correction_sessions_replay(self, tmp_path):
        baseline = render_table2(
            run_table2(build_context(scale="small", seed=SEED))
        )
        cold_journal = RunJournal(tmp_path)
        cold = render_table2(
            run_table2(
                build_context(scale="small", seed=SEED, journal=cold_journal)
            )
        )
        cold_journal.close()
        assert cold == baseline

        warm_journal = RunJournal(tmp_path)
        warm = render_table2(
            run_table2(
                build_context(scale="small", seed=SEED, journal=warm_journal)
            )
        )
        warm_journal.close()
        assert warm == baseline
        assert warm_journal.appended == 0
        assert warm_journal.replayed == cold_journal.appended


class TestSuiteWarmStart:
    def test_warm_start_matches_cold(self, tmp_path, figure2_baseline):
        cold_context = build_context(
            scale="small", seed=SEED, suite_dir=tmp_path
        )
        cold = render_figure2(run_figure2(cold_context))
        assert cold == figure2_baseline
        assert list(tmp_path.glob("suite-small-*.json"))

        warm_context = build_context(
            scale="small", seed=SEED, suite_dir=tmp_path
        )
        warm = render_figure2(run_figure2(warm_context))
        assert warm == figure2_baseline

    def test_corrupt_suite_regenerates(
        self, tmp_path, figure2_baseline, monkeypatch
    ):
        from repro.eval import harness

        # Simulate a fresh process: no in-memory context cache, so the
        # corrupt file is actually read (and quarantined) on load.
        monkeypatch.setattr(harness, "_CONTEXT_CACHE", {})
        path = tmp_path / f"suite-small-{SEED}.json"
        path.write_text("rotted")
        context = build_context(scale="small", seed=SEED, suite_dir=tmp_path)
        assert render_figure2(run_figure2(context)) == figure2_baseline
        # Quarantined aside and regenerated in place.
        assert (tmp_path / (path.name + ".corrupt")).exists()
        assert path.exists()
