"""The run journal: fsync'd appends, sealing, torn tails, replay."""

import json

import pytest

from repro.durability.crashpoints import (
    SimulatedCrash,
    arm_crash_point,
    disarm_crash_points,
)
from repro.durability.journal import RunJournal


@pytest.fixture(autouse=True)
def _disarm_after_each_test():
    yield
    disarm_crash_points()


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        journal = RunJournal(tmp_path)
        assert journal.append("k1", "prediction", {"sql": "SELECT 1"})
        record = journal.replay("k1")
        assert record["kind"] == "prediction"
        assert record["value"] == {"sql": "SELECT 1"}
        assert journal.replayed == 1

    def test_append_is_idempotent(self, tmp_path):
        journal = RunJournal(tmp_path)
        assert journal.append("k", "prediction", 1)
        assert not journal.append("k", "prediction", 2)
        assert journal.replay("k")["value"] == 1
        assert journal.appended == 1

    def test_miss_returns_none(self, tmp_path):
        journal = RunJournal(tmp_path)
        assert journal.replay("absent") is None
        assert journal.replayed == 0

    def test_contains_and_len(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.append("a", "x", 1)
        journal.append("b", "x", 2)
        assert "a" in journal
        assert "c" not in journal
        assert len(journal) == 2

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            RunJournal(tmp_path, segment_max_records=0)


class TestSegments:
    def test_rotation_seals_full_segments(self, tmp_path):
        journal = RunJournal(tmp_path, segment_max_records=3)
        for index in range(7):
            journal.append(f"k{index}", "x", index)
        journal.close()
        assert journal.sealed == 2
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "segment-0000.sealed.json",
            "segment-0001.sealed.json",
            "segment-0002.jsonl",
        ]

    def test_reload_sees_sealed_and_active(self, tmp_path):
        first = RunJournal(tmp_path, segment_max_records=3)
        for index in range(7):
            first.append(f"k{index}", "x", index)
        first.close()
        second = RunJournal(tmp_path, segment_max_records=3)
        assert len(second) == 7
        assert second.replay("k6")["value"] == 6

    def test_new_process_opens_fresh_segment(self, tmp_path):
        first = RunJournal(tmp_path)
        first.append("a", "x", 1)
        first.close()
        second = RunJournal(tmp_path)
        second.append("b", "x", 2)
        second.close()
        # The second writer never appends to the first's possibly-torn file.
        assert (tmp_path / "segment-0000.jsonl").exists()
        assert (tmp_path / "segment-0001.jsonl").exists()

    def test_explicit_seal(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.append("a", "x", 1)
        journal.seal()
        assert (tmp_path / "segment-0000.sealed.json").exists()
        assert not (tmp_path / "segment-0000.jsonl").exists()
        assert len(RunJournal(tmp_path)) == 1


class TestCrashShapes:
    def test_torn_tail_is_skipped(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.append("a", "x", 1)
        journal.append("b", "x", 2)
        journal.close()
        path = tmp_path / "segment-0000.jsonl"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "c", "kind": "x", "val')  # torn write
        reloaded = RunJournal(tmp_path)
        assert len(reloaded) == 2
        assert "c" not in reloaded

    def test_corrupt_sealed_segment_quarantined(self, tmp_path):
        journal = RunJournal(tmp_path, segment_max_records=2)
        for index in range(4):
            journal.append(f"k{index}", "x", index)
        journal.close()
        sealed = tmp_path / "segment-0000.sealed.json"
        sealed.write_text("rotted bytes")
        reloaded = RunJournal(tmp_path)
        # The two records of the corrupt segment are lost (recomputable);
        # the other segment still replays, and the evidence is kept aside.
        assert len(reloaded) == 2
        assert reloaded.quarantined == 1
        assert (tmp_path / "segment-0000.sealed.json.corrupt").exists()

    def test_durable_before_crash_point(self, tmp_path):
        """A record is on disk before its crash point can fire."""
        arm_crash_point("journal.append", on_hit=3, action="raise")
        journal = RunJournal(tmp_path)
        journal.append("a", "x", 1)
        journal.append("b", "x", 2)
        with pytest.raises(SimulatedCrash):
            journal.append("c", "x", 3)
        # No close, no seal: simulate the process dying right here.
        reloaded = RunJournal(tmp_path)
        assert len(reloaded) == 3
        assert reloaded.replay("c")["value"] == 3

    def test_crash_during_seal_loses_nothing(self, tmp_path):
        arm_crash_point("journal.seal", on_hit=1, action="raise")
        journal = RunJournal(tmp_path, segment_max_records=2)
        journal.append("a", "x", 1)
        with pytest.raises(SimulatedCrash):
            journal.append("b", "x", 2)  # fills the segment -> seal -> boom
        reloaded = RunJournal(tmp_path)
        assert len(reloaded) == 2  # the raw .jsonl still holds both


class TestIntrospection:
    def test_stats_and_summary(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.append("a", "x", 1)
        journal.replay("a")
        stats = journal.stats()
        assert stats["records"] == 1
        assert stats["appended"] == 1
        assert stats["replayed"] == 1
        assert "1 appended, 1 replayed" in journal.summary()

    def test_records_are_canonical_json_lines(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.append("a", "x", {"b": 1, "a": 2})
        journal.close()
        line = (tmp_path / "segment-0000.jsonl").read_text().strip()
        assert json.loads(line) == {
            "key": "a",
            "kind": "x",
            "v": 1,
            "value": {"a": 2, "b": 1},
        }
