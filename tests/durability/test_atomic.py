"""Atomic checksummed JSON: round trips, corruption, quarantine."""

import json

import pytest

from repro.durability.atomic import (
    atomic_write_text,
    canonical_json,
    canonical_key,
    quarantine_file,
    read_checksummed_json,
    write_checksummed_json,
)


class TestCanonical:
    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_canonical_key_is_deterministic(self):
        payload = {"x": [1, 2, 3], "y": {"nested": True}}
        assert canonical_key(payload) == canonical_key(dict(payload))

    def test_canonical_key_differs_on_content(self):
        assert canonical_key({"a": 1}) != canonical_key({"a": 2})


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_file_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "out.txt", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(path, "deep")
        assert path.read_text() == "deep"


class TestChecksummedJson:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "doc.json"
        payload = {"version": 1, "items": [1, "two", None]}
        write_checksummed_json(path, payload)
        assert read_checksummed_json(path) == payload

    def test_equal_payloads_write_identical_bytes(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_checksummed_json(a, {"k": [1, 2], "j": "x"})
        write_checksummed_json(b, {"j": "x", "k": [1, 2]})
        assert a.read_bytes() == b.read_bytes()

    def test_missing_file_is_none(self, tmp_path):
        assert read_checksummed_json(tmp_path / "absent.json") is None

    def test_corrupt_file_quarantined(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text("{ not json")
        assert read_checksummed_json(path) is None
        assert not path.exists()
        assert (tmp_path / "doc.json.corrupt").exists()

    def test_checksum_mismatch_quarantined(self, tmp_path):
        path = tmp_path / "doc.json"
        write_checksummed_json(path, {"v": 1})
        document = json.loads(path.read_text())
        document["payload"]["v"] = 2  # bit-rot the payload, keep checksum
        path.write_text(json.dumps(document))
        assert read_checksummed_json(path) is None
        assert (tmp_path / "doc.json.corrupt").exists()

    def test_plain_json_without_envelope_quarantined(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text('{"just": "data"}')
        assert read_checksummed_json(path) is None
        assert (tmp_path / "doc.json.corrupt").exists()

    def test_quarantine_disabled_leaves_file(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text("garbage")
        assert read_checksummed_json(path, quarantine=False) is None
        assert path.exists()


class TestQuarantine:
    def test_moves_aside(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("x")
        target = quarantine_file(path)
        assert target == tmp_path / "bad.json.corrupt"
        assert not path.exists()

    def test_suffix_increments_on_collision(self, tmp_path):
        for _ in range(3):
            path = tmp_path / "bad.json"
            path.write_text("x")
            quarantine_file(path)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "bad.json.corrupt",
            "bad.json.corrupt-1",
            "bad.json.corrupt-2",
        ]

    def test_quarantined_files_escape_json_globs(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("x")
        quarantine_file(path)
        assert list(tmp_path.glob("*.json")) == []

    def test_missing_file_returns_none(self, tmp_path):
        assert quarantine_file(tmp_path / "absent.json") is None
