"""Kill -9 a *worker process* mid-sweep, resume sequentially, assert parity.

The process tier's durability story: worker processes journal to their
own segments with per-append fsync, so when one is SIGKILL'd the parent's
pool breaks and the run dies — but everything any worker flushed survives.
A later sequential ``--resume`` replays that prefix and re-executes only
the rest, landing on byte-identical stdout. Worker mode is not part of
the journal scope, so the resume crosses modes freely.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
CRASH_AFTER = 25  # appends before the worker SIGKILLs itself


def _run_cli(*argv: str, crash_at: int = 0) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("FISQL_CRASH_POINT", None)
    if crash_at:
        env["FISQL_CRASH_POINT"] = f"journal.append:{crash_at}"
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )


def _journal_counts(stderr: str) -> tuple[int, int]:
    match = re.search(r"\[journal\] (\d+) appended, (\d+) replayed", stderr)
    assert match, f"no journal summary in stderr:\n{stderr}"
    return int(match.group(1)), int(match.group(2))


@pytest.fixture(scope="module")
def baseline():
    result = _run_cli("run", "figure2", "--scale", "small")
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestProcessWorkerCrash:
    def test_worker_kill9_then_sequential_resume(self, tmp_path, baseline):
        journal_dir = str(tmp_path / "journal")
        suite_dir = str(tmp_path / "suites")

        crashed = _run_cli(
            "run",
            "figure2",
            "--scale",
            "small",
            "--workers",
            "2",
            "--worker-mode",
            "process",
            "--journal",
            journal_dir,
            "--suite-dir",
            suite_dir,
            crash_at=CRASH_AFTER,
        )
        # The SIGKILL lands on a *worker*; the parent sees its pool break
        # and dies with a nonzero status before rendering anything.
        assert crashed.returncode != 0, crashed.stdout
        assert crashed.stdout == ""

        resumed = _run_cli(
            "run",
            "figure2",
            "--scale",
            "small",
            "--journal",
            journal_dir,
            "--resume",
            "--suite-dir",
            suite_dir,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == baseline
        appended, replayed = _journal_counts(resumed.stderr)
        # Every fsync'd worker append survives the kill; how many that is
        # depends on scheduling, but the crashed worker proves >= the
        # crash threshold landed before the SIGKILL.
        assert replayed >= CRASH_AFTER
        assert appended > 0
