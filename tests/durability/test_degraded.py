"""Graceful write-degradation: a failing disk costs durability, not the run.

Every persister absorbs the injected ``OSError`` (ENOSPC, EROFS — the
shim raises real errnos, because a root-owned test process ignores
``chmod`` and needs injection to see a read-only filesystem), keeps
serving from memory, flips its degraded flag, and counts the loss under
``durability.degraded`` so the run report can say what happened.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.chaos.diskfaults import arm_disk_fault, disarm_disk_faults
from repro.durability import RunJournal
from repro.llm.dispatch import Completion, CompletionCache
from repro.obs.reporting import render_run_report
from repro.semcache import SemanticAnswerCache, SemcacheLookup
from repro.serve.persistence import SessionStore


@pytest.fixture(autouse=True)
def _disarm():
    disarm_disk_faults()
    yield
    disarm_disk_faults()


@pytest.fixture
def enabled_obs():
    obs.enable()
    try:
        yield
    finally:
        obs.disable()


def _degraded_counts(snapshot: dict) -> dict:
    return {
        counter["labels"].get("kind"): counter["value"]
        for counter in snapshot["counters"]
        if counter["name"] == "durability.degraded"
    }


class TestJournalDegradation:
    def test_enospc_flips_degraded_and_keeps_the_run_going(
        self, tmp_path, enabled_obs
    ):
        journal = RunJournal(tmp_path / "journal")
        try:
            assert journal.append("k1", "turn", {"n": 1})
            # Arming resets the site's hit counter: the disk fills on
            # the *second* append after this line.
            arm_disk_fault(
                "disk.journal_append", on_hit=2, error="enospc", sticky=True
            )
            assert journal.append("k2", "turn", {"n": 2})  # still durable
            assert journal.append("k3", "turn", {"n": 3})  # ENOSPC: degrade
            assert journal.append("k4", "turn", {"n": 4})  # read-only mode
            assert journal.degraded
            assert journal.degraded_writes == 2
            assert journal.replay("k4") == {
                "key": "k4", "kind": "turn", "value": {"n": 4}
            }
            stats = journal.stats()
            assert stats["degraded"] is True
            assert stats["degraded_writes"] == 2
        finally:
            journal.close()
        assert _degraded_counts(obs.snapshot()).get("journal") == 2

    def test_surviving_records_reload_after_degradation(self, tmp_path):
        journal = RunJournal(tmp_path / "journal")
        journal.append("k1", "turn", {"n": 1})
        arm_disk_fault("disk.journal_append", error="enospc", sticky=True)
        journal.append("k2", "turn", {"n": 2})
        journal.close()
        disarm_disk_faults()

        reloaded = RunJournal(tmp_path / "journal")
        try:
            assert len(reloaded) == 1  # only the fsync'd record survived
            assert reloaded.replay("k1") is not None
            assert reloaded.replay("k2") is None
        finally:
            reloaded.close()


class TestSessionStoreDegradation:
    def test_readonly_store_fails_soft(self, tmp_path, enabled_obs):
        store = SessionStore(tmp_path / "sessions")
        assert store.save("s1", "t", "db", {"turns": [1]}) is True
        arm_disk_fault("disk.session_save", error="erofs", sticky=True)
        assert store.save("s2", "t", "db", {"turns": [2]}) is False
        assert store.save("s3", "t", "db", {"turns": [3]}) is False
        assert store.save_failures == 2
        assert store.ids() == ["s1"]  # earlier saves untouched
        assert _degraded_counts(obs.snapshot()).get("session") == 2


class TestCompletionCacheDegradation:
    def test_full_disk_costs_warmth_not_the_run(self, tmp_path, enabled_obs):
        cache = CompletionCache()
        cache.put("key", Completion(text="SELECT 1", notes=[]))
        arm_disk_fault("disk.cache_save", error="enospc")
        assert cache.save(tmp_path / "cache") == 0
        assert cache.save_failed
        # The in-memory cache still serves.
        assert cache.get("key").text == "SELECT 1"
        assert _degraded_counts(obs.snapshot()).get("completion_cache") == 1
        # The disk recovered: the next save works.
        assert cache.save(tmp_path / "cache") == 1


class TestSemcacheDegradation:
    def test_save_failure_keeps_serving_from_memory(
        self, tmp_path, enabled_obs
    ):
        cache = SemanticAnswerCache(directory=tmp_path / "semcache")
        arm_disk_fault("disk.semcache_save", error="erofs")
        assert cache.save() is None
        assert cache.save_failed
        assert _degraded_counts(obs.snapshot()).get("semcache") == 1
        disarm_disk_faults()
        assert cache.save() is not None

    def test_log_abandoned_after_first_failure(self, tmp_path, enabled_obs):
        cache = SemanticAnswerCache(directory=tmp_path / "semcache")
        lookup = SemcacheLookup(
            outcome="miss",
            tenant="t",
            db="aep",
            question="How many audiences?",
            fingerprint="fp",
        )
        arm_disk_fault("disk.semcache_log", on_hit=1, error="enospc")
        cache.log_round(lookup, "ask")
        disarm_disk_faults()
        # A log with a silent hole audits the wrong history: once
        # degraded, later rounds are not appended either.
        cache.log_round(lookup, "ask")
        assert not (tmp_path / "semcache" / "questions.jsonl").exists()
        counts = _degraded_counts(obs.snapshot())
        assert counts.get("semcache_log") == 1


class TestRunReportLine:
    def test_degraded_writes_surface_in_the_report(
        self, tmp_path, enabled_obs
    ):
        journal = RunJournal(tmp_path / "journal")
        arm_disk_fault("disk.journal_append", error="enospc", sticky=True)
        journal.append("k1", "turn", {"n": 1})
        journal.close()
        report = render_run_report(obs.snapshot())
        assert "degraded writes (disk fault, in-memory fallback): 1" in report
        assert "journal" in report
