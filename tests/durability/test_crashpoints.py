"""Crash points: deterministic, hit-counted, unswallowable in tests."""

import pytest

from repro.durability.crashpoints import (
    CRASH_MODE_ENV,
    CRASH_POINT_ENV,
    SimulatedCrash,
    arm_crash_point,
    crash_point,
    disarm_crash_points,
)


@pytest.fixture(autouse=True)
def _disarm_after_each_test():
    yield
    disarm_crash_points()


class TestCrashPoints:
    def test_unarmed_is_noop(self):
        crash_point("anything")  # must not raise

    def test_fires_on_exact_hit(self):
        arm_crash_point("p", on_hit=3, action="raise")
        crash_point("p")
        crash_point("p")
        with pytest.raises(SimulatedCrash) as info:
            crash_point("p")
        assert info.value.point == "p"
        assert info.value.hits == 3

    def test_fires_only_once(self):
        arm_crash_point("p", on_hit=1, action="raise")
        with pytest.raises(SimulatedCrash):
            crash_point("p")
        crash_point("p")  # hit 2 != on_hit 1: no-op

    def test_other_points_unaffected(self):
        arm_crash_point("p", on_hit=1, action="raise")
        crash_point("q")

    def test_disarm_resets(self):
        arm_crash_point("p", on_hit=1, action="raise")
        disarm_crash_points()
        crash_point("p")

    def test_simulated_crash_evades_except_exception(self):
        arm_crash_point("p", on_hit=1, action="raise")
        with pytest.raises(BaseException):
            try:
                crash_point("p")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedCrash must not be an Exception")

    def test_validation(self):
        with pytest.raises(ValueError):
            arm_crash_point("p", on_hit=0)
        with pytest.raises(ValueError):
            arm_crash_point("p", action="explode")

    def test_env_arming(self, monkeypatch):
        monkeypatch.setenv(CRASH_POINT_ENV, "envpoint:2")
        monkeypatch.setenv(CRASH_MODE_ENV, "raise")
        crash_point("envpoint")
        with pytest.raises(SimulatedCrash):
            crash_point("envpoint")

    def test_env_other_point_ignored(self, monkeypatch):
        monkeypatch.setenv(CRASH_POINT_ENV, "elsewhere:1")
        monkeypatch.setenv(CRASH_MODE_ENV, "raise")
        crash_point("here")

    def test_env_malformed_count_ignored(self, monkeypatch):
        monkeypatch.setenv(CRASH_POINT_ENV, "p:notanumber")
        monkeypatch.setenv(CRASH_MODE_ENV, "raise")
        crash_point("p")
