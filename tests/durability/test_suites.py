"""Suite persistence: byte-stable round trips, staleness, corruption."""

import pytest

from repro.datasets.aep import generate_aep_suite
from repro.datasets.spider import generate_spider_suite
from repro.durability.suites import (
    SUITE_SCHEMA_VERSION,
    load_suites,
    save_suites,
    suite_path,
)
from repro.durability.atomic import write_checksummed_json


@pytest.fixture(scope="module")
def tiny_env():
    spider = generate_spider_suite(n_databases=3, n_dev=8, n_train=6)
    aep_benchmark, aep_demos = generate_aep_suite(n_questions=6)
    return spider, aep_benchmark, aep_demos


class TestRoundTrip:
    def test_examples_and_demos_survive(self, tmp_path, tiny_env):
        spider, aep_benchmark, aep_demos = tiny_env
        save_suites(tmp_path, "tiny", 7, spider, aep_benchmark, aep_demos)
        loaded = load_suites(tmp_path, "tiny", 7)
        assert loaded is not None
        spider2, aep2, demos2 = loaded
        assert [e.to_dict() for e in spider2.benchmark.examples] == [
            e.to_dict() for e in spider.benchmark.examples
        ]
        assert [e.to_dict() for e in spider2.train_examples] == [
            e.to_dict() for e in spider.train_examples
        ]
        assert [e.to_dict() for e in aep2.examples] == [
            e.to_dict() for e in aep_benchmark.examples
        ]
        assert [d.question for d in demos2] == [
            d.question for d in aep_demos
        ]
        assert demos2[0].glossary == aep_demos[0].glossary

    def test_databases_survive_with_rows(self, tmp_path, tiny_env):
        spider, aep_benchmark, aep_demos = tiny_env
        save_suites(tmp_path, "tiny", 7, spider, aep_benchmark, aep_demos)
        spider2, _, _ = load_suites(tmp_path, "tiny", 7)
        assert sorted(spider2.benchmark.databases) == sorted(
            spider.benchmark.databases
        )
        for db_id, original in spider.benchmark.databases.items():
            restored = spider2.benchmark.databases[db_id]
            for table in original.schema.tables:
                query = f"SELECT * FROM {table.name}"
                assert (
                    restored.execute(query).rows
                    == original.execute(query).rows
                )

    def test_repeated_saves_are_byte_identical(self, tmp_path, tiny_env):
        spider, aep_benchmark, aep_demos = tiny_env
        path = save_suites(
            tmp_path, "tiny", 7, spider, aep_benchmark, aep_demos
        )
        first = path.read_bytes()
        save_suites(tmp_path, "tiny", 7, spider, aep_benchmark, aep_demos)
        assert path.read_bytes() == first


class TestMisses:
    def test_absent_file(self, tmp_path):
        assert load_suites(tmp_path, "tiny", 7) is None

    def test_scale_seed_mismatch_quarantines(self, tmp_path, tiny_env):
        spider, aep_benchmark, aep_demos = tiny_env
        save_suites(tmp_path, "tiny", 7, spider, aep_benchmark, aep_demos)
        # Same bytes renamed to another (scale, seed) slot must not load.
        target = suite_path(tmp_path, "other", 8)
        suite_path(tmp_path, "tiny", 7).rename(target)
        assert load_suites(tmp_path, "other", 8) is None
        assert not target.exists()  # quarantined

    def test_stale_schema_version_quarantines(self, tmp_path):
        path = suite_path(tmp_path, "tiny", 7)
        write_checksummed_json(
            path,
            {
                "version": SUITE_SCHEMA_VERSION + 1,
                "scale": "tiny",
                "seed": 7,
            },
        )
        assert load_suites(tmp_path, "tiny", 7) is None
        assert not path.exists()

    def test_corrupt_file_quarantines(self, tmp_path):
        path = suite_path(tmp_path, "tiny", 7)
        path.write_text("torn")
        assert load_suites(tmp_path, "tiny", 7) is None
        assert (tmp_path / (path.name + ".corrupt")).exists()

    def test_truncated_payload_quarantines(self, tmp_path):
        path = suite_path(tmp_path, "tiny", 7)
        # Valid envelope, valid version/scale/seed, missing suite bodies.
        write_checksummed_json(
            path,
            {"version": SUITE_SCHEMA_VERSION, "scale": "tiny", "seed": 7},
        )
        assert load_suites(tmp_path, "tiny", 7) is None
        assert not path.exists()
