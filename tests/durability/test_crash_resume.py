"""Kill -9 mid-run, resume, assert byte parity — through the real CLI.

This is the end-to-end durability proof: a subprocess is SIGKILL'd at a
seeded crash point deep inside the sweep (no atexit, no flushes), the
resumed invocation replays exactly the journaled prefix, and the final
stdout is byte-identical to an uninterrupted run's.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
CRASH_AFTER = 40  # records journaled before the SIGKILL


def _run_cli(*argv: str, crash_at: int = 0) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("FISQL_CRASH_POINT", None)
    if crash_at:
        env["FISQL_CRASH_POINT"] = f"journal.append:{crash_at}"
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )


def _journal_counts(stderr: str) -> tuple[int, int]:
    match = re.search(r"\[journal\] (\d+) appended, (\d+) replayed", stderr)
    assert match, f"no journal summary in stderr:\n{stderr}"
    return int(match.group(1)), int(match.group(2))


@pytest.fixture(scope="module")
def baseline():
    result = _run_cli("run", "figure2", "--scale", "small")
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestKill9Resume:
    def test_crash_resume_byte_parity(self, tmp_path, baseline):
        journal_dir = str(tmp_path / "journal")
        suite_dir = str(tmp_path / "suites")

        crashed = _run_cli(
            "run",
            "figure2",
            "--scale",
            "small",
            "--journal",
            journal_dir,
            "--suite-dir",
            suite_dir,
            crash_at=CRASH_AFTER,
        )
        # A real SIGKILL: no exit handler could dress this up.
        assert crashed.returncode in (-9, 137), crashed.stderr
        assert crashed.stdout == ""  # it died mid-sweep, pre-render

        resumed = _run_cli(
            "run",
            "figure2",
            "--scale",
            "small",
            "--journal",
            journal_dir,
            "--resume",
            "--suite-dir",
            suite_dir,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == baseline
        appended, replayed = _journal_counts(resumed.stderr)
        # Exactly the fsync'd prefix replays; only the rest re-executes.
        assert replayed == CRASH_AFTER
        assert appended > 0

    def test_second_resume_replays_everything(self, tmp_path, baseline):
        journal_dir = str(tmp_path / "journal")
        first = _run_cli(
            "run", "figure2", "--scale", "small", "--journal", journal_dir
        )
        assert first.returncode == 0, first.stderr
        total, _ = _journal_counts(first.stderr)

        second = _run_cli(
            "run",
            "figure2",
            "--scale",
            "small",
            "--journal",
            journal_dir,
            "--resume",
        )
        assert second.returncode == 0, second.stderr
        assert second.stdout == baseline
        appended, replayed = _journal_counts(second.stderr)
        assert appended == 0
        assert replayed == total

    def test_reusing_journal_without_resume_fails_fast(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        first = _run_cli(
            "run", "figure2", "--scale", "small", "--journal", journal_dir
        )
        assert first.returncode == 0, first.stderr
        second = _run_cli(
            "run", "figure2", "--scale", "small", "--journal", journal_dir
        )
        assert second.returncode == 2
        assert "--resume" in second.stderr
