"""``journal compact``: folding sealed segments into one, resume-safely.

Compaction must be invisible to replay: a compacted journal resumes to
the same records (later-wins per key), and the merged segment lands at an
index above every existing one *before* the originals are unlinked.
"""

from __future__ import annotations

import pytest

from repro.durability import RunJournal, compact_journal, journal_stats


def _fill(directory, count, segment_max_records=4, worker=None, prefix="key"):
    journal = RunJournal(
        directory, segment_max_records=segment_max_records, worker=worker
    )
    for index in range(count):
        journal.append(f"{prefix}-{index:03d}", "test", {"value": index})
    journal.seal()
    journal.close()
    return journal


class TestCompactJournal:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            compact_journal(tmp_path / "nope")

    def test_single_segment_left_alone(self, tmp_path):
        _fill(tmp_path, 3, segment_max_records=100)
        stats = compact_journal(tmp_path)
        assert stats["output"] is None
        assert stats["segments"] == 1
        assert stats["records"] == 3
        assert len(list(tmp_path.glob("segment-*.sealed.json"))) == 1

    def test_compacts_to_one_segment_with_same_replay(self, tmp_path):
        _fill(tmp_path, 10, segment_max_records=3)
        before = RunJournal(tmp_path)
        snapshot = {
            f"key-{index:03d}": before.get(f"key-{index:03d}")
            for index in range(10)
        }
        before.close()
        assert len(list(tmp_path.glob("segment-*.sealed.json"))) > 1

        stats = compact_journal(tmp_path)
        assert stats["records"] == 10
        assert stats["quarantined"] == 0
        sealed = list(tmp_path.glob("segment-*.sealed.json"))
        assert [path.name for path in sealed] == [stats["output"]]

        after = RunJournal(tmp_path)
        assert len(after) == 10
        for key, value in snapshot.items():
            assert after.get(key) == value
        after.close()

    def test_output_index_above_all_sources(self, tmp_path):
        _fill(tmp_path, 10, segment_max_records=2)
        indices = sorted(
            int(path.name.split("-")[1][:4])
            for path in tmp_path.glob("segment-*.sealed.json")
        )
        stats = compact_journal(tmp_path)
        output_index = int(stats["output"].split("-")[1][:4])
        assert output_index == indices[-1] + 1

    def test_merges_worker_segments(self, tmp_path):
        """Per-worker sealed segments (process-mode sweeps) fold in too."""
        _fill(tmp_path, 4, worker=101, prefix="w101")
        _fill(tmp_path, 4, worker=202, prefix="w202")
        stats = compact_journal(tmp_path)
        assert stats["segments"] == 2
        assert stats["records"] == 8
        assert not list(tmp_path.glob("segment-*.w*.sealed.json"))
        merged = RunJournal(tmp_path)
        assert len(merged) == 8
        merged.close()

    def test_active_segments_untouched(self, tmp_path):
        _fill(tmp_path, 6, segment_max_records=2)
        live = RunJournal(tmp_path, segment_max_records=100)
        live.append("live-key", "test", {"value": "live"})
        compact_journal(tmp_path)
        assert list(tmp_path.glob("segment-*.jsonl"))  # still there
        live.close()
        reloaded = RunJournal(tmp_path)
        assert reloaded.get("live-key")["value"] == {"value": "live"}
        assert len(reloaded) == 7
        reloaded.close()

    def test_later_segment_wins_ties(self, tmp_path):
        journal = RunJournal(tmp_path, segment_max_records=1)
        journal.append("shared", "test", {"value": "old"})
        journal.seal()
        journal.close()
        second = RunJournal(tmp_path, segment_max_records=1)
        # A fresh process re-journals the same key with a newer value.
        second._records.pop("shared", None)  # simulate non-replayed recompute
        second.append("shared", "test", {"value": "new"})
        second.seal()
        second.close()
        compact_journal(tmp_path)
        merged = RunJournal(tmp_path)
        assert merged.get("shared")["value"] == {"value": "new"}
        merged.close()


class TestJournalStats:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            journal_stats(tmp_path / "nope")

    def test_counts_sealed_active_and_records(self, tmp_path):
        _fill(tmp_path, 5, segment_max_records=2)  # 2 sealed + 1 sealed tail
        live = RunJournal(tmp_path, segment_max_records=100)
        live.append("live-key", "test", {"value": 1})
        stats = journal_stats(tmp_path)
        assert stats["records"] == 6
        assert stats["sealed_segments"] == 3
        assert stats["active_segments"] == 1
        live.close()

    def test_read_only(self, tmp_path):
        _fill(tmp_path, 4, segment_max_records=2)
        before = sorted(path.name for path in tmp_path.iterdir())
        journal_stats(tmp_path)
        assert sorted(path.name for path in tmp_path.iterdir()) == before
