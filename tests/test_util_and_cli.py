"""Determinism helpers, CLI, and example-script smoke tests."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.util import stable_choice, stable_fraction

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestStableFraction:
    def test_deterministic(self):
        assert stable_fraction("a", 1) == stable_fraction("a", 1)

    def test_distinct_inputs_differ(self):
        assert stable_fraction("a") != stable_fraction("b")

    def test_range(self):
        for i in range(200):
            value = stable_fraction("range", i)
            assert 0.0 <= value < 1.0

    def test_roughly_uniform(self):
        values = [stable_fraction("uniform", i) for i in range(2000)]
        mean = sum(values) / len(values)
        assert 0.45 <= mean <= 0.55
        below = sum(1 for v in values if v < 0.25)
        assert 400 <= below <= 600

    def test_stable_choice(self):
        options = ["x", "y", "z"]
        assert stable_choice(options, "k") == stable_choice(options, "k")
        assert stable_choice(options, "k") in options
        with pytest.raises(ValueError):
            stable_choice([], "k")

    def test_choice_covers_all_options(self):
        options = ["x", "y", "z"]
        seen = {stable_choice(options, i) for i in range(60)}
        assert seen == set(options)


class TestCli:
    def test_figure2_small(self, capsys):
        exit_code = cli_main(["figure2", "--scale", "small"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "SPIDER" in out

    def test_all_small(self, capsys):
        exit_code = cli_main(["all", "--scale", "small"])
        assert exit_code == 0
        out = capsys.readouterr().out
        for marker in ("Figure 2", "Table 2", "Figure 8", "Table 3"):
            assert marker in out

    def test_bad_artifact_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["figure99"])

    def test_explicit_run_subcommand(self, capsys):
        # `fisql-repro run ...` and the bare-artifact alias are the same.
        exit_code = cli_main(["run", "figure2", "--scale", "small"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "SPIDER" in out

    def test_trace_summary_subcommand(self, capsys, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        exit_code = cli_main(
            [
                "run",
                "figure2",
                "--scale",
                "small",
                "--trace",
                str(trace_path),
            ]
        )
        assert exit_code == 0
        assert trace_path.exists()
        capsys.readouterr()

        exit_code = cli_main(["trace-summary", str(trace_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Trace summary" in out
        assert "Flame rollup" in out
        assert "experiment.figure2" in out
        assert "correction.round" in out

    def test_trace_summary_missing_file_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["trace-summary", "/nonexistent/trace.jsonl"])


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "marketing_analytics.py",
        "build_up_queries.py",
        "assistant_chat.py",
        "serve_client.py",
    ],
)
def test_example_scripts_run(script):
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / script)],
        capture_output=True,
        text=True,
        timeout=180,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_spider_feedback_study_example_runs():
    result = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "examples" / "spider_feedback_study.py"),
            "--scale",
            "small",
        ],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stderr
    assert "Table 2" in result.stdout
    assert "Figure 8" in result.stdout


class TestCliDispatchFlags:
    """--workers/--batch-size/--cache-dir keep stdout byte-identical."""

    def _run(self, capsys, argv):
        assert cli_main(argv) == 0
        captured = capsys.readouterr()
        return captured.out, captured.err

    def test_workers_and_batching_match_sequential_stdout(self, capsys):
        baseline, _ = self._run(capsys, ["run", "figure2", "--scale", "small"])
        parallel, _ = self._run(
            capsys,
            [
                "run",
                "figure2",
                "--scale",
                "small",
                "--workers",
                "4",
                "--batch-size",
                "8",
            ],
        )
        assert parallel == baseline

    def test_cache_dir_cold_then_warm(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        baseline, _ = self._run(capsys, ["run", "figure2", "--scale", "small"])
        cold, cold_err = self._run(
            capsys,
            ["run", "figure2", "--scale", "small", "--cache-dir", cache_dir],
        )
        assert cold == baseline
        assert "[cache]" in cold_err
        assert (tmp_path / "cache" / "completions.json").exists()

        warm, warm_err = self._run(
            capsys,
            ["run", "figure2", "--scale", "small", "--cache-dir", cache_dir],
        )
        assert warm == baseline
        assert " 0 misses" in warm_err

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "figure2", "--workers", "0"])
        with pytest.raises(SystemExit):
            cli_main(["run", "figure2", "--batch-size", "0"])


class TestCliDurabilityFlags:
    """--journal/--resume/--suite-dir and the cache subcommand."""

    def _run(self, capsys, argv):
        assert cli_main(argv) == 0
        captured = capsys.readouterr()
        return captured.out, captured.err

    def test_journal_cold_then_resume_stdout_identical(
        self, capsys, tmp_path
    ):
        journal_dir = str(tmp_path / "journal")
        baseline, _ = self._run(capsys, ["run", "figure2", "--scale", "small"])
        cold, cold_err = self._run(
            capsys,
            ["run", "figure2", "--scale", "small", "--journal", journal_dir],
        )
        assert cold == baseline
        assert "[journal]" in cold_err
        assert "0 replayed" in cold_err

        warm, warm_err = self._run(
            capsys,
            [
                "run",
                "figure2",
                "--scale",
                "small",
                "--journal",
                journal_dir,
                "--resume",
            ],
        )
        assert warm == baseline
        assert "0 appended" in warm_err

    def test_nonempty_journal_without_resume_rejected(self, capsys, tmp_path):
        journal_dir = str(tmp_path / "journal")
        self._run(
            capsys,
            ["run", "figure2", "--scale", "small", "--journal", journal_dir],
        )
        with pytest.raises(SystemExit):
            cli_main(
                ["run", "figure2", "--scale", "small", "--journal", journal_dir]
            )

    def test_resume_without_journal_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "figure2", "--scale", "small", "--resume"])

    def test_cache_max_requires_cache_dir(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "figure2", "--scale", "small", "--cache-max", "5"])

    def test_suite_dir_warm_start_stdout_identical(self, capsys, tmp_path):
        suite_dir = str(tmp_path / "suites")
        baseline, _ = self._run(capsys, ["run", "figure2", "--scale", "small"])
        cold, _ = self._run(
            capsys,
            ["run", "figure2", "--scale", "small", "--suite-dir", suite_dir],
        )
        assert cold == baseline
        assert list((tmp_path / "suites").glob("suite-small-*.json"))
        warm, _ = self._run(
            capsys,
            ["run", "figure2", "--scale", "small", "--suite-dir", suite_dir],
        )
        assert warm == baseline

    def test_cache_subcommand_stats_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._run(
            capsys,
            ["run", "figure2", "--scale", "small", "--cache-dir", cache_dir],
        )
        stats_out, _ = self._run(capsys, ["cache", "stats", "--cache-dir", cache_dir])
        assert "entries: " in stats_out
        assert "entries: 0" not in stats_out

        clear_out, _ = self._run(capsys, ["cache", "clear", "--cache-dir", cache_dir])
        assert "cleared" in clear_out

        stats_out, _ = self._run(capsys, ["cache", "stats", "--cache-dir", cache_dir])
        assert "entries: 0" in stats_out

    def test_serve_overload_flag_validation(self):
        with pytest.raises(SystemExit):
            cli_main(["serve", "--max-inflight", "0"])
        with pytest.raises(SystemExit):
            cli_main(["serve", "--max-inflight-per-tenant", "0"])
        with pytest.raises(SystemExit):
            cli_main(["serve", "--request-deadline-ms", "0"])
        with pytest.raises(SystemExit):
            cli_main(["serve", "--batch-max-queue", "0"])


class TestCliSemcacheFlags:
    """--semantic-cache wiring: validation, stats, replay, clean stdout."""

    def _run(self, capsys, argv):
        assert cli_main(argv) == 0
        captured = capsys.readouterr()
        return captured.out, captured.err

    def test_flag_validation(self):
        with pytest.raises(SystemExit):
            cli_main(
                ["run", "figure2", "--semantic-cache-dir", "/tmp/x"]
            )
        with pytest.raises(SystemExit):
            cli_main(["run", "figure2", "--semantic-cache-max", "5"])
        with pytest.raises(SystemExit):
            cli_main(
                ["run", "figure2", "--semantic-cache",
                 "--semantic-cache-max", "0"]
            )
        with pytest.raises(SystemExit):
            cli_main(["serve", "--semantic-cache-dir", "/tmp/x"])
        with pytest.raises(SystemExit):
            cli_main(["cache", "stats"])

    def test_flag_off_stays_byte_identical(self, capsys, tmp_path):
        """The load-bearing guarantee: runs WITHOUT the flag are unchanged
        by a semantic-cached run in between; runs WITH the flag are
        deterministic against the same store (paraphrase collisions may
        legitimately change which answer is served — that is what
        ``semcache replay`` reports as divergences)."""
        semcache_dir = str(tmp_path / "semcache")
        baseline, baseline_err = self._run(
            capsys, ["run", "figure2", "--scale", "small"]
        )
        assert "[semcache]" not in baseline_err

        cached, cached_err = self._run(
            capsys,
            [
                "run", "figure2", "--scale", "small",
                "--semantic-cache", "--semantic-cache-dir", semcache_dir,
            ],
        )
        assert "[semcache]" in cached_err
        assert f"saved to {semcache_dir}" in cached_err
        assert (tmp_path / "semcache" / "semcache.json").exists()
        assert (tmp_path / "semcache" / "questions.jsonl").exists()

        warm, warm_err = self._run(
            capsys,
            [
                "run", "figure2", "--scale", "small",
                "--semantic-cache", "--semantic-cache-dir", semcache_dir,
            ],
        )
        assert warm == cached
        assert "[semcache]" in warm_err

        plain_again, plain_err = self._run(
            capsys, ["run", "figure2", "--scale", "small"]
        )
        assert plain_again == baseline
        assert "[semcache]" not in plain_err

    def test_cache_subcommand_covers_semantic_store(self, capsys, tmp_path):
        semcache_dir = str(tmp_path / "semcache")
        self._run(
            capsys,
            [
                "run", "figure2", "--scale", "small",
                "--semantic-cache", "--semantic-cache-dir", semcache_dir,
            ],
        )
        stats_out, _ = self._run(
            capsys, ["cache", "stats", "--semantic-cache-dir", semcache_dir]
        )
        assert "semcache" in stats_out
        assert "entries:       0" not in stats_out
        assert "bypasses:" in stats_out
        assert "fingerprints:" in stats_out

        clear_out, _ = self._run(
            capsys, ["cache", "clear", "--semantic-cache-dir", semcache_dir]
        )
        assert "cleared" in clear_out
        stats_out, _ = self._run(
            capsys, ["cache", "stats", "--semantic-cache-dir", semcache_dir]
        )
        assert "entries:       0" in stats_out

    def test_semcache_replay_subcommand(self, capsys, tmp_path):
        semcache_dir = str(tmp_path / "semcache")
        with pytest.raises(SystemExit):
            cli_main(
                ["semcache", "replay", "--semantic-cache-dir", semcache_dir]
            )
        self._run(
            capsys,
            [
                "run", "figure2", "--scale", "small",
                "--semantic-cache", "--semantic-cache-dir", semcache_dir,
            ],
        )
        out, _ = self._run(
            capsys,
            [
                "semcache", "replay", "--scale", "small",
                "--semantic-cache-dir", semcache_dir,
            ],
        )
        assert "semcache replay" in out
        assert "rounds:" in out
        assert "rounds:        0" not in out
        assert "divergences:" in out


class TestCliConcurrencyFlags:
    """--worker-mode/--transport wiring and the journal subcommand."""

    def _run(self, capsys, argv):
        assert cli_main(argv) == 0
        captured = capsys.readouterr()
        return captured.out, captured.err

    def test_process_mode_flag_validation(self):
        # Worker processes load their suites from disk.
        with pytest.raises(SystemExit):
            cli_main(
                ["run", "figure2", "--workers", "2",
                 "--worker-mode", "process"]
            )
        # In-memory stack state cannot cross a process boundary.
        for extra in (
            ["--backend", "sim=simulated"],
            ["--inject-faults", "0.5"],
            ["--llm-retries", "2"],
            ["--llm-timeout", "1.0"],
            ["--cache-dir", "/tmp/x"],
            ["--semantic-cache"],
        ):
            with pytest.raises(SystemExit):
                cli_main(
                    ["run", "figure2", "--workers", "2",
                     "--worker-mode", "process", "--suite-dir", "/tmp/s",
                     *extra]
                )

    def test_async_transport_flag_validation(self):
        with pytest.raises(SystemExit):
            cli_main(["serve", "--async-workers", "4"])
        with pytest.raises(SystemExit):
            cli_main(
                ["serve", "--transport", "async", "--async-workers", "0"]
            )

    def test_semcache_ttl_flag_validation(self):
        with pytest.raises(SystemExit):
            cli_main(
                ["run", "figure2", "--semantic-cache-ttl-s", "60"]
            )
        with pytest.raises(SystemExit):
            cli_main(
                ["run", "figure2", "--semantic-cache",
                 "--semantic-cache-ttl-s", "0"]
            )

    def test_process_mode_stdout_matches_sequential(self, capsys, tmp_path):
        suite_dir = str(tmp_path / "suites")
        sequential, _ = self._run(
            capsys,
            ["run", "figure2", "--scale", "small",
             "--suite-dir", suite_dir],
        )
        parallel, _ = self._run(
            capsys,
            ["run", "figure2", "--scale", "small", "--workers", "2",
             "--worker-mode", "process", "--suite-dir", suite_dir],
        )
        assert parallel == sequential

    def test_journal_subcommand_stats_and_compact(self, capsys, tmp_path):
        journal_dir = str(tmp_path / "journal")
        suite_dir = str(tmp_path / "suites")
        self._run(
            capsys,
            ["run", "figure2", "--scale", "small",
             "--journal", journal_dir, "--suite-dir", suite_dir],
        )
        out, _ = self._run(capsys, ["journal", "stats", "--journal", journal_dir])
        assert "records:" in out
        assert "sealed segments:" in out

        out, _ = self._run(
            capsys, ["journal", "compact", "--journal", journal_dir]
        )
        assert "compacted" in out or "nothing to compact" in out

        # Compaction is invisible to resume: same stdout, full replay.
        resumed, err = self._run(
            capsys,
            ["run", "figure2", "--scale", "small",
             "--journal", journal_dir, "--resume", "--suite-dir", suite_dir],
        )
        baseline, _ = self._run(
            capsys,
            ["run", "figure2", "--scale", "small", "--suite-dir", suite_dir],
        )
        assert resumed == baseline
        assert "0 appended" in err

    def test_journal_subcommand_missing_directory_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(
                ["journal", "stats", "--journal", str(tmp_path / "nope")]
            )
        with pytest.raises(SystemExit):
            cli_main(
                ["journal", "compact", "--journal", str(tmp_path / "nope")]
            )
