"""Nl2SqlModel wrapper behaviour: zero-shot vs RAG, prediction metadata."""

from repro.core.nl2sql import Nl2SqlModel
from repro.core.retrieval import DemonstrationRetriever
from repro.datasets.base import Demonstration
from repro.llm.simulated import SimulatedLLM


class TestZeroShot:
    def test_prediction_fields(self, aep_db):
        model = Nl2SqlModel(llm=SimulatedLLM())
        prediction = model.predict("How many segments are there?", aep_db)
        assert prediction.sql == "SELECT COUNT(*) FROM hkg_dim_segment"
        assert prediction.parse_ok
        assert prediction.demos_used == 0

    def test_default_llm_constructed(self, aep_db):
        model = Nl2SqlModel()
        assert model.predict("How many segments are there?", aep_db).parse_ok

    def test_notes_surface_assumptions(self, aep_db):
        model = Nl2SqlModel()
        prediction = model.predict(
            "How many segments were created in January?", aep_db
        )
        assert any("assumed year 2023" in note for note in prediction.notes)


class TestRag:
    def test_demos_counted(self, aep_db):
        demos = [
            Demonstration(
                question="How many audiences do we have?",
                sql="SELECT COUNT(*) FROM hkg_dim_segment",
                db_id="experience_platform",
                glossary={"audiences": "hkg_dim_segment"},
            )
        ]
        model = Nl2SqlModel(
            llm=SimulatedLLM(), retriever=DemonstrationRetriever(demos)
        )
        prediction = model.predict("How many audiences are there?", aep_db)
        assert prediction.demos_used == 1
        assert prediction.sql == "SELECT COUNT(*) FROM hkg_dim_segment"

    def test_rag_fixes_jargon_zero_shot_misses(self, aep_db, aep_suite):
        _traffic, demos = aep_suite
        zero_shot = Nl2SqlModel(llm=SimulatedLLM())
        rag = Nl2SqlModel(
            llm=SimulatedLLM(), retriever=DemonstrationRetriever(demos)
        )
        question = "List the names of all audiences."
        assert "hkg_dim_segment" not in zero_shot.predict(question, aep_db).sql
        assert rag.predict(question, aep_db).sql == (
            "SELECT segmentname FROM hkg_dim_segment"
        )

    def test_rag_cannot_fix_year_context(self, aep_db, aep_suite):
        """Instance context (which year 'January' means) is not learnable
        from demonstrations — the mechanism behind the error set."""
        _traffic, demos = aep_suite
        rag = Nl2SqlModel(
            llm=SimulatedLLM(), retriever=DemonstrationRetriever(demos)
        )
        prediction = rag.predict(
            "How many segments were created in January?", aep_db
        )
        assert "'2023-01-01'" in prediction.sql

    def test_spider_rag_teaches_conventions(self, small_suite):
        from repro.datasets.base import demonstrations_from_examples

        demos = demonstrations_from_examples(small_suite.train_examples)
        retriever = DemonstrationRetriever(demos, top_k=4)
        model = Nl2SqlModel(llm=SimulatedLLM(), retriever=retriever)
        # Find a convention-trapped dev example and check RAG fixes it.
        from repro.eval.metrics import execution_correct

        convention_kinds = {
            "count_distinct", "missing_distinct", "order_direction",
            "wrong_aggregate", "extra_description",
        }
        fixed = 0
        tried = 0
        for example in small_suite.dev_examples:
            if example.trap_kind not in convention_kinds:
                continue
            tried += 1
            db = small_suite.benchmark.database(example.db_id)
            prediction = model.predict(example.question, db)
            if execution_correct(db, example.gold_sql, prediction.sql):
                fixed += 1
        assert tried > 0
        assert fixed / tried > 0.5
