"""Feedback-editor tests: each rule, routing interplay, highlights."""

import pytest

from repro.core.editor import FeedbackEditor
from repro.core.feedback import ADD, EDIT, REMOVE, Feedback, Highlight
from repro.sql import ast
from repro.sql.parser import parse_query
from repro.sql.printer import print_query


@pytest.fixture()
def editor(aep_db):
    return FeedbackEditor(aep_db.schema)


@pytest.fixture()
def music_editor(music_db):
    return FeedbackEditor(music_db.schema)


def run(editor, feedback_text, previous_sql, question="", feedback_type=EDIT,
        highlight=None):
    previous = parse_query(previous_sql)
    feedback = Feedback(text=feedback_text, highlight=highlight)
    operation = editor.interpret(
        feedback, previous, question, feedback_type=feedback_type
    )
    if operation is None:
        return None
    revised = editor.apply(operation, previous)
    return print_query(revised) if revised is not None else None


class TestYearRule:
    SQL = (
        "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
        "'2023-01-01' AND createdtime < '2023-02-01'"
    )

    def test_we_are_in_2024(self, editor):
        out = run(editor, "we are in 2024", self.SQL)
        assert "'2024-01-01'" in out and "'2024-02-01'" in out

    def test_terse_year_change(self, editor):
        out = run(editor, "change to 2024", self.SQL)
        assert "'2024-01-01'" in out

    def test_same_year_is_noop(self, editor):
        out = run(editor, "we are in 2023", self.SQL)
        assert out is None

    def test_no_year_in_feedback(self, editor):
        assert run(editor, "that looks odd", self.SQL) is None


class TestColumnRules:
    def test_instead_of_column(self, music_editor):
        out = run(
            music_editor,
            "provide the song name instead of the name",
            "SELECT Name FROM singer WHERE Name = 'X'",
        )
        assert out.startswith("SELECT Song_Name")

    def test_remove_select_column(self, editor):
        out = run(
            editor,
            "do not give descriptions",
            "SELECT segmentname, description FROM hkg_dim_segment",
            feedback_type=REMOVE,
        )
        assert out == "SELECT segmentname FROM hkg_dim_segment"

    def test_also_show_column(self, editor):
        out = run(
            editor,
            "also show the profile count",
            "SELECT segmentname FROM hkg_dim_segment",
            feedback_type=ADD,
        )
        assert out == "SELECT segmentname, profilecount FROM hkg_dim_segment"


class TestFilterRules:
    def test_only_include_with_status(self, editor):
        out = run(
            editor,
            "only include the ones whose status is 'active'",
            "SELECT datasetname FROM hkg_dim_dataset",
            feedback_type=ADD,
        )
        assert out == (
            "SELECT datasetname FROM hkg_dim_dataset WHERE status = 'active'"
        )

    def test_means_status_phrase(self, editor):
        out = run(
            editor,
            "live means the status is 'active'",
            "SELECT COUNT(*) FROM hkg_dim_journey",
        )
        assert out == (
            "SELECT COUNT(*) FROM hkg_dim_journey WHERE status = 'active'"
        )

    def test_existing_condition_replaced(self, editor):
        out = run(
            editor,
            "only include datasets whose status is 'active'",
            "SELECT datasetname FROM hkg_dim_dataset WHERE status = 'draft'",
        )
        assert "'active'" in out and "'draft'" not in out

    def test_remove_filter(self, editor):
        out = run(
            editor,
            "remove the condition on status",
            "SELECT datasetname FROM hkg_dim_dataset WHERE status = 'draft'",
            feedback_type=REMOVE,
        )
        assert out == "SELECT datasetname FROM hkg_dim_dataset"


class TestAggregateRules:
    def test_count_distinct(self, music_editor):
        out = run(
            music_editor,
            "count each country only once, not every row",
            "SELECT COUNT(Country) FROM singer",
        )
        assert out == "SELECT COUNT(DISTINCT Country) FROM singer"

    def test_sum_instead_of_count(self, music_editor):
        out = run(
            music_editor,
            "sum the sales instead of counting rows",
            "SELECT COUNT(Sales) FROM song",
        )
        assert out == "SELECT SUM(Sales) FROM song"

    def test_distinct_rows(self, music_editor):
        out = run(
            music_editor,
            "remove duplicates from the results",
            "SELECT Country FROM singer",
            feedback_type=ADD,
        )
        assert out == "SELECT DISTINCT Country FROM singer"


class TestOrderAndLimit:
    def test_order_names_ascending(self, editor):
        out = run(
            editor,
            "order the names in ascending order.",
            "SELECT segmentname FROM hkg_dim_segment",
            feedback_type=ADD,
        )
        assert out == (
            "SELECT segmentname FROM hkg_dim_segment ORDER BY segmentname ASC"
        )

    def test_flip_direction(self, music_editor):
        out = run(
            music_editor,
            "sort in descending order, please",
            "SELECT Name FROM singer ORDER BY Age ASC LIMIT 3",
        )
        assert "ORDER BY Age DESC" in out

    def test_limit(self, music_editor):
        out = run(
            music_editor,
            "limit it to 5",
            "SELECT Name FROM singer",
            feedback_type=ADD,
        )
        assert out.endswith("LIMIT 5")

    def test_remove_limit(self, music_editor):
        out = run(
            music_editor,
            "remove the limit, show all of them",
            "SELECT Name FROM singer LIMIT 5",
            feedback_type=REMOVE,
        )
        assert "LIMIT" not in out


class TestTableRules:
    def test_audiences_mean_segments(self, editor):
        out = run(
            editor,
            "by audiences I mean the segment table",
            "SELECT COUNT(*) FROM hkg_dim_dataset",
        )
        assert out == "SELECT COUNT(*) FROM hkg_dim_segment"

    def test_retarget_remaps_prefixed_columns(self, editor):
        out = run(
            editor,
            "use the segment table",
            "SELECT datasetname FROM hkg_dim_dataset",
        )
        assert out == "SELECT segmentname FROM hkg_dim_segment"

    def test_fact_join_rebuild(self, editor):
        out = run(
            editor,
            "they are linked through the activation table, look at the "
            "entries there",
            "SELECT destinationname FROM hkg_dim_destination",
            question="Which destinations is the 'ABC' segment activated to?",
            feedback_type=ADD,
        )
        assert "hkg_fact_activation" in out
        assert "JOIN" in out
        assert "'ABC'" in out


class TestRoutingInterplay:
    def test_wrong_route_falls_back_to_all_candidates(self, editor):
        """Router says EDIT but the only candidate is ADD — still applied."""
        out = run(
            editor,
            "live means the status is 'active'",
            "SELECT COUNT(*) FROM hkg_dim_journey",
            feedback_type=EDIT,
        )
        assert out is not None

    def test_unrouted_sometimes_misses(self, editor, aep_db):
        """Without routing a calibrated fraction of rounds is uninterpreted."""
        previous = parse_query(
            "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
            "'2023-01-01' AND createdtime < '2023-02-01'"
        )
        outcomes = []
        for i in range(120):
            operation = editor.interpret(
                Feedback(text="we are in 2024"),
                previous,
                "q",
                feedback_type=None,
                context_key=f"ex-{i}",
            )
            outcomes.append(operation is not None)
        miss_rate = 1 - sum(outcomes) / len(outcomes)
        assert 0.0 < miss_rate < 0.35

    def test_unrouted_miss_is_deterministic(self, editor):
        previous = parse_query("SELECT COUNT(*) FROM hkg_dim_segment")
        results = [
            editor.interpret(
                Feedback(text="we are in 2024"),
                previous,
                "q",
                feedback_type=None,
                context_key="fixed",
            )
            for _ in range(3)
        ]
        assert len({r is None for r in results}) == 1


class TestHighlights:
    def test_highlight_grounds_status_change(self, editor):
        """Terse 'change to X' with no literal needs the highlight."""
        sql = "SELECT datasetname FROM hkg_dim_dataset"
        without = run(editor, "change to 'active'", sql)
        assert without is None
        highlighted = run(
            editor,
            "change to 'active'",
            sql,
            highlight=Highlight(text="FROM hkg_dim_dataset", start=19, end=39),
        )
        assert highlighted == (
            "SELECT datasetname FROM hkg_dim_dataset WHERE status = 'active'"
        )

    def test_highlight_narrows_year_choice(self, editor):
        sql = (
            "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
            "'2022-01-01' AND createdtime < '2023-02-01'"
        )
        out = run(
            editor,
            "change to 2024",
            sql,
            highlight=Highlight(text="createdtime < '2023-02-01'", start=0, end=0),
        )
        assert "'2024-02-01'" in out


class TestMisalignedFeedback:
    def test_uninterpretable_feedback_returns_none(self, editor):
        assert run(editor, "this is not what I asked for", "SELECT 1") is None
        assert run(
            editor, "the result seems off, can you double check", "SELECT 1"
        ) is None
