"""Dynamic feedback-demonstration selection (§5 future work) tests."""

import pytest

from repro.core.dynamic_demos import (
    DynamicFeedbackDemoStore,
    FeedbackDemonstration,
    default_pool,
    query_structure,
)
from repro.core.feedback import ADD, EDIT, REMOVE
from repro.sql.parser import parse_query


class TestQueryStructure:
    def test_tags_detected(self):
        query = parse_query(
            "SELECT a, COUNT(*) FROM t JOIN u ON t.x = u.x WHERE b = 1 "
            "GROUP BY a ORDER BY a LIMIT 3"
        )
        tags = query_structure(query)
        assert tags == frozenset(
            {"where", "group", "order", "limit", "aggregate", "join"}
        )

    def test_plain_select_empty(self):
        assert query_structure(parse_query("SELECT a FROM t")) == frozenset()

    def test_distinct_tag(self):
        assert "distinct" in query_structure(
            parse_query("SELECT DISTINCT a FROM t")
        )


class TestDefaultPool:
    def test_covers_all_types(self):
        pool = default_pool()
        types = {demo.feedback_type for demo in pool}
        assert types == {ADD, REMOVE, EDIT}

    def test_structures_computed(self):
        pool = default_pool()
        assert any(demo.structure for demo in pool)

    def test_render_is_figure5_block(self):
        block = default_pool()[0].render()
        assert "received the following feedback" in block


class TestSelection:
    def test_year_feedback_retrieves_year_demo(self):
        store = DynamicFeedbackDemoStore(top_k=1)
        (block,) = store.select(
            "we are in 2024",
            previous_sql=(
                "SELECT COUNT(*) FROM t WHERE d >= '2023-01-01' AND "
                "d < '2023-02-01'"
            ),
        )
        assert "2024" in block

    def test_description_feedback_retrieves_remove_demo(self):
        store = DynamicFeedbackDemoStore(top_k=1)
        (block,) = store.select(
            "do not give descriptions",
            previous_sql="SELECT name, description FROM t",
        )
        assert "do not give descriptions" in block

    def test_structure_breaks_text_ties(self):
        ordered = FeedbackDemonstration(
            question="q1",
            sql_before="SELECT name FROM t ORDER BY price ASC LIMIT 5",
            feedback="flip it",
            sql_after="SELECT name FROM t ORDER BY price DESC LIMIT 5",
            feedback_type=EDIT,
        )
        plain = FeedbackDemonstration(
            question="q2",
            sql_before="SELECT name FROM t",
            feedback="flip it",
            sql_after="SELECT name FROM t",
            feedback_type=EDIT,
        )
        store = DynamicFeedbackDemoStore(pool=[plain, ordered], top_k=1)
        (block,) = store.select(
            "flip it", previous_sql="SELECT a FROM u ORDER BY b ASC LIMIT 2"
        )
        assert "DESC" in block

    def test_type_prior_boost(self):
        store = DynamicFeedbackDemoStore(top_k=3)
        blocks = store.select(
            "take that column out",
            previous_sql="SELECT name, description FROM t WHERE x = 1",
            feedback_type=REMOVE,
            top_k=1,
        )
        assert "do not give descriptions" in blocks[0]

    def test_empty_pool(self):
        store = DynamicFeedbackDemoStore(pool=[])
        assert store.select("anything") == []
        assert len(store) == 0

    def test_static_interface_compatibility(self):
        store = DynamicFeedbackDemoStore()
        assert store.for_type(EDIT)
        generic = store.generic()
        assert len(generic) == 3

    def test_unparseable_sql_tolerated(self):
        store = DynamicFeedbackDemoStore(top_k=2)
        blocks = store.select("we are in 2024", previous_sql="not sql")
        assert len(blocks) == 2


class TestPipelineIntegration:
    def test_dynamic_store_in_pipeline(self, aep_db):
        """FisqlPipeline accepts the dynamic store as a drop-in."""
        from repro.core import FisqlPipeline, Nl2SqlModel, SimulatedAnnotator
        from repro.core.user import AnnotatorConfig
        from repro.datasets.base import Example
        from repro.llm import SimulatedLLM

        llm = SimulatedLLM()
        pipeline = FisqlPipeline(
            model=Nl2SqlModel(llm=llm),
            llm=llm,
            routing=True,
            demo_store=DynamicFeedbackDemoStore(),
        )
        annotator = SimulatedAnnotator(
            aep_db.schema, AnnotatorConfig(vague_rate=0, misaligned_rate=0)
        )
        example = Example(
            example_id="dyn-1",
            db_id="experience_platform",
            question="How many segments were created in January?",
            gold_sql=(
                "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
                "'2024-01-01' AND createdtime < '2024-02-01'"
            ),
        )
        outcome = pipeline.correct(
            example=example,
            database=aep_db,
            initial_sql=(
                "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
                "'2023-01-01' AND createdtime < '2023-02-01'"
            ),
            annotator=annotator,
            max_rounds=1,
        )
        assert outcome.corrected
