"""Routing classifier and feedback-demonstration store tests."""

import pytest

from repro.core.feedback import (
    ADD,
    EDIT,
    FEEDBACK_TYPE_EXAMPLES,
    FEEDBACK_TYPES,
    REMOVE,
    FeedbackDemoStore,
)
from repro.core.routing import FeedbackRouter, classify_feedback
from repro.llm.simulated import SimulatedLLM


class TestClassifier:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("order the names in ascending order.", ADD),
            ("do not give descriptions", REMOVE),
            ("we are in 2024", EDIT),
            ("provide song name instead of singer name", EDIT),
            ("only include the active ones", ADD),
            ("remove the condition on status", REMOVE),
            ("remove duplicates from the results", ADD),
            ("count each country only once", ADD),
            ("sum the sales instead of counting", EDIT),
            ("drop the price column", REMOVE),
            ("sort in descending order", EDIT),
            ("limit it to 10", ADD),
            ("audiences means segments", EDIT),
        ],
    )
    def test_classification(self, text, expected):
        assert classify_feedback(text) == expected

    def test_table1_examples_classified_correctly(self):
        """The paper's Table 1 exemplars route to their own types."""
        for label, text in FEEDBACK_TYPE_EXAMPLES.items():
            assert classify_feedback(text) == label

    def test_default_is_edit(self):
        assert classify_feedback("hmm") == EDIT


class _FixedLabelLLM:
    """A stub model that answers every routing prompt with a fixed label."""

    def __init__(self, label):
        self._label = label

    def complete(self, prompt):
        from repro.llm.interface import Completion

        return Completion(text=self._label)


class TestRouter:
    def test_router_uses_llm(self):
        router = FeedbackRouter(SimulatedLLM())
        assert router.route("we are in 2024") == EDIT
        assert router.route("do not give descriptions") == REMOVE
        assert router.route("order the names in ascending order.") == ADD

    @pytest.mark.parametrize(
        "text",
        [
            "hmm",
            "that's odd",
            "???",
            "",
            "the result looks wrong somehow but I can't say why",
        ],
    )
    def test_unroutable_feedback_falls_back_to_edit(self, text):
        """Ambiguous/contentless feedback takes the catch-all Edit route."""
        assert FeedbackRouter(SimulatedLLM()).route(text) == EDIT

    @pytest.mark.parametrize(
        "label", ["Addendum", "yes", "", "add remove edit", "ADD!"]
    )
    def test_unknown_model_label_falls_back_to_edit(self, label):
        """A label outside add/remove/edit must not leak downstream."""
        assert FeedbackRouter(_FixedLabelLLM(label)).route("whatever") == EDIT

    @pytest.mark.parametrize(
        "label,expected",
        [("Add", ADD), ("  REMOVE \n", REMOVE), ("edit", EDIT)],
    )
    def test_label_normalization(self, label, expected):
        """Case/whitespace variants of valid labels still route."""
        assert FeedbackRouter(_FixedLabelLLM(label)).route("x") == expected


class TestDemoStore:
    def test_default_store_covers_all_types(self):
        store = FeedbackDemoStore.default()
        for feedback_type in FEEDBACK_TYPES:
            assert store.for_type(feedback_type), feedback_type

    def test_typed_demos_are_figure5_blocks(self):
        store = FeedbackDemoStore.default()
        block = store.for_type(EDIT)[0]
        assert "received the following feedback" in block
        assert "please rewrite the SQL query" in block

    def test_generic_is_one_per_type(self):
        store = FeedbackDemoStore.default()
        generic = store.generic()
        assert len(generic) == len(
            [t for t in FEEDBACK_TYPES if store.for_type(t)]
        )

    def test_typed_has_more_coverage_than_generic_for_edit(self):
        store = FeedbackDemoStore.default()
        assert len(store.for_type(EDIT)) >= 2

    def test_unknown_type_is_empty(self):
        assert FeedbackDemoStore.default().for_type("nope") == []
