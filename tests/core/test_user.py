"""Simulated-annotator tests: protocol compliance, verbalization, noise."""

import pytest

from repro.core.user import AnnotatorConfig, SimulatedAnnotator
from repro.sql.parser import parse_query


@pytest.fixture()
def annotator(aep_db):
    return SimulatedAnnotator(
        aep_db.schema,
        AnnotatorConfig(vague_rate=0.0, misaligned_rate=0.0),
    )


def feedback_for(annotator, gold_sql, pred_sql, question="q", example_id="e1",
                 use_highlights=False, round_index=1):
    return annotator.give_feedback(
        example_id=example_id,
        question=question,
        gold=parse_query(gold_sql),
        predicted=parse_query(pred_sql),
        round_index=round_index,
        use_highlights=use_highlights,
    )


class TestVerbalization:
    def test_year_feedback(self, annotator):
        fb = feedback_for(
            annotator,
            "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
            "'2024-01-01' AND createdtime < '2024-02-01'",
            "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
            "'2023-01-01' AND createdtime < '2023-02-01'",
        )
        assert fb.text == "we are in 2024"

    def test_remove_description_feedback(self, annotator):
        fb = feedback_for(
            annotator,
            "SELECT segmentname FROM hkg_dim_segment",
            "SELECT segmentname, description FROM hkg_dim_segment",
        )
        assert fb.text == "do not give descriptions"

    def test_column_edit_feedback(self, music_db):
        annotator = SimulatedAnnotator(
            music_db.schema, AnnotatorConfig(vague_rate=0, misaligned_rate=0)
        )
        fb = feedback_for(
            annotator,
            "SELECT Song_Name FROM singer WHERE Name = 'X'",
            "SELECT Name FROM singer WHERE Name = 'X'",
        )
        assert "song name" in fb.text
        assert "instead of" in fb.text

    def test_missing_filter_feedback(self, annotator):
        fb = feedback_for(
            annotator,
            "SELECT datasetname FROM hkg_dim_dataset WHERE status = 'active'",
            "SELECT datasetname FROM hkg_dim_dataset",
        )
        assert "'active'" in fb.text
        assert "status" in fb.text

    def test_fact_join_feedback(self, annotator):
        fb = feedback_for(
            annotator,
            "SELECT T2.destinationname FROM hkg_fact_activation AS T1 "
            "JOIN hkg_dim_destination AS T2 ON T1.destinationid = "
            "T2.destinationid JOIN hkg_dim_segment AS T3 "
            "ON T1.segmentid = T3.segmentid WHERE T3.segmentname = 'ABC'",
            "SELECT destinationname FROM hkg_dim_destination",
        )
        assert "activation" in fb.text

    def test_count_distinct_feedback(self, music_db):
        annotator = SimulatedAnnotator(
            music_db.schema, AnnotatorConfig(vague_rate=0, misaligned_rate=0)
        )
        fb = feedback_for(
            annotator,
            "SELECT COUNT(DISTINCT Country) FROM singer",
            "SELECT COUNT(Country) FROM singer",
        )
        assert "only once" in fb.text

    def test_order_add_feedback(self, annotator):
        fb = feedback_for(
            annotator,
            "SELECT segmentname FROM hkg_dim_segment ORDER BY segmentname ASC",
            "SELECT segmentname FROM hkg_dim_segment",
        )
        assert "ascending" in fb.text

    def test_satisfied_user_gives_none(self, annotator):
        fb = feedback_for(
            annotator,
            "SELECT COUNT(*) FROM hkg_dim_segment",
            "SELECT COUNT(*) FROM hkg_dim_segment",
        )
        assert fb is None

    def test_one_error_per_round(self, annotator):
        """Multi-error prediction: feedback addresses one delta only."""
        fb = feedback_for(
            annotator,
            "SELECT segmentname FROM hkg_dim_segment WHERE createdtime >= "
            "'2024-01-01' AND createdtime < '2024-02-01'",
            "SELECT segmentname, description FROM hkg_dim_segment WHERE "
            "createdtime >= '2023-01-01' AND createdtime < '2023-02-01'",
        )
        # select-kind delta outranks where-kind.
        assert fb.text == "do not give descriptions"


class TestAnnotatability:
    def test_correct_prediction_not_annotatable(self, annotator):
        assert not annotator.can_annotate(
            "e",
            parse_query("SELECT 1"),
            parse_query("SELECT 1"),
        )

    def test_too_many_errors_not_annotatable(self, annotator):
        gold = parse_query(
            "SELECT a, b FROM t WHERE c = 1 AND d = 2 ORDER BY a LIMIT 3"
        )
        pred = parse_query("SELECT x FROM u")
        assert not annotator.can_annotate("e", gold, pred)

    def test_annotate_rate_filters_deterministically(self, aep_db):
        config = AnnotatorConfig(annotate_rate=0.5)
        annotator = SimulatedAnnotator(aep_db.schema, config)
        gold = parse_query("SELECT segmentname FROM hkg_dim_segment")
        pred = parse_query("SELECT description FROM hkg_dim_segment")
        kept = [
            annotator.can_annotate(f"e{i}", gold, pred) for i in range(100)
        ]
        assert 25 <= sum(kept) <= 75
        assert kept == [
            annotator.can_annotate(f"e{i}", gold, pred) for i in range(100)
        ]


class TestNoise:
    def test_misaligned_rate(self, aep_db):
        config = AnnotatorConfig(vague_rate=0.0, misaligned_rate=1.0)
        annotator = SimulatedAnnotator(aep_db.schema, config)
        fb = feedback_for(
            annotator,
            "SELECT segmentname FROM hkg_dim_segment",
            "SELECT segmentname, description FROM hkg_dim_segment",
        )
        assert fb.intent_kind == "misaligned"

    def test_misaligned_is_sticky_across_rounds(self, aep_db):
        config = AnnotatorConfig(vague_rate=0.0, misaligned_rate=0.5)
        annotator = SimulatedAnnotator(aep_db.schema, config)
        gold = "SELECT segmentname FROM hkg_dim_segment"
        pred = "SELECT segmentname, description FROM hkg_dim_segment"
        for example_id in [f"e{i}" for i in range(30)]:
            r1 = feedback_for(
                annotator, gold, pred, example_id=example_id, round_index=1
            )
            r2 = feedback_for(
                annotator, gold, pred, example_id=example_id, round_index=2
            )
            assert (r1.intent_kind == "misaligned") == (
                r2.intent_kind == "misaligned"
            )

    def test_vague_year_feedback(self, aep_db):
        config = AnnotatorConfig(vague_rate=1.0, misaligned_rate=0.0)
        annotator = SimulatedAnnotator(aep_db.schema, config)
        fb = feedback_for(
            annotator,
            "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
            "'2024-01-01' AND createdtime < '2024-02-01'",
            "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
            "'2023-01-01' AND createdtime < '2023-02-01'",
        )
        assert fb.text == "change to 2024"

    def test_vague_filter_feedback(self, aep_db):
        config = AnnotatorConfig(vague_rate=1.0, misaligned_rate=0.0)
        annotator = SimulatedAnnotator(aep_db.schema, config)
        fb = feedback_for(
            annotator,
            "SELECT datasetname FROM hkg_dim_dataset WHERE status = 'active'",
            "SELECT datasetname FROM hkg_dim_dataset",
        )
        assert fb.text == "change to 'active'"


class TestHighlights:
    def test_highlight_attached_when_enabled(self, annotator):
        fb = feedback_for(
            annotator,
            "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
            "'2024-01-01' AND createdtime < '2024-02-01'",
            "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
            "'2023-01-01' AND createdtime < '2023-02-01'",
            use_highlights=True,
        )
        assert fb.highlight is not None
        assert "2023" in fb.highlight.text

    def test_highlight_for_missing_filter_marks_from_clause(self, annotator):
        fb = feedback_for(
            annotator,
            "SELECT datasetname FROM hkg_dim_dataset WHERE status = 'active'",
            "SELECT datasetname FROM hkg_dim_dataset",
            use_highlights=True,
        )
        assert fb.highlight is not None
        assert "FROM hkg_dim_dataset" in fb.highlight.text

    def test_no_highlight_when_disabled(self, annotator):
        fb = feedback_for(
            annotator,
            "SELECT datasetname FROM hkg_dim_dataset WHERE status = 'active'",
            "SELECT datasetname FROM hkg_dim_dataset",
            use_highlights=False,
        )
        assert fb.highlight is None
