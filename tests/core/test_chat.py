"""ChatSession conversation-state tests."""

import pytest

from repro.core.chat import ChatSession
from repro.core.nl2sql import Nl2SqlModel
from repro.core.retrieval import DemonstrationRetriever
from repro.errors import ReproError
from repro.llm.simulated import SimulatedLLM


@pytest.fixture()
def session(aep_db, aep_suite):
    _traffic, demos = aep_suite
    model = Nl2SqlModel(
        llm=SimulatedLLM(), retriever=DemonstrationRetriever(demos)
    )
    return ChatSession(aep_db, model)


class TestAsk:
    def test_ask_returns_response(self, session):
        response = session.ask("How many segments are there?")
        assert response.result.scalar() == 20
        assert session.current_sql == "SELECT COUNT(*) FROM hkg_dim_segment"

    def test_turns_recorded(self, session):
        session.ask("How many segments are there?")
        assert [t.role for t in session.turns] == ["user", "assistant"]

    def test_new_question_resets_context(self, session):
        session.ask("How many segments are there?")
        session.ask("How many destinations are there?")
        assert "destination" in session.current_sql


class TestFeedback:
    def test_feedback_before_question_raises(self, session):
        with pytest.raises(ReproError):
            session.give_feedback("we are in 2024")

    def test_year_correction_flow(self, session):
        session.ask("How many audiences were created in January?")
        assert "'2023-01-01'" in session.current_sql
        response = session.give_feedback("we are in 2024")
        assert "'2024-01-01'" in session.current_sql
        assert response.result is not None

    def test_multiple_feedback_rounds_accumulate(self, session):
        session.ask("List the audiences created in January.")
        assert "description" in session.current_sql
        # The editor's calibrated demonstration-coverage miss may eat one
        # round (it is deterministic per turn); a real user just repeats.
        for _attempt in range(3):
            session.give_feedback("do not give descriptions")
            if "description" not in session.current_sql:
                break
        assert "description" not in session.current_sql
        session.give_feedback("we are in 2024")
        assert "'2024-01-01'" in session.current_sql
        assert "description" not in session.current_sql

    def test_highlight_passthrough(self, session):
        session.ask("List the names of the datasets that are ready to use.")
        before = session.current_sql
        session.give_feedback(
            "change to 'active'", highlight="FROM hkg_dim_dataset"
        )
        assert session.current_sql != before
        assert "status = 'active'" in session.current_sql

    def test_uninterpretable_feedback_keeps_sql(self, session):
        session.ask("How many segments are there?")
        before = session.current_sql
        session.give_feedback("hmm, not sure about this")
        assert session.current_sql == before


class TestTranscript:
    def test_transcript_contains_all_turns(self, session):
        session.ask("How many audiences were created in January?")
        session.give_feedback("we are in 2024")
        transcript = session.transcript()
        assert transcript.count("User:") == 2
        assert transcript.count("Assistant:") == 2
        assert "we are in 2024" in transcript

    def test_highlight_shown_in_transcript(self, session):
        session.ask("List the names of the datasets that are ready to use.")
        session.give_feedback(
            "change to 'active'", highlight="FROM hkg_dim_dataset"
        )
        assert "[highlighted: FROM hkg_dim_dataset]" in session.transcript()
