"""Assistant response bundle and NL explanation tests."""

import pytest

from repro.core.assistant import Assistant, AssistantResponse
from repro.core.explain import explain_query, explanation_text
from repro.core.nl2sql import Nl2SqlModel
from repro.sql.parser import parse_query


@pytest.fixture()
def assistant():
    return Assistant(Nl2SqlModel())


class TestExplain:
    def test_count_with_filter_mirrors_figure4(self):
        query = parse_query(
            "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
            "'2023-01-01' AND createdtime < '2023-02-01'"
        )
        steps = explain_query(query)
        assert "First, consider all the rows" in steps[0]
        assert any("2023-01-01" in s for s in steps)
        assert any("count the number of rows" in s for s in steps)

    def test_order_and_limit_explained(self):
        query = parse_query("SELECT name FROM t ORDER BY age DESC LIMIT 1")
        steps = explain_query(query)
        assert any("descending" in s for s in steps)
        assert "Finally, return only the first result." in steps

    def test_group_by_explained(self):
        steps = explain_query(
            parse_query("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2")
        )
        assert any("Group the remaining rows by a" in s for s in steps)
        assert any("Keep only groups" in s for s in steps)

    def test_join_explained(self):
        steps = explain_query(
            parse_query("SELECT T1.a FROM t AS T1 JOIN u AS T2 ON T1.x = T2.x")
        )
        assert "joined with" in steps[0]

    def test_between_and_subquery_phrases(self):
        steps = explain_query(
            parse_query(
                "SELECT a FROM t WHERE b BETWEEN 1 AND 5 AND "
                "c > (SELECT AVG(c) FROM t)"
            )
        )
        joined = " ".join(steps)
        assert "between" in joined
        assert "computed sub-result" in joined

    def test_distinct_noted(self):
        steps = explain_query(parse_query("SELECT DISTINCT a FROM t"))
        assert any("distinct" in s for s in steps)

    def test_explanation_text_is_bulleted(self):
        text = explanation_text(parse_query("SELECT a FROM t"))
        assert all(line.startswith("- ") for line in text.splitlines())

    def test_set_operation_explained(self):
        steps = explain_query(
            parse_query("SELECT a FROM t UNION SELECT a FROM u")
        )
        assert any("combine" in s for s in steps)


class TestAssistant:
    def test_response_has_four_parts(self, assistant, aep_db):
        response = assistant.answer("How many segments are there?", aep_db)
        assert response.sql  # (d) Show Source
        assert response.reformulation  # (b)
        assert response.explanation  # (c)
        assert response.result is not None  # (a)
        assert response.result.scalar() == 20

    def test_render_mirrors_chat_bubble(self, assistant, aep_db):
        response = assistant.answer("How many segments are there?", aep_db)
        text = response.render()
        assert "Based on your question" in text
        assert "Here is how we got the results" in text

    def test_empty_result_message(self, assistant, aep_db):
        response = assistant.answer(
            "How many segments were created in January?", aep_db
        )
        # Whether empty or not, the result panel must render.
        assert isinstance(response.result_text(), str)

    def test_reformulation_for_count(self, assistant, aep_db):
        response = assistant.answer("How many segments are there?", aep_db)
        assert response.reformulation.startswith("Finds the count")

    def test_reformulation_for_listing(self, assistant, aep_db):
        response = assistant.answer("List the names of all segments.", aep_db)
        assert response.reformulation.startswith("Lists")

    def test_wrong_table_query_still_answers(self, assistant, aep_db):
        """Jargon question: the Assistant answers (incorrectly), not errors."""
        response = assistant.answer("How many audiences are there?", aep_db)
        assert response.error is None
        assert response.result is not None
