"""RAG demonstration retriever tests."""

from repro.core.retrieval import DemonstrationRetriever
from repro.datasets.base import Demonstration


def demo(question, db_id="db1", glossary=None):
    return Demonstration(
        question=question, sql="SELECT 1", db_id=db_id, glossary=glossary or {}
    )


POOL = [
    demo("How many singers are there?"),
    demo("List the names of all songs."),
    demo("What is the average age of the singers?"),
    demo("How many live destinations are there?", db_id="aep"),
    demo("How many stadiums are in the city?"),
    demo("List the names of the first 5 cars by price."),
]


class TestRetrieval:
    def test_top_k_size(self):
        retriever = DemonstrationRetriever(POOL, top_k=3)
        assert len(retriever.retrieve("how many singers exist")) == 3

    def test_most_similar_first(self):
        retriever = DemonstrationRetriever(POOL, top_k=2)
        results = retriever.retrieve("How many singers are there?")
        assert results[0].question == "How many singers are there?"

    def test_db_preference(self):
        retriever = DemonstrationRetriever(POOL, top_k=2)
        results = retriever.retrieve("How many destinations are there?", db_id="aep")
        assert results[0].db_id == "aep"

    def test_empty_pool(self):
        retriever = DemonstrationRetriever([], top_k=3)
        assert retriever.retrieve("anything") == []
        assert len(retriever) == 0

    def test_top_k_override(self):
        retriever = DemonstrationRetriever(POOL, top_k=2)
        assert len(retriever.retrieve("singers", top_k=5)) == 5

    def test_phrasing_convention_demo_retrieved(self):
        """Trapped phrasings share distinctive tokens with their demos —
        the mechanism behind RAG fixing convention traps."""
        retriever = DemonstrationRetriever(POOL, top_k=2)
        results = retriever.retrieve("List the names of the first 3 boats by size.")
        assert any("first 5 cars" in d.question for d in results)
