"""Schema-linking tests."""

from repro.core.linking import SchemaLinker, identifier_tokens


class TestIdentifierTokens:
    def test_warehouse_prefixes_dropped(self):
        assert identifier_tokens("hkg_dim_segment") == ["segment"]

    def test_underscores_split(self):
        assert identifier_tokens("Song_release_year") == ["song", "release", "year"]


class TestTableLinking:
    def test_plural_links_to_table(self, aep_db):
        linker = SchemaLinker(aep_db.schema)
        link = linker.link_table("segments")
        assert link is not None
        assert link.table.name == "hkg_dim_segment"

    def test_warehouse_table_linked_by_entity_word(self, aep_db):
        linker = SchemaLinker(aep_db.schema)
        assert linker.link_table("destinations").table.name == (
            "hkg_dim_destination"
        )
        assert linker.link_table("activation").table.name == (
            "hkg_fact_activation"
        )

    def test_jargon_does_not_link(self, aep_db):
        """'audiences' must NOT link — that is the closed-domain gap."""
        linker = SchemaLinker(aep_db.schema)
        assert linker.link_table("audiences") is None

    def test_guess_is_deterministic(self, aep_db):
        linker = SchemaLinker(aep_db.schema)
        first = linker.guess_table("audiences")
        second = linker.guess_table("audiences")
        assert first.table.name == second.table.name

    def test_guess_on_unknown_word_not_segment(self, aep_db):
        """The zero-shot guess for 'audiences' lands on the wrong table."""
        linker = SchemaLinker(aep_db.schema)
        assert linker.guess_table("audiences").table.name != "hkg_dim_segment"


class TestColumnLinking:
    def test_exact_column(self, aep_db):
        linker = SchemaLinker(aep_db.schema)
        table = aep_db.schema.table("hkg_dim_segment")
        link = linker.link_column(table, "status")
        assert link.column.name == "status"

    def test_nl_name_column(self, aep_db):
        linker = SchemaLinker(aep_db.schema)
        table = aep_db.schema.table("hkg_dim_segment")
        assert linker.link_column(table, "profile count").column.name == (
            "profilecount"
        )

    def test_unrelated_phrase_does_not_link(self, aep_db):
        linker = SchemaLinker(aep_db.schema)
        table = aep_db.schema.table("hkg_dim_segment")
        assert linker.link_column(table, "quarterly revenue") is None

    def test_column_anywhere(self, aep_db):
        linker = SchemaLinker(aep_db.schema)
        link = linker.column_anywhere("rows ingested")
        assert link.column.name == "rowsingested"
        assert link.table.name == "hkg_fact_ingestion"


class TestSpecialColumns:
    def test_name_column_plain(self, music_db):
        linker = SchemaLinker(music_db.schema)
        table = music_db.schema.table("singer")
        assert linker.name_column(table).name == "Name"

    def test_name_column_prefixed(self, aep_db):
        linker = SchemaLinker(aep_db.schema)
        table = aep_db.schema.table("hkg_dim_segment")
        assert linker.name_column(table).name == "segmentname"

    def test_date_column_with_hint(self, aep_db):
        linker = SchemaLinker(aep_db.schema)
        table = aep_db.schema.table("hkg_fact_activation")
        assert linker.date_column(table, hint="activated").name == (
            "activationdate"
        )

    def test_date_column_default(self, aep_db):
        linker = SchemaLinker(aep_db.schema)
        table = aep_db.schema.table("hkg_dim_segment")
        assert linker.date_column(table).name == "createdtime"

    def test_description_and_status(self, aep_db):
        linker = SchemaLinker(aep_db.schema)
        table = aep_db.schema.table("hkg_dim_segment")
        assert linker.description_column(table).name == "description"
        assert linker.status_column(table).name == "status"

    def test_no_name_column(self, aep_db):
        linker = SchemaLinker(aep_db.schema)
        table = aep_db.schema.table("hkg_fact_ingestion")
        assert linker.name_column(table) is None
