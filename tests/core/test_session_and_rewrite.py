"""FISQL pipeline (multi-round sessions) and Query Rewrite baseline tests."""

import pytest

from repro.core.feedback import Feedback
from repro.core.nl2sql import Nl2SqlModel
from repro.core.retrieval import DemonstrationRetriever
from repro.core.rewrite import QueryRewriteBaseline
from repro.core.session import FisqlPipeline
from repro.core.user import AnnotatorConfig, SimulatedAnnotator
from repro.datasets.base import Example
from repro.llm.simulated import SimulatedLLM


@pytest.fixture()
def llm():
    return SimulatedLLM()


@pytest.fixture()
def model(llm):
    return Nl2SqlModel(llm=llm)


@pytest.fixture()
def perfect_annotator(aep_db):
    return SimulatedAnnotator(
        aep_db.schema, AnnotatorConfig(vague_rate=0.0, misaligned_rate=0.0)
    )


def year_example():
    return Example(
        example_id="year-1",
        db_id="experience_platform",
        question="How many segments were created in January?",
        gold_sql=(
            "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
            "'2024-01-01' AND createdtime < '2024-02-01'"
        ),
        trap_kind="default_year",
    )


YEAR_INITIAL = (
    "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
    "'2023-01-01' AND createdtime < '2023-02-01'"
)


class TestFisqlSession:
    def test_year_error_corrected_in_one_round(
        self, model, llm, aep_db, perfect_annotator
    ):
        pipeline = FisqlPipeline(model=model, llm=llm, routing=True)
        outcome = pipeline.correct(
            example=year_example(),
            database=aep_db,
            initial_sql=YEAR_INITIAL,
            annotator=perfect_annotator,
            max_rounds=1,
        )
        assert outcome.corrected
        assert outcome.corrected_round == 1
        assert outcome.rounds[0].feedback_text == "we are in 2024"
        assert "'2024-01-01'" in outcome.rounds[0].sql_after

    def test_round_records_route(self, model, llm, aep_db, perfect_annotator):
        pipeline = FisqlPipeline(model=model, llm=llm, routing=True)
        outcome = pipeline.correct(
            example=year_example(),
            database=aep_db,
            initial_sql=YEAR_INITIAL,
            annotator=perfect_annotator,
            max_rounds=1,
        )
        assert outcome.rounds[0].feedback_type == "edit"

    def test_no_routing_omits_type(self, model, llm, aep_db, perfect_annotator):
        pipeline = FisqlPipeline(model=model, llm=llm, routing=False)
        outcome = pipeline.correct(
            example=year_example(),
            database=aep_db,
            initial_sql=YEAR_INITIAL,
            annotator=perfect_annotator,
            max_rounds=1,
        )
        assert outcome.rounds[0].feedback_type is None

    def test_two_errors_need_two_rounds(
        self, model, llm, aep_db, perfect_annotator
    ):
        example = Example(
            example_id="multi-1",
            db_id="experience_platform",
            question="List the segments created in January.",
            gold_sql=(
                "SELECT segmentname FROM hkg_dim_segment WHERE createdtime "
                ">= '2024-01-01' AND createdtime < '2024-02-01'"
            ),
            trap_kind="multi",
        )
        initial = (
            "SELECT segmentname, description FROM hkg_dim_segment WHERE "
            "createdtime >= '2023-01-01' AND createdtime < '2023-02-01'"
        )
        pipeline = FisqlPipeline(model=model, llm=llm, routing=True)
        one_round = pipeline.correct(
            example=example,
            database=aep_db,
            initial_sql=initial,
            annotator=perfect_annotator,
            max_rounds=1,
        )
        assert not one_round.corrected
        two_rounds = pipeline.correct(
            example=example,
            database=aep_db,
            initial_sql=initial,
            annotator=perfect_annotator,
            max_rounds=2,
        )
        assert two_rounds.corrected_round == 2
        assert two_rounds.corrected_by(2)
        assert not two_rounds.corrected_by(1)

    def test_session_stops_when_user_satisfied(
        self, model, llm, aep_db, perfect_annotator
    ):
        """If the first round fixes it, no further rounds run."""
        pipeline = FisqlPipeline(model=model, llm=llm, routing=True)
        outcome = pipeline.correct(
            example=year_example(),
            database=aep_db,
            initial_sql=YEAR_INITIAL,
            annotator=perfect_annotator,
            max_rounds=5,
        )
        assert len(outcome.rounds) == 1

    def test_unparseable_initial_sql_gives_up(self, model, llm, aep_db,
                                              perfect_annotator):
        pipeline = FisqlPipeline(model=model, llm=llm)
        outcome = pipeline.correct(
            example=year_example(),
            database=aep_db,
            initial_sql="garbage sql here",
            annotator=perfect_annotator,
            max_rounds=2,
        )
        assert not outcome.corrected
        assert outcome.rounds == []

    def test_highlights_passed_through(self, model, llm, aep_db):
        annotator = SimulatedAnnotator(
            aep_db.schema, AnnotatorConfig(vague_rate=1.0, misaligned_rate=0.0)
        )
        example = Example(
            example_id="hl-1",
            db_id="experience_platform",
            question="List the names of the datasets that are ready to use.",
            gold_sql=(
                "SELECT datasetname FROM hkg_dim_dataset WHERE status = "
                "'active'"
            ),
        )
        initial = "SELECT datasetname FROM hkg_dim_dataset"
        plain = FisqlPipeline(model=model, llm=llm, highlights=False).correct(
            example=example,
            database=aep_db,
            initial_sql=initial,
            annotator=annotator,
            max_rounds=1,
        )
        highlighted = FisqlPipeline(model=model, llm=llm, highlights=True).correct(
            example=example,
            database=aep_db,
            initial_sql=initial,
            annotator=annotator,
            max_rounds=1,
        )
        assert not plain.corrected
        assert highlighted.corrected


class _GarbageFeedbackLLM:
    """Wraps the simulated LLM but answers feedback prompts with junk SQL."""

    def __init__(self, inner):
        self._inner = inner

    def complete(self, prompt):
        from repro.llm.interface import KIND_FEEDBACK, Completion

        if prompt.kind == KIND_FEEDBACK:
            return Completion(text="SELEKT broken ((")
        return self._inner.complete(prompt)


class TestParseRegressionRollback:
    def test_unparseable_revision_rolls_back_sql_text(
        self, model, llm, aep_db, perfect_annotator
    ):
        """When a round's revision doesn't parse, the SQL text must stay in
        sync with the AST: the next round works from the previous query."""
        pipeline = FisqlPipeline(
            model=model, llm=_GarbageFeedbackLLM(llm), routing=True
        )
        outcome = pipeline.correct(
            example=year_example(),
            database=aep_db,
            initial_sql=YEAR_INITIAL,
            annotator=perfect_annotator,
            max_rounds=2,
        )
        assert not outcome.corrected
        assert len(outcome.rounds) == 2
        first, second = outcome.rounds
        # The record keeps what the model actually emitted …
        assert first.sql_after == "SELEKT broken (("
        assert any("rolled back" in note for note in first.notes)
        # … but the next round's baseline is the last *parseable* SQL.
        assert second.sql_before == YEAR_INITIAL

    def test_rollback_increments_parse_regression_metric(
        self, model, llm, aep_db, perfect_annotator
    ):
        from repro import obs

        obs.enable()
        try:
            pipeline = FisqlPipeline(
                model=model, llm=_GarbageFeedbackLLM(llm), routing=True
            )
            pipeline.correct(
                example=year_example(),
                database=aep_db,
                initial_sql=YEAR_INITIAL,
                annotator=perfect_annotator,
                max_rounds=1,
            )
            regressions = obs.get_metrics().counter_total(
                "correction.parse_regressions"
            )
        finally:
            obs.disable()
        assert regressions == 1


class TestCorrectionOutcomeCorrectedBy:
    def test_never_corrected_is_false_for_any_round(self):
        from repro.core.session import CorrectionOutcome

        outcome = CorrectionOutcome(example_id="x", corrected_round=None)
        assert not outcome.corrected
        for round_index in (0, 1, 2, 100):
            assert not outcome.corrected_by(round_index)

    def test_boundary_rounds(self):
        from repro.core.session import CorrectionOutcome

        outcome = CorrectionOutcome(example_id="x", corrected_round=2)
        assert outcome.corrected
        assert not outcome.corrected_by(0)
        assert not outcome.corrected_by(1)
        assert outcome.corrected_by(2)
        assert outcome.corrected_by(3)

    def test_round_one_correction(self):
        from repro.core.session import CorrectionOutcome

        outcome = CorrectionOutcome(example_id="x", corrected_round=1)
        assert outcome.corrected_by(1)
        assert not outcome.corrected_by(0)


class TestQueryRewrite:
    def test_year_feedback_fixed_by_rewrite(self, llm, aep_db, aep_suite):
        _benchmark, demos = aep_suite
        model = Nl2SqlModel(llm=llm, retriever=DemonstrationRetriever(demos))
        baseline = QueryRewriteBaseline(llm=llm, model=model)
        step = baseline.incorporate(
            "How many segments were created in January?",
            Feedback(text="we are in 2024"),
            aep_db,
        )
        assert "January 2024" in step.merged_question
        assert "'2024-01-01'" in step.prediction.sql

    def test_operation_feedback_not_fixed_by_rewrite(self, llm, aep_db):
        """The rewrite keeps operation feedback as a trailing clause the
        re-parse cannot absorb — the paper's central QR weakness."""
        model = Nl2SqlModel(llm=llm)
        baseline = QueryRewriteBaseline(llm=llm, model=model)
        step = baseline.incorporate(
            "List the segments created in June 2023.",
            Feedback(text="do not give descriptions"),
            aep_db,
        )
        assert "description" in step.prediction.sql
