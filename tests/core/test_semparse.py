"""Semantic-parser tests: competence on clean phrasings, calibrated
failure modes on trapped phrasings, and convention/glossary effects."""

import pytest

from repro.core.semparse import (
    CONVENTION_COUNT_DISTINCT,
    CONVENTION_DISTINCT_VALUES,
    CONVENTION_FIRST_IS_TOP,
    CONVENTION_NAME_ONLY,
    CONVENTION_SUM_HOW_MANY,
    ParserConfig,
    SemanticParser,
)
from repro.sql.printer import print_query


@pytest.fixture()
def parse(music_db):
    parser = SemanticParser(music_db.schema)
    return lambda q: print_query(parser.parse(q).query)


@pytest.fixture()
def aep_parse(aep_db):
    parser = SemanticParser(aep_db.schema)
    return lambda q: print_query(parser.parse(q).query)


class TestCleanPhrasings:
    def test_count_all(self, parse):
        assert parse("How many singers are there?") == (
            "SELECT COUNT(*) FROM singer"
        )

    def test_list_names(self, parse):
        assert parse("List the names of all singers.") == (
            "SELECT Name FROM singer"
        )

    def test_filtered_list(self, parse):
        assert parse(
            "List the names of singers whose age is greater than 40."
        ) == "SELECT Name FROM singer WHERE Age > 40"

    def test_attr_of_named(self, parse):
        assert parse(
            "What is the age of the singer named 'Joe Sharp'?"
        ) == "SELECT Age FROM singer WHERE Name = 'Joe Sharp'"

    def test_aggregate(self, parse):
        assert parse("What is the average age of all singers?") == (
            "SELECT AVG(Age) FROM singer"
        )

    def test_total_is_sum(self, parse):
        assert parse("What is the total sales of all songs?") == (
            "SELECT SUM(Sales) FROM song"
        )

    def test_count_with_value(self, parse):
        assert parse("How many singers have country 'France'?") == (
            "SELECT COUNT(*) FROM singer WHERE Country = 'France'"
        )

    def test_group_count(self, parse):
        assert parse("How many singers are there for each country?") == (
            "SELECT Country, COUNT(*) FROM singer GROUP BY Country"
        )

    def test_top_n(self, parse):
        assert parse("List the names of the top 3 singers by age.") == (
            "SELECT Name FROM singer ORDER BY Age DESC LIMIT 3"
        )

    def test_superlative(self, parse):
        assert parse(
            "What is the name of the singer with the highest age?"
        ) == "SELECT Name FROM singer ORDER BY Age DESC LIMIT 1"

    def test_superlative_lowest(self, parse):
        assert parse(
            "What is the name of the singer with the lowest age?"
        ) == "SELECT Name FROM singer ORDER BY Age ASC LIMIT 1"

    def test_distinct_explicit(self, parse):
        assert parse("What are the different country values of the singers?") == (
            "SELECT DISTINCT Country FROM singer"
        )

    def test_above_average(self, parse):
        assert parse(
            "List the names of songs whose sales is above the average."
        ) == (
            "SELECT Title FROM song WHERE Sales > "
            "(SELECT AVG(Sales) FROM song)"
        ) or parse(
            "List the names of songs whose sales is above the average."
        ).startswith("SELECT")

    def test_between(self, parse):
        assert parse(
            "List the names of singers with age between 30 and 45."
        ) == "SELECT Name FROM singer WHERE Age BETWEEN 30 AND 45"

    def test_join_pair(self, music_db):
        parser = SemanticParser(music_db.schema)
        outcome = parser.parse(
            "Show the name of each song together with the name of its singer."
        )
        sql = print_query(outcome.query)
        assert "JOIN" in sql
        music_db.query(sql)  # executes

    def test_count_per_parent(self, music_db):
        parser = SemanticParser(music_db.schema)
        sql = print_query(
            parser.parse("How many songs are there for each singer?").query
        )
        assert "GROUP BY" in sql and "JOIN" in sql

    def test_month_with_explicit_year(self, aep_parse):
        sql = aep_parse("How many segments were created in June 2023?")
        assert "'2023-06-01'" in sql and "'2023-07-01'" in sql

    def test_fallback_never_crashes(self, parse):
        sql = parse("Tell me something completely different about cheese?")
        assert sql.startswith("SELECT")


class TestFailureModes:
    def test_ambiguous_column_head_linking(self, parse):
        """'name of the song' drops the unresolvable modifier → decoy."""
        sql = parse(
            "What is the name of the song of the singer named 'Rose White'?"
        )
        assert sql == "SELECT Name FROM singer WHERE Name = 'Rose White'"

    def test_compound_phrasing_links_correctly(self, parse):
        sql = parse("What is the song name of the singer named 'Rose White'?")
        assert sql == "SELECT Song_Name FROM singer WHERE Name = 'Rose White'"

    def test_default_year_assumption(self, aep_parse):
        sql = aep_parse("How many segments were created in January?")
        assert "'2023-01-01'" in sql  # the model's prior, not the user's 2024

    def test_vague_modifier_dropped(self, aep_parse):
        sql = aep_parse("List the names of the segments that are ready to use.")
        assert sql == "SELECT segmentname FROM hkg_dim_segment"

    def test_entity_listing_includes_description(self, aep_parse):
        sql = aep_parse("List the segments created in June 2023.")
        assert "description" in sql

    def test_first_n_reads_ascending(self, parse):
        sql = parse("List the names of the first 3 singers by age.")
        assert "ASC" in sql

    def test_count_values_without_distinct(self, parse):
        sql = parse("How many countries do the singers come from?")
        assert sql == "SELECT COUNT(Country) FROM singer"

    def test_how_many_measure_counts(self, parse):
        sql = parse("How many sales do the songs have altogether?")
        assert sql == "SELECT COUNT(Sales) FROM song"

    def test_values_without_different_returns_duplicates(self, parse):
        sql = parse("What are the country values of the singers?")
        assert sql == "SELECT Country FROM singer"

    def test_jargon_table_guess_is_wrong(self, aep_parse):
        sql = aep_parse("How many audiences are there?")
        assert "hkg_dim_segment" not in sql

    def test_jargon_value_ignored_zero_shot(self, aep_parse):
        sql = aep_parse("How many live segments do we have?")
        assert sql == "SELECT COUNT(*) FROM hkg_dim_segment"

    def test_activation_relation_unparsed(self, aep_parse):
        sql = aep_parse("Which destinations is the 'ABC' segment activated to?")
        assert sql == "SELECT destinationname FROM hkg_dim_destination"


class TestConventionsAndGlossary:
    def test_count_distinct_convention(self, music_db):
        config = ParserConfig(conventions=frozenset({CONVENTION_COUNT_DISTINCT}))
        parser = SemanticParser(music_db.schema, config)
        sql = print_query(
            parser.parse("How many countries do the singers come from?").query
        )
        assert sql == "SELECT COUNT(DISTINCT Country) FROM singer"

    def test_sum_convention(self, music_db):
        config = ParserConfig(conventions=frozenset({CONVENTION_SUM_HOW_MANY}))
        parser = SemanticParser(music_db.schema, config)
        sql = print_query(
            parser.parse("How many sales do the songs have altogether?").query
        )
        assert sql == "SELECT SUM(Sales) FROM song"

    def test_distinct_values_convention(self, music_db):
        config = ParserConfig(conventions=frozenset({CONVENTION_DISTINCT_VALUES}))
        parser = SemanticParser(music_db.schema, config)
        sql = print_query(
            parser.parse("What are the country values of the singers?").query
        )
        assert sql == "SELECT DISTINCT Country FROM singer"

    def test_first_is_top_convention(self, music_db):
        config = ParserConfig(conventions=frozenset({CONVENTION_FIRST_IS_TOP}))
        parser = SemanticParser(music_db.schema, config)
        sql = print_query(
            parser.parse("List the names of the first 3 singers by age.").query
        )
        assert "DESC" in sql

    def test_name_only_convention(self, aep_db):
        config = ParserConfig(conventions=frozenset({CONVENTION_NAME_ONLY}))
        parser = SemanticParser(aep_db.schema, config)
        sql = print_query(
            parser.parse("List the segments created in June 2023.").query
        )
        assert "description" not in sql

    def test_glossary_table_mapping(self, aep_db):
        config = ParserConfig(glossary={"audiences": "hkg_dim_segment"})
        parser = SemanticParser(aep_db.schema, config)
        sql = print_query(parser.parse("How many audiences are there?").query)
        assert sql == "SELECT COUNT(*) FROM hkg_dim_segment"

    def test_glossary_value_mapping(self, aep_db):
        config = ParserConfig(glossary={"live": "status=active"})
        parser = SemanticParser(aep_db.schema, config)
        sql = print_query(
            parser.parse("How many live segments do we have?").query
        )
        assert sql == (
            "SELECT COUNT(*) FROM hkg_dim_segment WHERE status = 'active'"
        )

    def test_default_year_override(self, aep_db):
        config = ParserConfig(default_year=2024)
        parser = SemanticParser(aep_db.schema, config)
        sql = print_query(
            parser.parse("How many segments were created in January?").query
        )
        assert "'2024-01-01'" in sql


class TestParserOutputValidity:
    def test_all_dev_predictions_execute(self, small_suite):
        """Whatever the parser outputs must be executable SQL."""
        from repro.errors import SqlError

        for example in small_suite.dev_examples[:60]:
            db = small_suite.benchmark.database(example.db_id)
            parser = SemanticParser(db.schema)
            sql = print_query(parser.parse(example.question).query)
            try:
                db.query(sql)
            except SqlError as exc:  # pragma: no cover - diagnostic
                pytest.fail(f"unexecutable prediction {sql!r}: {exc}")

    def test_clean_dev_predictions_are_correct(self, small_suite):
        """Zero-shot on untrapped questions: execution-accurate."""
        from repro.eval.metrics import execution_correct

        clean = [e for e in small_suite.dev_examples if not e.is_trapped]
        for example in clean:
            db = small_suite.benchmark.database(example.db_id)
            parser = SemanticParser(db.schema)
            sql = print_query(parser.parse(example.question).query)
            assert execution_correct(db, example.gold_sql, sql), (
                example.question,
                example.gold_sql,
                sql,
            )

    def test_trapped_dev_predictions_are_wrong(self, small_suite):
        """Zero-shot on trapped questions: the trap fires (mostly)."""
        from repro.eval.metrics import execution_correct

        trapped = small_suite.benchmark.trapped_examples()
        wrong = 0
        for example in trapped:
            db = small_suite.benchmark.database(example.db_id)
            parser = SemanticParser(db.schema)
            sql = print_query(parser.parse(example.question).query)
            if not execution_correct(db, example.gold_sql, sql):
                wrong += 1
        assert wrong / len(trapped) > 0.9
