"""Intent signatures: paraphrase collision and constraint extraction."""

import pytest

from repro.semcache.signature import (
    LIMIT_WORDS,
    NUMBER_WORDS,
    IntentSignature,
    build_signature,
    schema_lexicon,
)
from repro.sql.schema import Column, DatabaseSchema, Table
from repro.sql.types import DataType


def make_schema(name="travel"):
    return DatabaseSchema(
        name,
        [
            Table(
                "flights",
                [
                    Column("flight_id", DataType.INTEGER, primary_key=True),
                    Column("price", DataType.REAL),
                    Column("departure_date", DataType.DATE),
                ],
            ),
            Table(
                "airlines",
                [
                    Column("airline_id", DataType.INTEGER, primary_key=True),
                    Column("airline_name", DataType.TEXT),
                ],
            ),
        ],
    )


@pytest.fixture
def schema():
    return make_schema()


class TestParaphraseCollision:
    @pytest.mark.parametrize(
        "left,right",
        [
            ("Show the 5 cheapest flights", "list five cheapest flights"),
            ("flights costing more than 300", "flights costing over 300"),
            (
                "How many flights are there?",
                "what is the number of flights",
            ),
            (
                "How many flights are there?",
                "count the flights",
            ),
            (
                "cheapest flights in January",
                "in January, cheapest flights",
            ),
        ],
    )
    def test_paraphrases_collide(self, schema, left, right):
        a = build_signature(left, schema)
        b = build_signature(right, schema)
        assert a == b
        assert a.key() == b.key()

    @pytest.mark.parametrize(
        "left,right",
        [
            ("show the 5 cheapest flights", "show the 6 cheapest flights"),
            # Opposite sort intents share a limit but not a direction.
            ("show the 5 cheapest flights", "show the 5 largest flights"),
            ("show the 5 oldest flights", "show the 5 newest flights"),
            ("flights over 300", "flights at least 300"),
            ("flights over 300", "flights under 300"),
            ("flights in 2023", "flights in 2024"),
            ("flights more than 20", "flights no more than 20"),
            # A COUNT answer is not a row listing.
            ("How many flights are there?", "Show me all the flights"),
            # Thresholds bound to different columns must not collide.
            (
                "flights with price over 300 and departure_date over 20",
                "flights with price over 20 and departure_date over 300",
            ),
        ],
    )
    def test_different_constraints_do_not_collide(self, schema, left, right):
        a = build_signature(left, schema)
        b = build_signature(right, schema)
        assert a != b
        assert a.key() != b.key()


class TestConstraintExtraction:
    def test_limit_word_adjacency(self, schema):
        sig = build_signature("top 5 flights", schema)
        assert sig.limit == 5
        assert sig.literals == ()

    def test_number_word_normalizes_to_digit_limit(self, schema):
        spelled = build_signature("top five flights", schema)
        digits = build_signature("top 5 flights", schema)
        assert spelled.limit == 5
        assert spelled == digits

    def test_bare_number_is_a_literal_not_a_limit(self, schema):
        sig = build_signature("flights in 2024", schema)
        assert sig.limit is None
        assert sig.literals == ("2024",)

    def test_comparison_phrases_normalize(self, schema):
        for phrasing in (
            "flights more than 30",
            "flights greater than 30",
            "flights over 30",
            "flights above 30",
        ):
            assert build_signature(phrasing, schema).comparisons == (
                "table:flights:gt:30",
            )
        assert build_signature(
            "flights at least 30", schema
        ).comparisons == ("table:flights:ge:30",)
        assert build_signature(
            "flights no more than 30", schema
        ).comparisons == ("table:flights:le:30",)

    def test_comparisons_anchor_to_their_column(self, schema):
        sig = build_signature("flights with price over 300", schema)
        assert sig.comparisons == ("column:flights.price:gt:300",)
        # A word outside the schema vocabulary still anchors by stem.
        sig = build_signature("flights with duration under 120", schema)
        assert sig.comparisons == ("duration:lt:120",)
        # Nothing precedes the phrase: the comparison floats unanchored.
        sig = build_signature("over 300 flights", schema)
        assert sig.comparisons == ("gt:300",)

    def test_aggregate_cues_are_a_dimension(self, schema):
        count = build_signature("how many flights", schema)
        assert count.aggregates == ("count",)
        listing = build_signature("show the flights", schema)
        assert listing.aggregates == ()
        assert count != listing
        assert build_signature(
            "average price of flights", schema
        ).aggregates == ("avg",)

    def test_limit_keeps_ranking_direction(self, schema):
        cheapest = build_signature("show the 5 cheapest flights", schema)
        largest = build_signature("show the 5 largest flights", schema)
        assert cheapest.limit == 5
        assert largest.limit == 5
        assert cheapest != largest

    def test_quoted_entities_preserve_case(self, schema):
        upper = build_signature("flights on 'Big Air'", schema)
        lower = build_signature("flights on 'big air'", schema)
        assert upper.entities == ("Big Air",)
        assert upper != lower

    def test_schema_mentions_resolve(self, schema):
        sig = build_signature("show airline names", schema)
        assert "column:airlines.airline_name" in sig.mentions
        sig = build_signature("list the flights", schema)
        assert sig.mentions == ("table:flights",)


class TestUnsignable:
    @pytest.mark.parametrize(
        "question",
        ["", "   ", "\t\n", "the of and a", "how many?", "你好吗", "？！", "。。。"],
    )
    def test_nothing_anchored_is_empty(self, schema, question):
        assert build_signature(question, schema).is_empty

    def test_signable_questions_are_not_empty(self, schema):
        assert not build_signature("flights", schema).is_empty

    def test_empty_signature_property(self):
        empty = IntentSignature((), (), (), None, (), (), ())
        assert empty.is_empty
        anchored = IntentSignature(("flight",), (), (), None, (), (), ())
        assert not anchored.is_empty


class TestLexicon:
    def test_lexicon_is_cached_per_schema(self, schema):
        assert schema_lexicon(schema) is schema_lexicon(schema)

    def test_distinct_schemas_get_distinct_lexicons(self, schema):
        other = make_schema("other")
        assert schema_lexicon(schema) is not schema_lexicon(other)

    def test_tables_shadow_columns(self):
        schema = DatabaseSchema(
            "d",
            [
                Table("price", [Column("id", DataType.INTEGER)]),
                Table("items", [Column("price", DataType.REAL)]),
            ],
        )
        assert schema_lexicon(schema)["price"] == "table:price"


class TestConstants:
    def test_number_words_map_to_digit_strings(self):
        assert NUMBER_WORDS["five"] == "5"
        assert all(value.isdigit() for value in NUMBER_WORDS.values())

    def test_limit_words_include_rankers(self):
        assert {"top", "cheapest", "first"} <= LIMIT_WORDS
