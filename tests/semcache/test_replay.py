"""The replay harness: read-only re-classification plus divergence report."""

from repro.semcache.replay import (
    read_question_log,
    render_replay_report,
    replay,
)
from repro.semcache.store import SemanticAnswerCache
from repro.sql.schema import Column, DatabaseSchema, Table
from repro.sql.types import DataType


def make_schema(name="shop"):
    return DatabaseSchema(
        name,
        [
            Table(
                "items",
                [
                    Column("item_id", DataType.INTEGER, primary_key=True),
                    Column("price", DataType.REAL),
                ],
            )
        ],
    )


def ask(question, sql, db="shop", tenant="t", kind="ask"):
    return {
        "tenant": tenant,
        "db": db,
        "question": question,
        "kind": kind,
        "outcome": "miss",
        "reason": None,
        "sql": sql,
    }


class TestReplay:
    def test_breakdown_and_divergences(self):
        schema = make_schema()
        cache = SemanticAnswerCache()
        cache.store(
            cache.lookup("t", schema, "how many items"), "SELECT COUNT(*)"
        )
        records = [
            ask("how many items", "SELECT COUNT(*)"),  # agreeing hit
            ask("count the items", "SELECT 'other'"),  # diverging hit
            ask("items over 10", "SELECT 1"),  # miss
            ask("anything", None, kind="feedback"),  # guardrail bypass
            ask("how many rows", "SELECT 2", db="mystery"),  # unknown db
        ]
        report = replay(cache, {"shop": schema}, records)

        assert report["rounds"] == 5
        assert report["hits"] == 2
        assert report["misses"] == 1
        assert report["bypasses"] == 2
        assert report["feedback_rounds"] == 1
        assert report["unknown_databases"] == 1
        assert report["divergence_count"] == 1
        divergence = report["divergences"][0]
        assert divergence["question"] == "count the items"
        assert divergence["recorded_sql"] == "SELECT 'other'"
        assert divergence["cached_sql"] == "SELECT COUNT(*)"

    def test_replay_never_mutates_the_store(self):
        schema = make_schema()
        cache = SemanticAnswerCache()
        cache.store(
            cache.lookup("t", schema, "how many items"), "SELECT COUNT(*)"
        )
        before = cache.stats()
        replay(
            cache,
            {"shop": schema},
            [
                ask("how many items", "SELECT COUNT(*)"),
                ask("items over 10", "SELECT 1"),
            ],
        )
        assert cache.stats() == before

    def test_malformed_records_are_skipped(self):
        report = replay(
            SemanticAnswerCache(),
            {"shop": make_schema()},
            [{"db": "shop"}, {"question": 42, "db": "shop"}, {}],
        )
        assert report["rounds"] == 0


class TestQuestionLog:
    def test_missing_log_is_empty(self, tmp_path):
        assert read_question_log(tmp_path) == []

    def test_malformed_lines_are_skipped(self, tmp_path):
        (tmp_path / "questions.jsonl").write_text(
            '{"question": "q", "db": "shop"}\n'
            "not json\n"
            "[1, 2, 3]\n"
            "\n"
            '{"question": "r", "db": "shop"}\n',
            encoding="utf-8",
        )
        records = read_question_log(tmp_path)
        assert [record["question"] for record in records] == ["q", "r"]


class TestRenderReport:
    def test_render_includes_rates_and_divergences(self):
        report = {
            "rounds": 4,
            "hits": 1,
            "misses": 1,
            "bypasses": 2,
            "feedback_rounds": 1,
            "unknown_databases": 1,
            "divergences": [
                {
                    "db": "shop",
                    "question": "count the items",
                    "recorded_sql": "SELECT 'other'",
                    "cached_sql": "SELECT COUNT(*)",
                }
            ],
            "divergence_count": 1,
        }
        text = render_replay_report(report)
        assert "rounds:        4" in text
        assert "hits:          1 (50.0% of answerable)" in text
        assert "divergences:   1" in text
        assert "[shop] count the items" in text
        assert "recorded: SELECT 'other'" in text

    def test_render_truncates_past_the_limit(self):
        divergences = [
            {
                "db": "shop",
                "question": f"q{i}",
                "recorded_sql": "a",
                "cached_sql": "b",
            }
            for i in range(5)
        ]
        text = render_replay_report(
            {"rounds": 5, "hits": 5, "divergences": divergences}, limit=2
        )
        assert "... and 3 more" in text
