"""Schema fingerprints and the semantic answer store's guardrails."""

import pytest

from repro.semcache.fingerprint import (
    DISPLAY_DIGITS,
    display_fingerprint,
    schema_fingerprint,
)
from repro.semcache.store import (
    LOG_FILENAME,
    STORE_FILENAME,
    SemanticAnswerCache,
)
from repro.sql.schema import Column, DatabaseSchema, ForeignKey, Table
from repro.sql.types import DataType


def make_schema(name="shop", extra_table=False, price_type=DataType.REAL):
    tables = [
        Table(
            "items",
            [
                Column("item_id", DataType.INTEGER, primary_key=True),
                Column("price", price_type),
                Column("label", DataType.TEXT),
            ],
        ),
        Table(
            "orders",
            [
                Column("order_id", DataType.INTEGER, primary_key=True),
                Column("item_id", DataType.INTEGER),
            ],
        ),
    ]
    if extra_table:
        tables.append(
            Table("audit_log", [Column("id", DataType.INTEGER)])
        )
    return DatabaseSchema(name, tables)


class TestFingerprint:
    def test_identical_schemas_agree(self):
        assert schema_fingerprint(make_schema()) == schema_fingerprint(
            make_schema()
        )

    def test_declaration_order_is_irrelevant(self):
        forward = make_schema()
        reordered = DatabaseSchema(
            "shop",
            [
                Table(
                    "orders",
                    [
                        Column("item_id", DataType.INTEGER),
                        Column(
                            "order_id", DataType.INTEGER, primary_key=True
                        ),
                    ],
                ),
                Table(
                    "items",
                    [
                        Column("label", DataType.TEXT),
                        Column("price", DataType.REAL),
                        Column(
                            "item_id", DataType.INTEGER, primary_key=True
                        ),
                    ],
                ),
            ],
        )
        assert schema_fingerprint(forward) == schema_fingerprint(reordered)

    def test_structural_changes_perturb(self):
        base = schema_fingerprint(make_schema())
        assert schema_fingerprint(make_schema(extra_table=True)) != base
        assert (
            schema_fingerprint(make_schema(price_type=DataType.INTEGER))
            != base
        )
        assert schema_fingerprint(make_schema(name="other")) != base

    def test_cosmetic_metadata_does_not_perturb(self):
        base = schema_fingerprint(make_schema())
        annotated = make_schema()
        annotated.table("items").synonyms = ("products", "goods")
        annotated.table("items").column("price").nl_name = "unit cost"
        annotated.table("orders").foreign_keys.append(
            ForeignKey("item_id", "items", "item_id")
        )
        assert schema_fingerprint(annotated) == base

    def test_display_form_is_a_short_prefix(self):
        fingerprint = schema_fingerprint(make_schema())
        short = display_fingerprint(fingerprint)
        assert len(short) == DISPLAY_DIGITS
        assert fingerprint.startswith(short)


class TestStoreBasics:
    def test_miss_then_store_then_hit(self):
        cache = SemanticAnswerCache()
        schema = make_schema()
        miss = cache.lookup("t", schema, "show the 5 cheapest items")
        assert miss.outcome == "miss"
        assert cache.store(miss, "SELECT 1", ["note"])
        hit = cache.lookup("t", schema, "list five cheapest items")
        assert hit.outcome == "hit"
        assert hit.sql == "SELECT 1"
        assert hit.notes == ("note",)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_cross_tenant_hit_on_identical_fingerprint(self):
        cache = SemanticAnswerCache()
        schema = make_schema()
        miss = cache.lookup("team-a", schema, "how many items")
        cache.store(miss, "SELECT COUNT(*) FROM items")
        hit = cache.lookup("team-b", schema, "how many items")
        assert hit.outcome == "hit"
        view = cache.statusz_view()
        assert view["tenants"]["team-a"]["misses"] == 1
        assert view["tenants"]["team-b"]["hits"] == 1

    def test_unsignable_questions_bypass(self):
        cache = SemanticAnswerCache()
        lookup = cache.lookup("t", make_schema(), "   ")
        assert lookup.outcome == "bypass"
        assert lookup.reason == "unsignable"
        assert len(cache) == 0

    def test_feedback_rounds_never_read_or_write(self):
        cache = SemanticAnswerCache()
        schema = make_schema()
        miss = cache.lookup("t", schema, "how many items")
        cache.store(miss, "SELECT COUNT(*) FROM items")
        bypass = cache.record_feedback_bypass(
            "t", schema, "how many items"
        )
        assert bypass.outcome == "bypass"
        assert bypass.reason == "feedback"
        assert bypass.sql is None
        assert not cache.store(bypass, "SELECT 'poisoned'")
        assert len(cache) == 1

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(ValueError):
            SemanticAnswerCache(max_entries=0)

    def test_clear_drops_entries_but_keeps_counters(self):
        cache = SemanticAnswerCache()
        schema = make_schema()
        cache.store(cache.lookup("t", schema, "how many items"), "SELECT 1")
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.stats()["misses"] == 1
        assert cache.lookup("t", schema, "how many items").outcome == "miss"


class TestStoreRefusals:
    def test_refuses_empty_sql_and_non_miss(self):
        cache = SemanticAnswerCache()
        schema = make_schema()
        miss = cache.lookup("t", schema, "how many items")
        assert not cache.store(miss, "")
        assert cache.store(miss, "SELECT 1")
        hit = cache.lookup("t", schema, "how many items")
        assert not cache.store(hit, "SELECT 2")
        assert cache.lookup("t", schema, "how many items").sql == "SELECT 1"

    def test_refuses_answers_that_raced_a_schema_change(self):
        cache = SemanticAnswerCache()
        stale_miss = cache.lookup("t", make_schema(), "how many items")
        cache.lookup("t", make_schema(extra_table=True), "how many items")
        assert not cache.store(stale_miss, "SELECT 1")
        assert len(cache) == 0


class TestInvalidation:
    def test_schema_change_bypasses_once_and_drops_entries(self):
        cache = SemanticAnswerCache()
        old = make_schema()
        cache.store(cache.lookup("t", old, "how many items"), "SELECT 1")
        assert len(cache) == 1

        new = make_schema(extra_table=True)
        bypass = cache.lookup("t", new, "how many items")
        assert bypass.outcome == "bypass"
        assert bypass.reason == "schema_changed"
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 1

        retry = cache.lookup("t", new, "how many items")
        assert retry.outcome == "miss"

    def test_each_tenant_bypasses_once_on_its_own_view_change(self):
        cache = SemanticAnswerCache()
        old = make_schema()
        new = make_schema(extra_table=True)
        cache.lookup("team-a", old, "how many items")
        cache.lookup("team-b", old, "how many items")

        # team-a observes the mutation first and takes its bypass.
        assert cache.lookup("team-a", new, "q").reason == "schema_changed"
        # team-b's recorded view is stale and takes its own bypass.
        stale = cache.lookup("team-b", new, "how many items")
        assert stale.outcome == "bypass"
        assert stale.reason == "schema_changed"
        # One bypass each; both tenants then classify normally again.
        assert cache.lookup("team-b", new, "how many items").outcome == "miss"

    def test_same_db_name_different_schemas_do_not_thrash(self):
        # Two tenants hosting *different* schemas under one database name
        # must not invalidate each other on every alternating lookup.
        cache = SemanticAnswerCache()
        shop_a = make_schema()
        shop_b = make_schema(extra_table=True)
        cache.store(
            cache.lookup("team-a", shop_a, "how many items"), "SELECT 1"
        )
        cache.store(
            cache.lookup("team-b", shop_b, "how many items"), "SELECT 2"
        )
        for _ in range(3):
            assert cache.lookup("team-a", shop_a, "how many items").sql == (
                "SELECT 1"
            )
            assert cache.lookup("team-b", shop_b, "how many items").sql == (
                "SELECT 2"
            )
        assert len(cache) == 2
        assert cache.stats()["invalidations"] == 0
        assert cache.stats()["bypasses"] == 0
        assert cache.stats()["fingerprints"] == 2

    def test_entries_survive_while_any_tenant_references_them(self):
        cache = SemanticAnswerCache()
        old = make_schema()
        new = make_schema(extra_table=True)
        cache.store(cache.lookup("team-a", old, "how many items"), "SELECT 1")
        cache.lookup("team-b", old, "how many items")

        # team-a migrates; team-b still lives on the old fingerprint, so
        # the shared entry must survive.
        assert cache.lookup("team-a", new, "q").reason == "schema_changed"
        assert len(cache) == 1
        assert cache.stats()["invalidations"] == 0
        assert cache.lookup("team-b", old, "how many items").outcome == "hit"

        # team-b migrates too: nothing references the old fingerprint
        # anymore, so its entries finally drop.
        assert cache.lookup("team-b", new, "q").reason == "schema_changed"
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 1


class TestEviction:
    def test_lru_evicts_coldest_entry(self):
        cache = SemanticAnswerCache(max_entries=2)
        schema = make_schema()
        cache.store(cache.lookup("t", schema, "items over 10"), "SELECT 1")
        cache.store(cache.lookup("t", schema, "items over 20"), "SELECT 2")
        # Touch the first entry so the second becomes coldest.
        assert cache.lookup("t", schema, "items over 10").outcome == "hit"
        cache.store(cache.lookup("t", schema, "items over 30"), "SELECT 3")

        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        assert cache.lookup("t", schema, "items over 10").outcome == "hit"
        assert cache.lookup("t", schema, "items over 20").outcome == "miss"


class TestPersistence:
    def test_round_trip(self, tmp_path):
        schema = make_schema()
        cache = SemanticAnswerCache(directory=tmp_path)
        cache.store(cache.lookup("t", schema, "how many items"), "SELECT 1")
        path = cache.save()
        assert path == tmp_path / STORE_FILENAME
        assert path.exists()

        reloaded = SemanticAnswerCache(directory=tmp_path)
        assert len(reloaded) == 1
        assert reloaded.stats()["misses"] == 1
        hit = reloaded.lookup("t", schema, "how many items")
        assert hit.outcome == "hit"
        assert hit.sql == "SELECT 1"

    def test_corrupt_store_quarantines_and_starts_cold(self, tmp_path):
        schema = make_schema()
        cache = SemanticAnswerCache(directory=tmp_path)
        cache.store(cache.lookup("t", schema, "how many items"), "SELECT 1")
        cache.save()

        (tmp_path / STORE_FILENAME).write_text("{not json", encoding="utf-8")
        cold = SemanticAnswerCache(directory=tmp_path)
        assert len(cold) == 0
        assert cold.lookup("t", schema, "how many items").outcome == "miss"

    def test_question_log_appends_only_when_persistent(self, tmp_path):
        schema = make_schema()
        memory_only = SemanticAnswerCache()
        memory_only.log_round(
            memory_only.lookup("t", schema, "how many items"), kind="ask"
        )

        cache = SemanticAnswerCache(directory=tmp_path)
        lookup = cache.lookup("t", schema, "how many items")
        cache.log_round(lookup, kind="ask", served_sql="SELECT 1")
        cache.log_round(lookup, kind="feedback")
        lines = (
            (tmp_path / LOG_FILENAME)
            .read_text(encoding="utf-8")
            .splitlines()
        )
        assert len(lines) == 2
        assert '"kind": "ask"' in lines[0] or '"kind":"ask"' in lines[0]


class TestTtl:
    """Age-bounded entries: evict-on-lookup, byte-stable when unset."""

    def _cache(self, now: dict, ttl_s=60.0, **kwargs):
        return SemanticAnswerCache(
            ttl_s=ttl_s, clock=lambda: now["t"], **kwargs
        )

    def test_ttl_validation(self):
        with pytest.raises(ValueError):
            SemanticAnswerCache(ttl_s=0)
        with pytest.raises(ValueError):
            SemanticAnswerCache(ttl_s=-5)

    def test_fresh_entry_still_hits(self):
        now = {"t": 1000.0}
        cache = self._cache(now)
        schema = make_schema()
        cache.store(
            cache.lookup("t", schema, "show the 5 cheapest items"),
            "SELECT 1",
        )
        now["t"] += 59.0
        assert cache.lookup("t", schema, "show the 5 cheapest items").outcome == "hit"
        assert cache.stats()["expirations"] == 0

    def test_stale_entry_expires_on_lookup(self):
        now = {"t": 1000.0}
        cache = self._cache(now)
        schema = make_schema()
        miss = cache.lookup("t", schema, "show the 5 cheapest items")
        cache.store(miss, "SELECT 1")
        now["t"] += 61.0
        again = cache.lookup("t", schema, "show the 5 cheapest items")
        assert again.outcome == "miss"
        assert cache.stats()["expirations"] == 1
        assert cache.stats()["hits"] == 0
        # The caller recomputes and re-stores; the fresh entry hits.
        assert cache.store(again, "SELECT 2")
        hit = cache.lookup("t", schema, "show the 5 cheapest items")
        assert hit.outcome == "hit"
        assert hit.sql == "SELECT 2"

    def test_peek_reports_stale_as_miss_without_evicting(self):
        now = {"t": 1000.0}
        cache = self._cache(now)
        schema = make_schema()
        cache.store(
            cache.lookup("t", schema, "show the 5 cheapest items"),
            "SELECT 1",
        )
        now["t"] += 61.0
        assert cache.peek("t", schema, "show the 5 cheapest items").outcome == "miss"
        assert cache.stats()["expirations"] == 0
        # The entry is still resident: rolling the clock back proves it.
        now["t"] -= 61.0
        assert cache.lookup("t", schema, "show the 5 cheapest items").outcome == "hit"

    def test_no_ttl_keeps_store_bytes_identical(self, tmp_path):
        """Without a TTL, entries carry no timestamp — so the persisted
        store stays byte-for-byte reproducible across runs."""

        def build(directory):
            cache = SemanticAnswerCache(directory=directory)
            miss = cache.lookup("t", make_schema(), "show the 5 cheapest items")
            cache.store(miss, "SELECT 1", ["note"])
            return cache.save()

        first = build(tmp_path / "a")
        second = build(tmp_path / "b")
        assert first.read_bytes() == second.read_bytes()
        from repro.durability import read_checksummed_json

        payload = read_checksummed_json(first, kind="semcache")
        (entry,) = payload["entries"].values()
        assert "stored_at" not in entry

    def test_unstamped_entry_is_stale_under_enforced_ttl(self, tmp_path):
        """A store written before TTL enforcement has no stamps; turning a
        TTL on treats those entries as already expired, never as immortal."""
        legacy = SemanticAnswerCache(directory=tmp_path)
        legacy.store(
            legacy.lookup("t", make_schema(), "show the 5 cheapest items"),
            "SELECT 1",
        )
        legacy.save()
        now = {"t": 1000.0}
        cache = self._cache(now, directory=tmp_path)
        result = cache.lookup("t", make_schema(), "show the 5 cheapest items")
        assert result.outcome == "miss"
        assert cache.stats()["expirations"] == 1

    def test_statusz_reports_ttl_and_expirations(self):
        now = {"t": 1000.0}
        cache = self._cache(now, ttl_s=30.0)
        view = cache.statusz_view()
        assert view["ttl_s"] == 30.0
        assert view["expirations"] == 0
