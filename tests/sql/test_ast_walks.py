"""AST traversal helpers and odd executor corners."""

from repro.sql import ast
from repro.sql.engine import Database
from repro.sql.parser import parse_expression, parse_query


class TestWalkExpressions:
    def test_walks_all_nodes(self):
        expr = parse_expression("a + b * 2 > LOWER(c)")
        nodes = list(ast.walk_expressions(expr))
        columns = {n.column for n in nodes if isinstance(n, ast.ColumnRef)}
        assert columns == {"a", "b", "c"}
        assert any(isinstance(n, ast.FunctionCall) for n in nodes)

    def test_none_yields_nothing(self):
        assert list(ast.walk_expressions(None)) == []

    def test_between_and_in(self):
        expr = parse_expression("a BETWEEN 1 AND 2 AND b IN (3, 4)")
        literals = [
            n.value for n in ast.walk_expressions(expr)
            if isinstance(n, ast.Literal)
        ]
        assert sorted(literals) == [1, 2, 3, 4]

    def test_case_when(self):
        expr = parse_expression("CASE WHEN a = 1 THEN b ELSE c END")
        columns = {
            n.column
            for n in ast.walk_expressions(expr)
            if isinstance(n, ast.ColumnRef)
        }
        assert columns == {"a", "b", "c"}


class TestWalkQueries:
    def test_yields_nested_subqueries(self):
        query = parse_query(
            "SELECT a FROM t WHERE b > (SELECT AVG(b) FROM t) AND c IN "
            "(SELECT c FROM u WHERE EXISTS (SELECT 1 FROM v))"
        )
        selects = list(ast.walk_queries(query))
        assert len(selects) == 4

    def test_yields_derived_tables(self):
        query = parse_query("SELECT a FROM (SELECT a FROM t) AS s")
        assert len(list(ast.walk_queries(query))) == 2

    def test_set_operation_branches(self):
        query = parse_query("SELECT a FROM t UNION SELECT a FROM u")
        assert len(list(ast.walk_queries(query))) == 2


class TestIsAggregateCall:
    def test_aggregates(self):
        assert ast.is_aggregate_call(parse_expression("COUNT(*)"))
        assert ast.is_aggregate_call(parse_expression("SUM(x)"))

    def test_scalars_are_not(self):
        assert not ast.is_aggregate_call(parse_expression("LOWER(x)"))
        assert not ast.is_aggregate_call(parse_expression("x"))


class TestExecutorCorners:
    def test_select_star_with_order_by_alias(self, music_db):
        result = music_db.query(
            "SELECT *, Age AS years FROM singer ORDER BY years DESC LIMIT 1"
        )
        assert result.rows[0][-1] == 52

    def test_star_plus_expression_positions(self, music_db):
        result = music_db.query("SELECT Name, singer.* FROM singer LIMIT 1")
        assert len(result.rows[0]) == 6
        assert result.columns[0] == "Name"

    def test_group_by_expression(self, music_db):
        result = music_db.query(
            "SELECT Age / 10, COUNT(*) FROM singer GROUP BY Age / 10"
        )
        assert len(result.rows) >= 2

    def test_aggregate_of_expression(self, music_db):
        value = music_db.query("SELECT AVG(Age * 2) FROM singer").scalar()
        assert value == 74.0

    def test_empty_table_aggregate_group(self):
        db = Database.from_ddl("e", "CREATE TABLE t (a INTEGER, b TEXT)")
        result = db.query("SELECT b, COUNT(*) FROM t GROUP BY b")
        assert result.rows == []

    def test_no_from_aggregate(self, music_db):
        # Aggregate over the implicit single empty row.
        assert music_db.query("SELECT COUNT(*)").scalar() == 1

    def test_derived_table_with_alias(self, music_db):
        result = music_db.query(
            "SELECT sub.Name FROM (SELECT Name FROM singer WHERE Age > 40) "
            "AS sub ORDER BY sub.Name"
        )
        assert len(result.rows) == 3

    def test_union_inside_in_rejected_gracefully(self, music_db):
        from repro.errors import ParseError
        import pytest

        with pytest.raises(ParseError):
            music_db.query(
                "SELECT Name FROM singer WHERE Age IN "
                "(SELECT Age FROM singer UNION SELECT 1)"
            )
