"""Executor behaviour tests against the hand-built music database."""

import pytest

from repro.errors import ExecutionError, SqlError
from repro.sql.engine import Database


def rows(db, sql):
    return db.query(sql).rows


class TestProjection:
    def test_select_column(self, music_db):
        result = music_db.query("SELECT Name FROM singer WHERE singer_id = 1")
        assert result.rows == [("Joe Sharp",)]
        assert result.columns == ["Name"]

    def test_select_star_width(self, music_db):
        result = music_db.query("SELECT * FROM singer")
        assert len(result.rows[0]) == 5
        assert result.columns[0] == "singer_id"

    def test_qualified_star(self, music_db):
        result = music_db.query(
            "SELECT singer.* FROM singer JOIN song "
            "ON singer.singer_id = song.singer_id LIMIT 1"
        )
        assert len(result.rows[0]) == 5

    def test_expression_projection(self, music_db):
        result = music_db.query("SELECT Age + 10 FROM singer WHERE singer_id = 2")
        assert result.rows == [(42,)]

    def test_alias_in_output(self, music_db):
        result = music_db.query("SELECT COUNT(*) AS n FROM singer")
        assert result.columns == ["n"]

    def test_scalar_helper(self, music_db):
        assert music_db.query("SELECT COUNT(*) FROM singer").scalar() == 6

    def test_to_dicts(self, music_db):
        dicts = music_db.query(
            "SELECT Name FROM singer WHERE singer_id = 1"
        ).to_dicts()
        assert dicts == [{"Name": "Joe Sharp"}]


class TestWhere:
    def test_comparison(self, music_db):
        assert len(rows(music_db, "SELECT Name FROM singer WHERE Age > 40")) == 3

    def test_string_equality(self, music_db):
        assert len(
            rows(music_db, "SELECT Name FROM singer WHERE Country = 'France'")
        ) == 4

    def test_and_or(self, music_db):
        result = rows(
            music_db,
            "SELECT Name FROM singer WHERE Country = 'France' AND Age < 30",
        )
        assert result == [("Justin Brown",), ("Tribal King",)][: len(result)]
        assert len(result) == 2

    def test_between(self, music_db):
        assert len(
            rows(music_db, "SELECT Name FROM singer WHERE Age BETWEEN 29 AND 43")
        ) == 4

    def test_like(self, music_db):
        assert rows(
            music_db, "SELECT Name FROM singer WHERE Name LIKE 'J%'"
        ) == [("Joe Sharp",), ("Justin Brown",), ("John Nizinik",)]

    def test_like_case_insensitive(self, music_db):
        assert len(
            rows(music_db, "SELECT Name FROM singer WHERE Name LIKE 'joe%'")
        ) == 1

    def test_in_list(self, music_db):
        assert len(
            rows(
                music_db,
                "SELECT Name FROM singer WHERE Country IN ('France', 'Narnia')",
            )
        ) == 4

    def test_not_in_list(self, music_db):
        assert len(
            rows(music_db, "SELECT Name FROM singer WHERE Country NOT IN ('France')")
        ) == 2

    def test_is_null_on_populated(self, music_db):
        assert rows(music_db, "SELECT Name FROM singer WHERE Name IS NULL") == []

    def test_unknown_column_raises(self, music_db):
        with pytest.raises(SqlError):
            music_db.query("SELECT nope FROM singer")

    def test_null_comparison_filters_out(self, music_db):
        music_db.execute("INSERT INTO singer VALUES (7, 'Ghost', NULL, NULL, NULL)")
        assert ("Ghost",) not in rows(
            music_db, "SELECT Name FROM singer WHERE Age > 0"
        )
        assert ("Ghost",) not in rows(
            music_db, "SELECT Name FROM singer WHERE Age <= 0"
        )


class TestAggregates:
    def test_count_star(self, music_db):
        assert music_db.query("SELECT COUNT(*) FROM song").scalar() == 6

    def test_count_column_skips_null(self, music_db):
        music_db.execute("INSERT INTO singer VALUES (7, 'Ghost', NULL, NULL, NULL)")
        assert music_db.query("SELECT COUNT(Age) FROM singer").scalar() == 6
        assert music_db.query("SELECT COUNT(*) FROM singer").scalar() == 7

    def test_count_distinct(self, music_db):
        assert (
            music_db.query("SELECT COUNT(DISTINCT Country) FROM singer").scalar()
            == 3
        )

    def test_sum_avg_min_max(self, music_db):
        result = music_db.query(
            "SELECT SUM(Age), AVG(Age), MIN(Age), MAX(Age) FROM singer"
        )
        total, avg, low, high = result.rows[0]
        assert total == 222
        assert avg == pytest.approx(37.0)
        assert (low, high) == (25, 52)

    def test_sum_empty_is_null(self, music_db):
        assert (
            music_db.query("SELECT SUM(Age) FROM singer WHERE Age > 99").scalar()
            is None
        )

    def test_count_empty_is_zero(self, music_db):
        assert (
            music_db.query("SELECT COUNT(*) FROM singer WHERE Age > 99").scalar()
            == 0
        )

    def test_group_by(self, music_db):
        result = music_db.query(
            "SELECT Country, COUNT(*) FROM singer GROUP BY Country"
        )
        as_dict = dict(result.rows)
        assert as_dict == {"Netherlands": 1, "United States": 1, "France": 4}

    def test_having(self, music_db):
        result = music_db.query(
            "SELECT Country, COUNT(*) FROM singer GROUP BY Country "
            "HAVING COUNT(*) > 1"
        )
        assert result.rows == [("France", 4)]

    def test_aggregate_arithmetic(self, music_db):
        assert (
            music_db.query("SELECT MAX(Age) - MIN(Age) FROM singer").scalar() == 27
        )

    def test_aggregate_in_order_by(self, music_db):
        result = music_db.query(
            "SELECT Country FROM singer GROUP BY Country ORDER BY COUNT(*) DESC"
        )
        assert result.rows[0] == ("France",)

    def test_aggregate_outside_context_raises(self, music_db):
        with pytest.raises(ExecutionError):
            music_db.query("SELECT Name FROM singer WHERE COUNT(*) > 1")


class TestOrderLimit:
    def test_order_asc(self, music_db):
        result = rows(music_db, "SELECT Age FROM singer ORDER BY Age")
        assert result == sorted(result)

    def test_order_desc_limit(self, music_db):
        result = rows(music_db, "SELECT Age FROM singer ORDER BY Age DESC LIMIT 2")
        assert result == [(52,), (43,)]

    def test_order_by_position(self, music_db):
        result = rows(music_db, "SELECT Name, Age FROM singer ORDER BY 2 LIMIT 1")
        assert result == [("Tribal King", 25)]

    def test_order_by_alias(self, music_db):
        result = rows(
            music_db, "SELECT Age AS years FROM singer ORDER BY years DESC LIMIT 1"
        )
        assert result == [(52,)]

    def test_order_by_unselected_column(self, music_db):
        result = rows(music_db, "SELECT Name FROM singer ORDER BY Age LIMIT 1")
        assert result == [("Tribal King",)]

    def test_multi_key_order(self, music_db):
        result = rows(
            music_db, "SELECT Country, Name FROM singer ORDER BY Country, Name"
        )
        assert result[0][0] == "France"
        names_in_france = [n for c, n in result if c == "France"]
        assert names_in_france == sorted(names_in_france)

    def test_offset(self, music_db):
        result = rows(
            music_db, "SELECT Age FROM singer ORDER BY Age LIMIT 2 OFFSET 1"
        )
        assert result == [(29,), (32,)]

    def test_nulls_sort_first(self, music_db):
        music_db.execute("INSERT INTO singer VALUES (7, 'Ghost', NULL, NULL, NULL)")
        result = rows(music_db, "SELECT Age FROM singer ORDER BY Age LIMIT 1")
        assert result == [(None,)]


class TestJoins:
    def test_inner_join(self, music_db):
        result = rows(
            music_db,
            "SELECT T1.Title, T2.Name FROM song AS T1 JOIN singer AS T2 "
            "ON T1.singer_id = T2.singer_id WHERE T2.Age = 32",
        )
        assert sorted(result) == [
            ("Do They Know", "Timbaland"),
            ("The Way I Are", "Timbaland"),
        ]

    def test_left_join_keeps_unmatched(self, music_db):
        result = music_db.query(
            "SELECT T2.Name, T1.Title FROM singer AS T2 LEFT JOIN song AS T1 "
            "ON T1.singer_id = T2.singer_id"
        )
        joe = [row for row in result.rows if row[0] == "Joe Sharp"]
        assert joe == [("Joe Sharp", None)]

    def test_cross_join_size(self, music_db):
        result = music_db.query("SELECT 1 FROM singer CROSS JOIN song")
        assert len(result.rows) == 36

    def test_non_equi_join(self, music_db):
        result = music_db.query(
            "SELECT COUNT(*) FROM singer AS a JOIN singer AS b ON a.Age < b.Age"
        )
        assert result.scalar() == 15

    def test_join_group_count(self, music_db):
        result = music_db.query(
            "SELECT T2.Name, COUNT(*) FROM song AS T1 JOIN singer AS T2 "
            "ON T1.singer_id = T2.singer_id GROUP BY T2.Name"
        )
        as_dict = dict(result.rows)
        assert as_dict["Timbaland"] == 2

    def test_ambiguous_column_raises(self, music_db):
        with pytest.raises(ExecutionError):
            music_db.query(
                "SELECT singer_id FROM singer JOIN song "
                "ON singer.singer_id = song.singer_id"
            )


class TestSubqueries:
    def test_scalar_subquery(self, music_db):
        result = rows(
            music_db,
            "SELECT Name FROM singer WHERE Age = (SELECT MIN(Age) FROM singer)",
        )
        assert result == [("Tribal King",)]

    def test_in_subquery(self, music_db):
        result = rows(
            music_db,
            "SELECT Name FROM singer WHERE singer_id IN "
            "(SELECT singer_id FROM song WHERE Release_year > 2012)",
        )
        assert sorted(result) == [
            ("John Nizinik",),
            ("Justin Brown",),
            ("Tribal King",),
        ]

    def test_correlated_exists(self, music_db):
        result = rows(
            music_db,
            "SELECT Name FROM singer WHERE EXISTS (SELECT 1 FROM song "
            "WHERE song.singer_id = singer.singer_id)",
        )
        assert len(result) == 5

    def test_not_exists(self, music_db):
        result = rows(
            music_db,
            "SELECT Name FROM singer WHERE NOT EXISTS (SELECT 1 FROM song "
            "WHERE song.singer_id = singer.singer_id)",
        )
        assert result == [("Joe Sharp",)]

    def test_above_average(self, music_db):
        result = rows(
            music_db,
            "SELECT Title FROM song WHERE Sales > "
            "(SELECT AVG(Sales) FROM song)",
        )
        assert sorted(result) == [("Do They Know",), ("Sun",), ("The Way I Are",)]

    def test_scalar_subquery_multiple_rows_raises(self, music_db):
        with pytest.raises(ExecutionError):
            music_db.query(
                "SELECT Name FROM singer WHERE Age = (SELECT Age FROM singer)"
            )


class TestSetOperations:
    def test_union_dedupes(self, music_db):
        result = rows(
            music_db,
            "SELECT Country FROM singer UNION SELECT Country FROM singer",
        )
        assert len(result) == 3

    def test_union_all_keeps_duplicates(self, music_db):
        result = rows(
            music_db,
            "SELECT Country FROM singer UNION ALL SELECT Country FROM singer",
        )
        assert len(result) == 12

    def test_intersect(self, music_db):
        result = rows(
            music_db,
            "SELECT Name FROM singer WHERE Age > 40 INTERSECT "
            "SELECT Name FROM singer WHERE Country = 'France'",
        )
        assert sorted(result) == [("John Nizinik",), ("Rose White",)]

    def test_except(self, music_db):
        result = rows(
            music_db,
            "SELECT Name FROM singer EXCEPT "
            "SELECT Name FROM singer WHERE Country = 'France'",
        )
        assert sorted(result) == [("Joe Sharp",), ("Timbaland",)]

    def test_set_op_order_limit(self, music_db):
        result = rows(
            music_db,
            "SELECT Name FROM singer WHERE Age > 40 UNION "
            "SELECT Name FROM singer WHERE Age < 30 ORDER BY Name LIMIT 2",
        )
        assert result == [("Joe Sharp",), ("John Nizinik",)]

    def test_width_mismatch_raises(self, music_db):
        with pytest.raises(ExecutionError):
            music_db.query(
                "SELECT Name, Age FROM singer UNION SELECT Name FROM singer"
            )


class TestScalarFunctions:
    def test_lower_upper(self, music_db):
        result = music_db.query(
            "SELECT LOWER(Name), UPPER(Country) FROM singer WHERE singer_id = 1"
        )
        assert result.rows == [("joe sharp", "NETHERLANDS")]

    def test_length(self, music_db):
        assert music_db.query(
            "SELECT LENGTH(Name) FROM singer WHERE singer_id = 1"
        ).scalar() == 9

    def test_abs_round(self, music_db):
        assert music_db.query("SELECT ABS(-4)").scalar() == 4
        assert music_db.query("SELECT ROUND(3.567, 1)").scalar() == pytest.approx(3.6)

    def test_substr(self, music_db):
        assert music_db.query("SELECT SUBSTR('hello', 2, 3)").scalar() == "ell"

    def test_coalesce(self, music_db):
        assert music_db.query("SELECT COALESCE(NULL, NULL, 5)").scalar() == 5

    def test_year_month(self, music_db):
        assert music_db.query("SELECT YEAR('2024-03-15')").scalar() == 2024
        assert music_db.query("SELECT MONTH('2024-03-15')").scalar() == 3

    def test_unknown_function_raises(self, music_db):
        with pytest.raises(ExecutionError):
            music_db.query("SELECT FROBNICATE(1)")

    def test_division_by_zero_is_null(self, music_db):
        assert music_db.query("SELECT 1 / 0").scalar() is None

    def test_case_when(self, music_db):
        result = music_db.query(
            "SELECT CASE WHEN Age >= 40 THEN 'old' ELSE 'young' END "
            "FROM singer WHERE singer_id = 1"
        )
        assert result.rows == [("old",)]
