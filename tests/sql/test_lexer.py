"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType


def kinds(sql):
    return [t.type for t in tokenize(sql)[:-1]]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_are_uppercased(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_keep_case(self):
        assert values("Song_Name") == ["Song_Name"]
        assert kinds("Song_Name") == [TokenType.IDENTIFIER]

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].type is TokenType.INTEGER
        assert tokens[0].value == "42"

    def test_float_literal(self):
        assert kinds("3.14") == [TokenType.FLOAT]

    def test_float_with_exponent(self):
        assert kinds("1e5") == [TokenType.FLOAT]
        assert kinds("2.5E-3") == [TokenType.FLOAT]

    def test_leading_dot_float(self):
        assert kinds(".5") == [TokenType.FLOAT]

    def test_eof_token_always_last(self):
        tokens = tokenize("SELECT")
        assert tokens[-1].type is TokenType.EOF


class TestStrings:
    def test_simple_string(self):
        tokens = tokenize("'hello'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello"

    def test_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_string_keeps_case(self):
        assert tokenize("'MiXeD'")[0].value == "MiXeD"


class TestQuotedIdentifiers:
    def test_double_quoted(self):
        tokens = tokenize('"weird name"')
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "weird name"

    def test_backtick_quoted(self):
        assert tokenize("`order`")[0].value == "order"

    def test_unterminated_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')


class TestOperatorsAndPunctuation:
    @pytest.mark.parametrize("op", ["<>", "!=", ">=", "<=", "=", "<", ">", "+", "-", "*", "/", "%", "||"])
    def test_operator(self, op):
        tokens = tokenize(f"a {op} b")
        assert tokens[1].type is TokenType.OPERATOR
        assert tokens[1].value == op

    def test_greedy_two_char_operators(self):
        assert values("a<=b") == ["a", "<=", "b"]

    def test_punctuation(self):
        assert values("(a, b.c);") == ["(", "a", ",", "b", ".", "c", ")", ";"]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestTrivia:
    def test_line_comment_skipped(self):
        assert values("SELECT -- comment\n 1") == ["SELECT", "1"]

    def test_block_comment_skipped(self):
        assert values("SELECT /* x */ 1") == ["SELECT", "1"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("SELECT /* oops")

    def test_whitespace_variants(self):
        assert values("SELECT\t1\r\nFROM\tt") == ["SELECT", "1", "FROM", "t"]

    def test_positions_recorded(self):
        tokens = tokenize("SELECT a")
        assert tokens[0].position == 0
        assert tokens[1].position == 7


class TestRealQueries:
    def test_full_query_token_count(self):
        sql = (
            "SELECT Name, Song_release_year FROM singer "
            "WHERE Age = (SELECT min(Age) FROM singer)"
        )
        tokens = tokenize(sql)
        assert tokens[-1].type is TokenType.EOF
        assert len(tokens) == 19

    def test_is_keyword_helper(self):
        token = tokenize("SELECT")[0]
        assert token.is_keyword("SELECT")
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("FROM")
