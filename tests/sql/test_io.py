"""Database JSON serialization tests."""

import pytest

from repro.errors import DatasetError
from repro.sql.io import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)


class TestRoundTrip:
    def test_schema_preserved(self, music_db):
        clone = database_from_dict(database_to_dict(music_db))
        assert clone.schema.name == music_db.schema.name
        assert [t.name for t in clone.schema.tables] == [
            t.name for t in music_db.schema.tables
        ]
        singer = clone.schema.table("singer")
        assert singer.primary_key.name == "singer_id"

    def test_rows_preserved(self, music_db):
        clone = database_from_dict(database_to_dict(music_db))
        for table in music_db.schema.tables:
            assert clone.data(table.name).rows == music_db.data(table.name).rows

    def test_foreign_keys_preserved(self, music_db):
        clone = database_from_dict(database_to_dict(music_db))
        fks = clone.schema.table("song").foreign_keys
        assert fks[0].ref_table == "singer"

    def test_queries_agree(self, music_db):
        clone = database_from_dict(database_to_dict(music_db))
        sql = (
            "SELECT Country, COUNT(*) FROM singer GROUP BY Country "
            "ORDER BY 2 DESC"
        )
        assert clone.query(sql).rows == music_db.query(sql).rows

    def test_nl_annotations_preserved(self, aep_db):
        clone = database_from_dict(database_to_dict(aep_db))
        segment = clone.schema.table("hkg_dim_segment")
        assert segment.nl_name == "segment"
        assert segment.synonyms == ("audience",)

    def test_file_roundtrip(self, music_db, tmp_path):
        path = tmp_path / "music.json"
        save_database(music_db, path)
        clone = load_database(path)
        assert clone.query("SELECT COUNT(*) FROM song").scalar() == 6

    def test_generated_database_roundtrip(self, small_suite):
        db_id = sorted(small_suite.benchmark.databases)[0]
        original = small_suite.benchmark.databases[db_id]
        clone = database_from_dict(database_to_dict(original))
        table = original.schema.tables[0].name
        assert clone.data(table).rows == original.data(table).rows


class TestVersioning:
    def test_unknown_version_rejected(self, music_db):
        data = database_to_dict(music_db)
        data["format_version"] = 99
        with pytest.raises(DatasetError):
            database_from_dict(data)

    def test_missing_version_rejected(self, music_db):
        data = database_to_dict(music_db)
        del data["format_version"]
        with pytest.raises(DatasetError):
            database_from_dict(data)
