"""Printer tests including the parse∘print round-trip property."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sql import ast
from repro.sql.parser import parse_expression, parse_query, parse_statement
from repro.sql.printer import (
    format_identifier,
    format_literal,
    print_expression,
    print_query,
    print_statement,
)


class TestLiterals:
    def test_null(self):
        assert format_literal(None) == "NULL"

    def test_booleans(self):
        assert format_literal(True) == "TRUE"
        assert format_literal(False) == "FALSE"

    def test_string_escaping(self):
        assert format_literal("it's") == "'it''s'"

    def test_numbers(self):
        assert format_literal(42) == "42"
        assert format_literal(2.5) == "2.5"


class TestIdentifiers:
    def test_plain(self):
        assert format_identifier("name") == "name"

    def test_spaces_quoted(self):
        assert format_identifier("two words") == '"two words"'

    def test_leading_digit_quoted(self):
        assert format_identifier("1abc") == '"1abc"'

    def test_empty(self):
        assert format_identifier("") == '""'


class TestCanonicalForms:
    def test_simple_select(self):
        sql = "SELECT a FROM t WHERE a > 3"
        assert print_query(parse_query(sql)) == sql

    def test_join_printing(self):
        sql = "SELECT T1.a, T2.b FROM t AS T1 JOIN u AS T2 ON T1.id = T2.id"
        assert print_query(parse_query(sql)) == sql

    def test_precedence_parens_preserved_semantically(self):
        expr = parse_expression("(1 + 2) * 3")
        printed = print_expression(expr)
        assert parse_expression(printed) == expr

    def test_statement_printing(self):
        sql = "INSERT INTO t (a, b) VALUES (1, 'x')"
        assert print_statement(parse_statement(sql)) == sql

    def test_create_table_roundtrip(self):
        sql = (
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, "
            "FOREIGN KEY (pid) REFERENCES p(id))"
        )
        assert parse_statement(print_statement(parse_statement(sql))) == (
            parse_statement(sql)
        )

    def test_update_delete_drop(self):
        for sql in (
            "UPDATE t SET a = 1 WHERE b = 2",
            "DELETE FROM t WHERE a = 1",
            "DROP TABLE IF EXISTS t",
        ):
            assert parse_statement(print_statement(parse_statement(sql))) == (
                parse_statement(sql)
            )


# ---------------------------------------------------------------------------
# Round-trip property: parse(print(q)) == q for generated queries
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "price", "name", "created_date"])
_tables = st.sampled_from(["t", "u", "products", "singer"])


def _literals():
    return st.one_of(
        # Non-negative: the parser represents -1 as NEG(1), so negative
        # Literal nodes are not canonical forms.
        st.integers(min_value=0, max_value=1000).map(ast.Literal),
        st.sampled_from(["x", "it's", "2024-01-01", ""]).map(ast.Literal),
        st.just(ast.Literal(None)),
        st.booleans().map(ast.Literal),
    )


def _column_refs():
    return st.builds(
        ast.ColumnRef,
        column=_names,
        table=st.one_of(st.none(), _tables),
    )


def _expressions(depth=2):
    base = st.one_of(_literals(), _column_refs())
    if depth == 0:
        return base
    sub = _expressions(depth - 1)
    return st.one_of(
        base,
        st.builds(
            ast.BinaryOp,
            op=st.sampled_from(
                [
                    ast.BinaryOperator.ADD,
                    ast.BinaryOperator.MUL,
                    ast.BinaryOperator.EQ,
                    ast.BinaryOperator.LT,
                    ast.BinaryOperator.AND,
                    ast.BinaryOperator.OR,
                ]
            ),
            left=sub,
            right=sub,
        ),
        st.builds(
            ast.FunctionCall,
            name=st.sampled_from(["COUNT", "SUM", "MIN", "LOWER"]),
            args=st.lists(sub, min_size=1, max_size=2),
            distinct=st.booleans(),
        ),
        st.builds(ast.IsNull, operand=sub, negated=st.booleans()),
        st.builds(
            ast.Between, operand=sub, low=sub, high=sub, negated=st.booleans()
        ),
        st.builds(
            ast.InList,
            operand=sub,
            items=st.lists(_literals(), min_size=1, max_size=3),
            negated=st.booleans(),
        ),
    )


def _selects():
    return st.builds(
        ast.Select,
        items=st.lists(
            st.builds(
                ast.SelectItem,
                expression=_expressions(1),
                alias=st.one_of(st.none(), _names),
            ),
            min_size=1,
            max_size=3,
        ),
        source=st.one_of(
            st.none(),
            st.builds(ast.TableRef, name=_tables, alias=st.one_of(st.none(), st.just("T1"))),
        ),
        where=st.one_of(st.none(), _expressions(1)),
        group_by=st.lists(_column_refs(), max_size=2),
        order_by=st.lists(
            st.builds(
                ast.OrderItem,
                expression=_column_refs(),
                order=st.sampled_from(list(ast.SortOrder)),
            ),
            max_size=2,
        ),
        limit=st.one_of(st.none(), st.integers(min_value=0, max_value=99)),
        distinct=st.booleans(),
    )


@given(_expressions(2))
@settings(max_examples=200, deadline=None)
def test_expression_roundtrip(expr):
    printed = print_expression(expr)
    reparsed = parse_expression(printed)
    assert reparsed == expr, printed


@given(_selects())
@settings(max_examples=200, deadline=None)
def test_select_roundtrip(select):
    printed = print_query(select)
    reparsed = parse_query(printed)
    assert reparsed == select, printed
