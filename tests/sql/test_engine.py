"""Database facade tests: DDL, DML, schema/storage behaviour."""

import pytest

from repro.errors import CatalogError, ExecutionError
from repro.sql.engine import Database, DmlResult, _split_statements
from repro.sql.schema import Column, DatabaseSchema, Table
from repro.sql.types import DataType


@pytest.fixture()
def db():
    return Database.from_ddl(
        "shop",
        "CREATE TABLE item (id INTEGER PRIMARY KEY, name TEXT, price REAL)",
    )


class TestDdl:
    def test_create_table_registers_schema(self, db):
        table = db.schema.table("item")
        assert [c.name for c in table.columns] == ["id", "name", "price"]
        assert table.primary_key.name == "id"

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE item (x INTEGER)")

    def test_drop_table(self, db):
        db.execute("DROP TABLE item")
        assert not db.schema.has_table("item")

    def test_drop_missing_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE nothere")
        result = db.execute("DROP TABLE IF EXISTS nothere")
        assert isinstance(result, DmlResult)

    def test_from_ddl_multiple_statements(self):
        db = Database.from_ddl(
            "multi",
            "CREATE TABLE a (x INTEGER); CREATE TABLE b (y TEXT);",
        )
        assert db.schema.has_table("a") and db.schema.has_table("b")


class TestInsert:
    def test_insert_rows_affected(self, db):
        result = db.execute("INSERT INTO item VALUES (1, 'pen', 2.5), (2, 'ink', 8.0)")
        assert result.rows_affected == 2
        assert db.row_count("item") == 2

    def test_insert_with_column_list(self, db):
        db.execute("INSERT INTO item (id, name) VALUES (1, 'pen')")
        assert db.query("SELECT price FROM item").scalar() is None

    def test_insert_coerces_types(self, db):
        db.execute("INSERT INTO item VALUES (1, 'pen', 3)")
        value = db.query("SELECT price FROM item").scalar()
        assert isinstance(value, float)

    def test_duplicate_pk_rejected(self, db):
        db.execute("INSERT INTO item VALUES (1, 'pen', 1.0)")
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO item VALUES (1, 'dup', 1.0)")

    def test_wrong_width_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO item VALUES (1, 'pen')")

    def test_load_rows(self, db):
        count = db.load_rows("item", [(1, "a", 1.0), (2, "b", 2.0)])
        assert count == 2


class TestUpdateDelete:
    @pytest.fixture(autouse=True)
    def seed(self, db):
        db.execute(
            "INSERT INTO item VALUES (1, 'pen', 2.5), (2, 'ink', 8.0), (3, 'pad', 4.0)"
        )

    def test_update_with_where(self, db):
        result = db.execute("UPDATE item SET price = 9.0 WHERE name = 'ink'")
        assert result.rows_affected == 1
        assert db.query("SELECT price FROM item WHERE name = 'ink'").scalar() == 9.0

    def test_update_all(self, db):
        result = db.execute("UPDATE item SET price = price * 2")
        assert result.rows_affected == 3
        assert db.query("SELECT SUM(price) FROM item").scalar() == pytest.approx(29.0)

    def test_update_unknown_column(self, db):
        with pytest.raises(CatalogError):
            db.execute("UPDATE item SET nope = 1")

    def test_delete_with_where(self, db):
        result = db.execute("DELETE FROM item WHERE price > 3")
        assert result.rows_affected == 2
        assert db.row_count("item") == 1

    def test_delete_all(self, db):
        db.execute("DELETE FROM item")
        assert db.row_count("item") == 0

    def test_query_on_dml_raises(self, db):
        with pytest.raises(ExecutionError):
            db.query("DELETE FROM item")


class TestSchemaApi:
    def test_resolve_column(self):
        schema = DatabaseSchema(
            "s",
            [
                Table("a", [Column("x", DataType.INTEGER)]),
                Table("b", [Column("x", DataType.INTEGER), Column("y", DataType.TEXT)]),
            ],
        )
        assert len(schema.resolve_column("x")) == 2
        assert len(schema.resolve_column("y")) == 1

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("x", DataType.INTEGER), Column("X", DataType.TEXT)])

    def test_ddl_rendering(self, db):
        ddl = db.schema.ddl()
        assert "CREATE TABLE item" in ddl
        assert "id INTEGER PRIMARY KEY" in ddl

    def test_nl_name_defaults(self):
        column = Column("Song_release_year", DataType.INTEGER)
        assert column.nl_name == "song release year"


class TestSplitStatements:
    def test_semicolon_in_string_not_split(self):
        parts = _split_statements("INSERT INTO t VALUES ('a;b'); SELECT 1")
        assert len(parts) == 2
        assert "a;b" in parts[0]

    def test_escaped_quote_in_string(self):
        parts = _split_statements("INSERT INTO t VALUES ('it''s; fine')")
        assert len(parts) == 1

    def test_empty_statements_dropped(self):
        assert _split_statements(";;  ;") == []
