"""AST analysis: conjuncts, usage, spans, and the gold-vs-pred diff."""

from repro.sql import ast
from repro.sql.analysis import (
    clause_spans,
    columns_used,
    conjuncts,
    count_errors,
    diff_queries,
    join_conjuncts,
    literals_used,
    tables_used,
)
from repro.sql.parser import parse_expression, parse_query
from repro.sql.printer import print_select


def deltas_of(gold_sql, pred_sql):
    return diff_queries(parse_query(gold_sql), parse_query(pred_sql))


class TestConjuncts:
    def test_flatten_and_chain(self):
        parts = conjuncts(parse_expression("a = 1 AND b = 2 AND c = 3"))
        assert len(parts) == 3

    def test_or_not_flattened(self):
        parts = conjuncts(parse_expression("a = 1 OR b = 2"))
        assert len(parts) == 1

    def test_none_is_empty(self):
        assert conjuncts(None) == []

    def test_join_roundtrip(self):
        expr = parse_expression("a = 1 AND b = 2")
        assert conjuncts(join_conjuncts(conjuncts(expr))) == conjuncts(expr)

    def test_join_empty(self):
        assert join_conjuncts([]) is None


class TestUsage:
    def test_tables_used_includes_joins_and_subqueries(self):
        q = parse_query(
            "SELECT a FROM t JOIN u ON t.id = u.id "
            "WHERE a IN (SELECT a FROM v)"
        )
        assert tables_used(q) == {"t", "u", "v"}

    def test_columns_used(self):
        q = parse_query("SELECT a FROM t WHERE b > 1 ORDER BY c")
        assert columns_used(q) == {"a", "b", "c"}

    def test_literals_used(self):
        q = parse_query("SELECT a FROM t WHERE b > 1 AND c = 'x'")
        values = [lit.value for lit in literals_used(q)]
        assert sorted(map(str, values)) == ["1", "x"]


class TestClauseSpans:
    def test_spans_cover_whole_text(self):
        select = parse_query(
            "SELECT a FROM t WHERE b = 1 GROUP BY a ORDER BY a LIMIT 3"
        )
        text = print_select(select)
        spans = clause_spans(select)
        assert set(spans) == {"select", "from", "where", "group", "order", "limit"}
        assert spans["select"].start == 0
        assert spans["limit"].end == len(text)

    def test_span_slice_contains_clause(self):
        select = parse_query("SELECT a FROM t WHERE b = 1")
        spans = clause_spans(select)
        assert "WHERE b = 1" in spans["where"].slice(print_select(select))


class TestSelectDiff:
    def test_identical_queries_no_deltas(self):
        assert deltas_of("SELECT a FROM t", "SELECT a FROM t") == []

    def test_qualifier_ignored(self):
        assert deltas_of(
            "SELECT T1.a FROM t AS T1", "SELECT a FROM t"
        ) == []

    def test_select_edit(self):
        (delta,) = deltas_of("SELECT song_name FROM t", "SELECT name FROM t")
        assert (delta.kind, delta.action) == ("select", "edit")

    def test_select_remove(self):
        (delta,) = deltas_of(
            "SELECT name FROM t", "SELECT name, description FROM t"
        )
        assert (delta.kind, delta.action) == ("select", "remove")

    def test_select_add(self):
        (delta,) = deltas_of(
            "SELECT name, age FROM t", "SELECT name FROM t"
        )
        assert (delta.kind, delta.action) == ("select", "add")

    def test_aggregate_paired_as_edit(self):
        (delta,) = deltas_of(
            "SELECT COUNT(DISTINCT a) FROM t", "SELECT COUNT(a) FROM t"
        )
        assert (delta.kind, delta.action) == ("select", "edit")


class TestWhereDiff:
    def test_literal_edit_same_column(self):
        deltas = deltas_of(
            "SELECT a FROM t WHERE d >= '2024-01-01'",
            "SELECT a FROM t WHERE d >= '2023-01-01'",
        )
        assert [(d.kind, d.action) for d in deltas] == [("where", "edit")]

    def test_missing_condition(self):
        (delta,) = deltas_of(
            "SELECT a FROM t WHERE status = 'active'", "SELECT a FROM t"
        )
        assert (delta.kind, delta.action) == ("where", "add")

    def test_extra_condition(self):
        (delta,) = deltas_of(
            "SELECT a FROM t", "SELECT a FROM t WHERE b = 1"
        )
        assert (delta.kind, delta.action) == ("where", "remove")

    def test_join_conditions_excluded(self):
        deltas = deltas_of(
            "SELECT a FROM t JOIN u ON t.id = u.id",
            "SELECT a FROM t JOIN u ON t.id = u.id WHERE t.id = u.id",
        )
        assert deltas == []


class TestOtherDiffs:
    def test_table_edit(self):
        (delta,) = deltas_of("SELECT a FROM t", "SELECT a FROM u")
        assert (delta.kind, delta.action) == ("table", "edit")
        assert delta.gold == "t"

    def test_missing_table_add(self):
        deltas = deltas_of(
            "SELECT T1.a FROM t AS T1 JOIN u AS T2 ON T1.id = T2.id",
            "SELECT a FROM t",
        )
        kinds = {(d.kind, d.action) for d in deltas}
        assert ("table", "add") in kinds

    def test_order_direction_edit(self):
        deltas = deltas_of(
            "SELECT a FROM t ORDER BY a DESC", "SELECT a FROM t ORDER BY a ASC"
        )
        assert [(d.kind, d.action) for d in deltas] == [("order", "edit")]

    def test_order_missing(self):
        (delta,) = deltas_of(
            "SELECT a FROM t ORDER BY a ASC", "SELECT a FROM t"
        )
        assert (delta.kind, delta.action) == ("order", "add")

    def test_limit_edit_and_add(self):
        (edit,) = deltas_of("SELECT a FROM t LIMIT 5", "SELECT a FROM t LIMIT 3")
        assert (edit.kind, edit.action) == ("limit", "edit")
        (add,) = deltas_of("SELECT a FROM t LIMIT 5", "SELECT a FROM t")
        assert (add.kind, add.action) == ("limit", "add")

    def test_distinct_add(self):
        (delta,) = deltas_of("SELECT DISTINCT a FROM t", "SELECT a FROM t")
        assert (delta.kind, delta.action) == ("distinct", "add")

    def test_group_by_add(self):
        deltas = deltas_of(
            "SELECT a, COUNT(*) FROM t GROUP BY a",
            "SELECT a, COUNT(*) FROM t",
        )
        assert ("group", "add") in {(d.kind, d.action) for d in deltas}

    def test_structure_mismatch(self):
        deltas = diff_queries(
            parse_query("SELECT a FROM t UNION SELECT a FROM u"),
            parse_query("SELECT a FROM t"),
        )
        assert deltas[0].kind == "structure"

    def test_count_errors(self):
        gold = parse_query("SELECT name FROM t WHERE status = 'a' LIMIT 3")
        pred = parse_query("SELECT name, description FROM t")
        assert count_errors(gold, pred) == 3
