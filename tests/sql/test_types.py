"""Value types, coercion, and three-valued comparison tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TypeMismatchError
from repro.sql.types import (
    DataType,
    coerce,
    sort_key,
    sql_compare,
    values_equal,
)


class TestDataType:
    def test_from_name_aliases(self):
        assert DataType.from_name("INT") is DataType.INTEGER
        assert DataType.from_name("varchar") is DataType.TEXT
        assert DataType.from_name("DOUBLE") is DataType.REAL
        assert DataType.from_name("DATETIME") is DataType.DATE
        assert DataType.from_name("BOOL") is DataType.BOOLEAN

    def test_unknown_type(self):
        with pytest.raises(TypeMismatchError):
            DataType.from_name("BLOBBY")

    def test_is_numeric(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.REAL.is_numeric
        assert not DataType.TEXT.is_numeric


class TestCoerce:
    def test_null_passes_all_types(self):
        for dtype in DataType:
            assert coerce(None, dtype) is None

    def test_integer_from_string(self):
        assert coerce("42", DataType.INTEGER) == 42

    def test_integer_from_whole_float(self):
        assert coerce(3.0, DataType.INTEGER) == 3

    def test_integer_rejects_fraction_string(self):
        with pytest.raises(TypeMismatchError):
            coerce("3.5x", DataType.INTEGER)

    def test_real_from_int(self):
        assert coerce(2, DataType.REAL) == 2.0
        assert isinstance(coerce(2, DataType.REAL), float)

    def test_text_from_number(self):
        assert coerce(5, DataType.TEXT) == "5"

    def test_boolean_from_strings(self):
        assert coerce("true", DataType.BOOLEAN) is True
        assert coerce("NO", DataType.BOOLEAN) is False

    def test_boolean_rejects_garbage(self):
        with pytest.raises(TypeMismatchError):
            coerce("maybe", DataType.BOOLEAN)


class TestSqlCompare:
    def test_null_is_unknown(self):
        assert sql_compare(None, 1) is None
        assert sql_compare(1, None) is None
        assert sql_compare(None, None) is None

    def test_numbers(self):
        assert sql_compare(1, 2) == -1
        assert sql_compare(2, 2) == 0
        assert sql_compare(3, 2) == 1

    def test_int_vs_float(self):
        assert sql_compare(1, 1.0) == 0
        assert sql_compare(1, 1.5) == -1

    def test_strings_lexicographic(self):
        assert sql_compare("a", "b") == -1
        assert sql_compare("2024-01-01", "2023-12-31") == 1

    def test_numeric_strings_compare_numerically(self):
        assert sql_compare("10", 9) == 1

    def test_bool_as_number(self):
        assert sql_compare(True, 1) == 0
        assert sql_compare(False, 1) == -1


class TestValuesEqual:
    def test_null_equals_null(self):
        assert values_equal(None, None)
        assert not values_equal(None, 0)

    def test_float_tolerance(self):
        assert values_equal(1.0, 1.0 + 1e-9)
        assert not values_equal(1.0, 1.01)

    def test_strings(self):
        assert values_equal("x", "x")
        assert not values_equal("x", "y")


class TestSortKey:
    def test_nulls_first(self):
        values = ["b", None, 1, "a", 2.5, None]
        ordered = sorted(values, key=sort_key)
        assert ordered[:2] == [None, None]
        assert ordered[2:4] == [1, 2.5]
        assert ordered[4:] == ["a", "b"]


@given(
    st.one_of(st.none(), st.integers(-100, 100), st.text(max_size=5)),
    st.one_of(st.none(), st.integers(-100, 100), st.text(max_size=5)),
)
@settings(max_examples=300, deadline=None)
def test_compare_antisymmetry(a, b):
    """sql_compare(a, b) == -sql_compare(b, a) whenever both are known."""
    ab = sql_compare(a, b)
    ba = sql_compare(b, a)
    if ab is None:
        assert ba is None
    else:
        assert ab == -ba


@given(st.lists(st.one_of(st.none(), st.integers(-50, 50), st.text(max_size=4))))
@settings(max_examples=200, deadline=None)
def test_sort_key_total_order(values):
    """sort_key produces a usable total order (sorting never crashes, and
    is idempotent)."""
    once = sorted(values, key=sort_key)
    twice = sorted(once, key=sort_key)
    assert once == twice
