"""Aggregate accumulators and scalar functions, tested directly."""

import pytest

from repro.errors import ExecutionError
from repro.sql.functions import (
    AGGREGATE_FACTORIES,
    SCALAR_FUNCTIONS,
    AvgAgg,
    CountAgg,
    MaxAgg,
    MinAgg,
    SumAgg,
)


class TestCount:
    def test_counts_non_null(self):
        agg = CountAgg()
        for value in (1, None, "x", None):
            agg.add(value)
        assert agg.result() == 2

    def test_distinct(self):
        agg = CountAgg(distinct=True)
        for value in ("a", "a", "b", None):
            agg.add(value)
        assert agg.result() == 2

    def test_empty_is_zero(self):
        assert CountAgg().result() == 0


class TestSum:
    def test_int_sum_stays_int(self):
        agg = SumAgg()
        for value in (1, 2, 3):
            agg.add(value)
        assert agg.result() == 6
        assert isinstance(agg.result(), int)

    def test_mixed_sum_is_float(self):
        agg = SumAgg()
        agg.add(1)
        agg.add(2.5)
        assert agg.result() == pytest.approx(3.5)

    def test_empty_is_null(self):
        assert SumAgg().result() is None

    def test_distinct(self):
        agg = SumAgg(distinct=True)
        for value in (2, 2, 3):
            agg.add(value)
        assert agg.result() == 5

    def test_non_numeric_raises(self):
        with pytest.raises(ExecutionError):
            SumAgg().add("abc")


class TestAvgMinMax:
    def test_avg(self):
        agg = AvgAgg()
        for value in (2, 4, None):
            agg.add(value)
        assert agg.result() == 3.0

    def test_avg_empty_is_null(self):
        assert AvgAgg().result() is None

    def test_min_max_strings(self):
        low, high = MinAgg(), MaxAgg()
        for value in ("pear", "apple", "plum", None):
            low.add(value)
            high.add(value)
        assert low.result() == "apple"
        assert high.result() == "plum"

    def test_min_max_dates(self):
        low, high = MinAgg(), MaxAgg()
        for value in ("2024-01-15", "2023-12-31", "2024-02-01"):
            low.add(value)
            high.add(value)
        assert low.result() == "2023-12-31"
        assert high.result() == "2024-02-01"


class TestScalarRegistry:
    def test_all_aggregates_registered(self):
        assert set(AGGREGATE_FACTORIES) == {"COUNT", "SUM", "AVG", "MIN", "MAX"}

    def test_substr_one_based(self):
        assert SCALAR_FUNCTIONS["SUBSTR"](["hello", 1, 2]) == "he"

    def test_substr_null_propagates(self):
        assert SCALAR_FUNCTIONS["SUBSTR"]([None, 1, 2]) is None

    def test_round_default_digits(self):
        assert SCALAR_FUNCTIONS["ROUND"]([2.6]) == 3

    def test_trim(self):
        assert SCALAR_FUNCTIONS["TRIM"](["  x  "]) == "x"

    def test_nullif(self):
        assert SCALAR_FUNCTIONS["NULLIF"]([1, 1]) is None
        assert SCALAR_FUNCTIONS["NULLIF"]([1, 2]) == 1

    def test_nullif_arity(self):
        with pytest.raises(ExecutionError):
            SCALAR_FUNCTIONS["NULLIF"]([1])

    def test_year_month_validation(self):
        with pytest.raises(ExecutionError):
            SCALAR_FUNCTIONS["YEAR"](["nope"])
        with pytest.raises(ExecutionError):
            SCALAR_FUNCTIONS["MONTH"](["nope"])

    def test_ifnull_alias(self):
        assert SCALAR_FUNCTIONS["IFNULL"]([None, 7]) == 7
