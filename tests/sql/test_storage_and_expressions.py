"""Storage-layer edge cases and expression evaluation semantics."""

import pytest

from repro.errors import CatalogError, ExecutionError
from repro.sql.engine import Database
from repro.sql.expressions import BoundColumn, RowFrame, like_to_regex
from repro.sql.schema import Column, Table
from repro.sql.storage import TableData
from repro.sql.types import DataType


@pytest.fixture()
def table_data():
    table = Table(
        "t",
        [
            Column("id", DataType.INTEGER, primary_key=True),
            Column("name", DataType.TEXT),
            Column("score", DataType.REAL),
        ],
    )
    return TableData(table)


class TestStorage:
    def test_insert_and_len(self, table_data):
        table_data.insert((1, "a", 0.5))
        assert len(table_data) == 1

    def test_insert_named_defaults_null(self, table_data):
        table_data.insert_named({"id": 1, "name": "a"})
        assert table_data.rows[0] == (1, "a", None)

    def test_insert_named_unknown_column(self, table_data):
        with pytest.raises(CatalogError):
            table_data.insert_named({"id": 1, "bogus": 2})

    def test_null_pk_allowed_but_not_duplicated(self, table_data):
        table_data.insert((None, "a", None))
        table_data.insert((None, "b", None))  # NULL PKs don't collide
        table_data.insert((1, "c", None))
        with pytest.raises(ExecutionError):
            table_data.insert((1, "d", None))

    def test_replace_rows_rebuilds_pk_index(self, table_data):
        table_data.insert((1, "a", None))
        table_data.replace_rows([(2, "b", None)])
        table_data.insert((1, "c", None))  # 1 is free again
        with pytest.raises(ExecutionError):
            table_data.insert((2, "dup", None))

    def test_replace_rows_detects_duplicates(self, table_data):
        with pytest.raises(ExecutionError):
            table_data.replace_rows([(1, "a", None), (1, "b", None)])

    def test_column_index(self, table_data):
        assert table_data.column_index("SCORE") == 2
        with pytest.raises(CatalogError):
            table_data.column_index("nope")


class TestRowFrame:
    def setup_method(self):
        self.columns = [
            BoundColumn("t", "a"),
            BoundColumn("t", "b"),
            BoundColumn("u", "a"),
        ]

    def test_qualified_resolution(self):
        frame = RowFrame(self.columns, (1, 2, 3))
        assert frame.resolve("t", "a") == 1
        assert frame.resolve("u", "a") == 3

    def test_unqualified_unique(self):
        frame = RowFrame(self.columns, (1, 2, 3))
        assert frame.resolve(None, "b") == 2

    def test_unqualified_ambiguous_raises(self):
        frame = RowFrame(self.columns, (1, 2, 3))
        with pytest.raises(ExecutionError):
            frame.resolve(None, "a")

    def test_outer_chain(self):
        outer = RowFrame([BoundColumn("o", "x")], (9,))
        frame = RowFrame(self.columns, (1, 2, 3), outer=outer)
        assert frame.resolve("o", "x") == 9
        assert frame.resolve(None, "x") == 9

    def test_unknown_raises(self):
        frame = RowFrame(self.columns, (1, 2, 3))
        with pytest.raises(ExecutionError):
            frame.resolve(None, "zzz")


class TestLikePatterns:
    @pytest.mark.parametrize(
        "pattern,text,expected",
        [
            ("a%", "apple", True),
            ("a%", "banana", False),
            ("%an%", "banana", True),
            ("_at", "cat", True),
            ("_at", "cart", False),
            ("100\\%", "100\\x", True),  # backslash is literal in our LIKE
            ("", "", True),
            ("%", "anything", True),
            ("A%", "apple", True),  # case-insensitive, SQLite-style
        ],
    )
    def test_patterns(self, pattern, text, expected):
        assert bool(like_to_regex(pattern).match(text)) == expected


class TestThreeValuedLogic:
    @pytest.fixture()
    def db(self):
        db = Database.from_ddl("nulls", "CREATE TABLE t (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO t VALUES (1, NULL), (NULL, 2), (3, 4)")
        return db

    def test_and_with_null(self, db):
        # NULL AND FALSE is FALSE; NULL AND TRUE is UNKNOWN → filtered.
        rows = db.query("SELECT a FROM t WHERE a > 0 AND b > 0").rows
        assert rows == [(3,)]

    def test_or_with_null(self, db):
        # TRUE OR NULL is TRUE.
        rows = db.query("SELECT b FROM t WHERE b = 2 OR a > 99").rows
        assert rows == [(2,)]

    def test_not_null_is_null(self, db):
        rows = db.query("SELECT a FROM t WHERE NOT (b > 0)").rows
        assert rows == []  # rows with b NULL stay unknown under NOT too

    def test_arithmetic_with_null(self, db):
        rows = db.query("SELECT a + b FROM t").rows
        assert rows == [(None,), (None,), (7,)]

    def test_in_list_with_null_member(self, db):
        # 3 IN (4, NULL) is UNKNOWN, not FALSE → NOT IN also filters it.
        rows = db.query("SELECT a FROM t WHERE a NOT IN (4, NULL)").rows
        assert rows == []

    def test_coalesce_recovers(self, db):
        rows = db.query("SELECT COALESCE(a, 0) + COALESCE(b, 0) FROM t").rows
        assert rows == [(1,), (2,), (7,)]


class TestArithmetic:
    @pytest.fixture()
    def db(self):
        return Database.from_ddl("calc", "CREATE TABLE one (x INTEGER)")

    def test_integer_narrowing(self, db):
        assert db.query("SELECT 2 + 3").scalar() == 5
        assert isinstance(db.query("SELECT 2 + 3").scalar(), int)

    def test_division_is_float(self, db):
        assert db.query("SELECT 7 / 2").scalar() == pytest.approx(3.5)

    def test_modulo(self, db):
        assert db.query("SELECT 7 % 3").scalar() == 1

    def test_concat(self, db):
        assert db.query("SELECT 'a' || 'b'").scalar() == "ab"

    def test_unary_minus(self, db):
        assert db.query("SELECT -(2 + 3)").scalar() == -5

    def test_precedence(self, db):
        assert db.query("SELECT 2 + 3 * 4").scalar() == 14
        assert db.query("SELECT (2 + 3) * 4").scalar() == 20
