"""Typed edit operations on SELECT ASTs."""

import pytest

from repro.errors import EditError
from repro.sql import ast
from repro.sql.edits import (
    AddJoin,
    AddSelectItem,
    AddWhereConjunct,
    CompositeEdit,
    RemoveSelectItem,
    RemoveWhereConjunct,
    ReplaceAggregate,
    ReplaceColumn,
    ReplaceLiteral,
    ReplaceQuery,
    ReplaceTable,
    ReplaceWhereConjunct,
    SetDistinct,
    SetLimit,
    SetOrderBy,
)
from repro.sql.parser import parse_expression, parse_query
from repro.sql.printer import print_query


def q(sql):
    return parse_query(sql)


def apply(op, sql):
    return print_query(op.apply(q(sql)))


class TestReplaceColumn:
    def test_select_list_rename(self):
        out = apply(
            ReplaceColumn(old="name", new="song_name"),
            "SELECT name FROM singer WHERE name = 'X'",
        )
        assert out == "SELECT song_name FROM singer WHERE name = 'X'"

    def test_everywhere(self):
        out = apply(
            ReplaceColumn(old="name", new="song_name", everywhere=True),
            "SELECT name FROM singer WHERE name = 'X'",
        )
        assert out == "SELECT song_name FROM singer WHERE song_name = 'X'"

    def test_missing_column_raises(self):
        with pytest.raises(EditError):
            ReplaceColumn(old="nope", new="x").apply(q("SELECT a FROM t"))

    def test_original_untouched(self):
        original = q("SELECT name FROM t")
        ReplaceColumn(old="name", new="x").apply(original)
        assert print_query(original) == "SELECT name FROM t"


class TestReplaceLiteral:
    def test_exact_value(self):
        out = apply(
            ReplaceLiteral(old="active", new="inactive"),
            "SELECT a FROM t WHERE status = 'active'",
        )
        assert "'inactive'" in out

    def test_substring_year_in_dates(self):
        out = apply(
            ReplaceLiteral(old="2023", new="2024"),
            "SELECT COUNT(*) FROM t WHERE d >= '2023-01-01' AND d < '2023-02-01'",
        )
        assert "'2024-01-01'" in out and "'2024-02-01'" in out

    def test_case_insensitive_match(self):
        out = apply(
            ReplaceLiteral(old="ACTIVE", new="x"),
            "SELECT a FROM t WHERE s = 'active'",
        )
        assert "'x'" in out

    def test_missing_literal_raises(self):
        with pytest.raises(EditError):
            ReplaceLiteral(old="zzz", new="y").apply(q("SELECT a FROM t"))


class TestAggregates:
    def test_replace_function(self):
        out = apply(
            ReplaceAggregate("SUM", old_function="COUNT"),
            "SELECT COUNT(price) FROM t",
        )
        assert out == "SELECT SUM(price) FROM t"

    def test_set_distinct_flag(self):
        out = apply(
            ReplaceAggregate("COUNT", old_function="COUNT", distinct=True),
            "SELECT COUNT(country) FROM t",
        )
        assert out == "SELECT COUNT(DISTINCT country) FROM t"

    def test_distinct_on_star_raises(self):
        with pytest.raises(EditError):
            ReplaceAggregate("COUNT", distinct=True).apply(
                q("SELECT COUNT(*) FROM t")
            )

    def test_replace_argument(self):
        out = apply(
            ReplaceAggregate(
                "SUM", new_argument=parse_expression("sales"), old_function="COUNT"
            ),
            "SELECT COUNT(*) FROM t",
        )
        assert out == "SELECT SUM(sales) FROM t"

    def test_no_aggregate_raises(self):
        with pytest.raises(EditError):
            ReplaceAggregate("SUM").apply(q("SELECT a FROM t"))


class TestSelectItems:
    def test_add(self):
        out = apply(
            AddSelectItem(expression=parse_expression("age")),
            "SELECT name FROM t",
        )
        assert out == "SELECT name, age FROM t"

    def test_add_duplicate_raises(self):
        with pytest.raises(EditError):
            AddSelectItem(expression=parse_expression("name")).apply(
                q("SELECT name FROM t")
            )

    def test_remove(self):
        out = apply(
            RemoveSelectItem(column="description"),
            "SELECT name, description FROM t",
        )
        assert out == "SELECT name FROM t"

    def test_remove_only_item_raises(self):
        with pytest.raises(EditError):
            RemoveSelectItem(column="name").apply(q("SELECT name FROM t"))

    def test_remove_absent_raises(self):
        with pytest.raises(EditError):
            RemoveSelectItem(column="zzz").apply(q("SELECT a, b FROM t"))


class TestWhereEdits:
    def test_add_conjunct_to_empty(self):
        out = apply(
            AddWhereConjunct(condition=parse_expression("status = 'a'")),
            "SELECT name FROM t",
        )
        assert out == "SELECT name FROM t WHERE status = 'a'"

    def test_add_conjunct_appends(self):
        out = apply(
            AddWhereConjunct(condition=parse_expression("b = 2")),
            "SELECT name FROM t WHERE a = 1",
        )
        assert out == "SELECT name FROM t WHERE a = 1 AND b = 2"

    def test_add_duplicate_raises(self):
        with pytest.raises(EditError):
            AddWhereConjunct(condition=parse_expression("a = 1")).apply(
                q("SELECT x FROM t WHERE a = 1")
            )

    def test_remove_conjunct(self):
        def mentions_b(expr):
            return any(
                isinstance(n, ast.ColumnRef) and n.column == "b"
                for n in ast.walk_expressions(expr)
            )

        out = apply(
            RemoveWhereConjunct(matcher=mentions_b),
            "SELECT x FROM t WHERE a = 1 AND b = 2",
        )
        assert out == "SELECT x FROM t WHERE a = 1"

    def test_remove_last_conjunct_clears_where(self):
        out = apply(
            RemoveWhereConjunct(matcher=lambda e: True),
            "SELECT x FROM t WHERE a = 1",
        )
        assert out == "SELECT x FROM t"

    def test_replace_conjunct(self):
        out = apply(
            ReplaceWhereConjunct(
                matcher=lambda e: True,
                condition=parse_expression("a = 9"),
            ),
            "SELECT x FROM t WHERE a = 1",
        )
        assert out == "SELECT x FROM t WHERE a = 9"

    def test_replace_no_match_raises(self):
        with pytest.raises(EditError):
            ReplaceWhereConjunct(
                matcher=lambda e: False, condition=parse_expression("a = 9")
            ).apply(q("SELECT x FROM t WHERE a = 1"))


class TestClauseEdits:
    def test_set_order_by(self):
        op = SetOrderBy(
            [ast.OrderItem(ast.ColumnRef("age"), ast.SortOrder.DESC)]
        )
        assert apply(op, "SELECT a FROM t") == "SELECT a FROM t ORDER BY age DESC"
        assert op.feedback_type == "add"

    def test_clear_order_by(self):
        op = SetOrderBy([])
        assert apply(op, "SELECT a FROM t ORDER BY a ASC") == "SELECT a FROM t"
        assert op.feedback_type == "remove"

    def test_set_limit(self):
        assert apply(SetLimit(5), "SELECT a FROM t") == "SELECT a FROM t LIMIT 5"
        assert apply(SetLimit(None), "SELECT a FROM t LIMIT 5") == "SELECT a FROM t"

    def test_set_distinct(self):
        assert apply(SetDistinct(True), "SELECT a FROM t") == "SELECT DISTINCT a FROM t"
        with pytest.raises(EditError):
            SetDistinct(True).apply(q("SELECT DISTINCT a FROM t"))

    def test_replace_table(self):
        out = apply(
            ReplaceTable(old="dataset", new="segment"),
            "SELECT COUNT(*) FROM dataset",
        )
        assert out == "SELECT COUNT(*) FROM segment"

    def test_replace_missing_table_raises(self):
        with pytest.raises(EditError):
            ReplaceTable(old="x", new="y").apply(q("SELECT a FROM t"))

    def test_add_join(self):
        out = apply(
            AddJoin(
                table="u",
                condition=parse_expression("t.id = u.id"),
            ),
            "SELECT a FROM t",
        )
        assert out == "SELECT a FROM t JOIN u ON t.id = u.id"

    def test_replace_query(self):
        replacement = q("SELECT b FROM u")
        assert apply(ReplaceQuery(new_query=replacement), "SELECT a FROM t") == (
            "SELECT b FROM u"
        )

    def test_composite(self):
        op = CompositeEdit(
            operations=[
                SetDistinct(True),
                SetLimit(3),
            ]
        )
        out = apply(op, "SELECT a FROM t")
        assert out == "SELECT DISTINCT a FROM t LIMIT 3"
        assert "distinct" in op.describe()


class TestDescriptions:
    def test_all_ops_have_descriptions(self):
        ops = [
            ReplaceColumn(old="a", new="b"),
            ReplaceLiteral(old="x", new="y"),
            ReplaceAggregate("SUM"),
            AddSelectItem(expression=parse_expression("a")),
            RemoveSelectItem(column="a"),
            AddWhereConjunct(condition=parse_expression("a = 1")),
            RemoveWhereConjunct(matcher=lambda e: True),
            ReplaceWhereConjunct(
                matcher=lambda e: True, condition=parse_expression("a = 1")
            ),
            SetOrderBy([]),
            SetLimit(1),
            SetDistinct(True),
            ReplaceTable(old="a", new="b"),
            AddJoin(table="u", condition=parse_expression("a = b")),
            ReplaceQuery(new_query=q("SELECT 1")),
        ]
        for op in ops:
            assert isinstance(op.describe(), str) and op.describe()
