"""Execution-accuracy comparison semantics."""

from repro.sql.comparison import (
    execution_match,
    normalize_row,
    query_is_ordered,
    result_fingerprint,
    results_match,
    rows_equal,
    summarize_result,
)
from repro.sql.executor import QueryResult
from repro.sql.parser import parse_query


def make(rows, columns=None):
    if columns is None:
        columns = [f"c{i}" for i in range(len(rows[0]) if rows else 0)]
    return QueryResult(columns=columns, rows=rows)


class TestRowsEqual:
    def test_null_matches_null(self):
        assert rows_equal((None, 1), (None, 1))

    def test_float_tolerance(self):
        assert rows_equal((1.0000001,), (1.0,))

    def test_width_mismatch(self):
        assert not rows_equal((1,), (1, 2))


class TestResultsMatch:
    def test_equal_unordered(self):
        a = make([(1,), (2,), (3,)])
        b = make([(3,), (1,), (2,)])
        assert results_match(a, b, ordered=False)
        assert not results_match(a, b, ordered=True)

    def test_multiset_semantics(self):
        a = make([(1,), (1,), (2,)])
        b = make([(1,), (2,), (2,)])
        assert not results_match(a, b, ordered=False)

    def test_column_names_ignored(self):
        a = QueryResult(columns=["x"], rows=[(1,)])
        b = QueryResult(columns=["y"], rows=[(1,)])
        assert results_match(a, b)

    def test_int_float_equivalence(self):
        a = make([(2,)])
        b = make([(2.0,)])
        assert results_match(a, b)

    def test_bool_int_equivalence(self):
        assert normalize_row((True, False)) == (1, 0)

    def test_row_count_mismatch(self):
        assert not results_match(make([(1,)]), make([(1,), (1,)]))

    def test_empty_results_match(self):
        assert results_match(make([]), make([]))

    def test_greedy_float_fallback(self):
        a = make([(1.0, "x"), (2.0, "y")])
        b = make([(2.0 + 1e-9, "y"), (1.0 - 1e-9, "x")])
        assert results_match(a, b, ordered=False)


class TestOrderedDetection:
    def test_select_with_order(self):
        assert query_is_ordered(parse_query("SELECT a FROM t ORDER BY a"))

    def test_select_without_order(self):
        assert not query_is_ordered(parse_query("SELECT a FROM t"))

    def test_set_operation(self):
        assert query_is_ordered(
            parse_query("SELECT a FROM t UNION SELECT a FROM u ORDER BY a")
        )


class TestExecutionMatch:
    def test_matching_queries(self, music_db):
        assert execution_match(
            music_db,
            "SELECT Name FROM singer WHERE Age > 40",
            "SELECT Name FROM singer WHERE Age >= 41",
        )

    def test_mismatching_queries(self, music_db):
        assert not execution_match(
            music_db,
            "SELECT Name FROM singer WHERE Age > 40",
            "SELECT Name FROM singer",
        )

    def test_predicted_parse_error_is_incorrect(self, music_db):
        assert not execution_match(
            music_db, "SELECT COUNT(*) FROM singer", "SELEC oops"
        )

    def test_predicted_execution_error_is_incorrect(self, music_db):
        assert not execution_match(
            music_db, "SELECT COUNT(*) FROM singer", "SELECT x FROM nothere"
        )

    def test_order_sensitive_when_gold_ordered(self, music_db):
        assert not execution_match(
            music_db,
            "SELECT Name FROM singer ORDER BY Age",
            "SELECT Name FROM singer ORDER BY Age DESC",
        )


class TestHelpers:
    def test_summarize_empty(self):
        assert summarize_result(make([])) == "(no rows)"

    def test_summarize_truncates(self):
        result = make([(i,) for i in range(10)], columns=["n"])
        text = summarize_result(result, max_rows=3)
        assert "more rows" in text

    def test_fingerprint_order_insensitive(self):
        a = make([(1,), (2,)])
        b = make([(2,), (1,)])
        assert result_fingerprint(a) == result_fingerprint(b)

    def test_fingerprint_error_sentinel(self):
        assert result_fingerprint(None) == ("<error>",)
