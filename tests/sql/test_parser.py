"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse_expression, parse_query, parse_statement


class TestSelectCore:
    def test_simple_select(self):
        q = parse_query("SELECT a FROM t")
        assert isinstance(q, ast.Select)
        assert isinstance(q.items[0].expression, ast.ColumnRef)
        assert q.items[0].expression.column == "a"
        assert isinstance(q.source, ast.TableRef)
        assert q.source.name == "t"

    def test_select_star(self):
        q = parse_query("SELECT * FROM t")
        assert isinstance(q.items[0].expression, ast.Star)

    def test_qualified_star(self):
        q = parse_query("SELECT t.* FROM t")
        star = q.items[0].expression
        assert isinstance(star, ast.Star)
        assert star.table == "t"

    def test_distinct(self):
        assert parse_query("SELECT DISTINCT a FROM t").distinct

    def test_alias_with_as(self):
        q = parse_query("SELECT a AS x FROM t")
        assert q.items[0].alias == "x"

    def test_alias_without_as(self):
        q = parse_query("SELECT a x FROM t")
        assert q.items[0].alias == "x"

    def test_table_alias(self):
        q = parse_query("SELECT a FROM t AS u")
        assert q.source.alias == "u"
        assert q.source.binding == "u"

    def test_qualified_column(self):
        q = parse_query("SELECT t.a FROM t")
        ref = q.items[0].expression
        assert ref.table == "t"
        assert ref.column == "a"

    def test_where(self):
        q = parse_query("SELECT a FROM t WHERE a > 3")
        assert isinstance(q.where, ast.BinaryOp)
        assert q.where.op is ast.BinaryOperator.GT

    def test_group_by_and_having(self):
        q = parse_query(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1"
        )
        assert len(q.group_by) == 1
        assert q.having is not None

    def test_order_by_defaults_asc(self):
        q = parse_query("SELECT a FROM t ORDER BY a")
        assert q.order_by[0].order is ast.SortOrder.ASC

    def test_order_by_desc(self):
        q = parse_query("SELECT a FROM t ORDER BY a DESC, b ASC")
        assert q.order_by[0].order is ast.SortOrder.DESC
        assert q.order_by[1].order is ast.SortOrder.ASC

    def test_limit_offset(self):
        q = parse_query("SELECT a FROM t LIMIT 5 OFFSET 2")
        assert q.limit == 5
        assert q.offset == 2

    def test_select_without_from(self):
        q = parse_query("SELECT 1 + 1")
        assert q.source is None

    def test_trailing_semicolon_ok(self):
        assert isinstance(parse_query("SELECT 1;"), ast.Select)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT 1 FROM t nonsense extra")


class TestJoins:
    def test_inner_join(self):
        q = parse_query("SELECT a FROM t JOIN u ON t.id = u.id")
        assert isinstance(q.source, ast.Join)
        assert q.source.kind is ast.JoinKind.INNER

    def test_inner_keyword_join(self):
        q = parse_query("SELECT a FROM t INNER JOIN u ON t.id = u.id")
        assert q.source.kind is ast.JoinKind.INNER

    def test_left_join(self):
        q = parse_query("SELECT a FROM t LEFT JOIN u ON t.id = u.id")
        assert q.source.kind is ast.JoinKind.LEFT

    def test_left_outer_join(self):
        q = parse_query("SELECT a FROM t LEFT OUTER JOIN u ON t.id = u.id")
        assert q.source.kind is ast.JoinKind.LEFT

    def test_cross_join(self):
        q = parse_query("SELECT a FROM t CROSS JOIN u")
        assert q.source.kind is ast.JoinKind.CROSS
        assert q.source.condition is None

    def test_comma_join_is_cross(self):
        q = parse_query("SELECT a FROM t, u")
        assert q.source.kind is ast.JoinKind.CROSS

    def test_chained_joins(self):
        q = parse_query(
            "SELECT a FROM t JOIN u ON t.id = u.id JOIN v ON u.id = v.id"
        )
        assert isinstance(q.source, ast.Join)
        assert isinstance(q.source.left, ast.Join)

    def test_derived_table(self):
        q = parse_query("SELECT a FROM (SELECT a FROM t) AS sub")
        assert isinstance(q.source, ast.SubquerySource)
        assert q.source.alias == "sub"


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expression("1 + 2 * 3")
        assert e.op is ast.BinaryOperator.ADD
        assert e.right.op is ast.BinaryOperator.MUL

    def test_parentheses_override(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op is ast.BinaryOperator.MUL

    def test_and_or_precedence(self):
        e = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert e.op is ast.BinaryOperator.OR
        assert e.right.op is ast.BinaryOperator.AND

    def test_not(self):
        e = parse_expression("NOT a = 1")
        assert isinstance(e, ast.UnaryOp)
        assert e.op is ast.UnaryOperator.NOT

    def test_unary_minus(self):
        e = parse_expression("-5")
        assert isinstance(e, ast.UnaryOp)
        assert e.op is ast.UnaryOperator.NEG

    def test_between(self):
        e = parse_expression("a BETWEEN 1 AND 10")
        assert isinstance(e, ast.Between)
        assert not e.negated

    def test_not_between(self):
        e = parse_expression("a NOT BETWEEN 1 AND 10")
        assert e.negated

    def test_like(self):
        e = parse_expression("name LIKE '%smith%'")
        assert isinstance(e, ast.Like)

    def test_not_like(self):
        assert parse_expression("a NOT LIKE 'x'").negated

    def test_in_list(self):
        e = parse_expression("a IN (1, 2, 3)")
        assert isinstance(e, ast.InList)
        assert len(e.items) == 3

    def test_not_in_list(self):
        assert parse_expression("a NOT IN (1)").negated

    def test_in_subquery(self):
        e = parse_expression("a IN (SELECT b FROM t)")
        assert isinstance(e, ast.InSubquery)

    def test_exists(self):
        e = parse_expression("EXISTS (SELECT 1 FROM t)")
        assert isinstance(e, ast.Exists)

    def test_is_null(self):
        e = parse_expression("a IS NULL")
        assert isinstance(e, ast.IsNull)
        assert not e.negated

    def test_is_not_null(self):
        assert parse_expression("a IS NOT NULL").negated

    def test_scalar_subquery(self):
        e = parse_expression("(SELECT MAX(a) FROM t)")
        assert isinstance(e, ast.ScalarSubquery)

    def test_case_when(self):
        e = parse_expression("CASE WHEN a > 1 THEN 'big' ELSE 'small' END")
        assert isinstance(e, ast.CaseWhen)
        assert len(e.branches) == 1
        assert e.default is not None

    def test_case_requires_branch(self):
        with pytest.raises(ParseError):
            parse_expression("CASE END")

    def test_function_call(self):
        e = parse_expression("LOWER(name)")
        assert isinstance(e, ast.FunctionCall)
        assert e.name == "LOWER"

    def test_count_star(self):
        e = parse_expression("COUNT(*)")
        assert isinstance(e.args[0], ast.Star)

    def test_count_distinct(self):
        e = parse_expression("COUNT(DISTINCT a)")
        assert e.distinct

    def test_literals(self):
        assert parse_expression("NULL").value is None
        assert parse_expression("TRUE").value is True
        assert parse_expression("FALSE").value is False
        assert parse_expression("'txt'").value == "txt"
        assert parse_expression("7").value == 7
        assert parse_expression("7.5").value == 7.5

    def test_concat(self):
        e = parse_expression("a || b")
        assert e.op is ast.BinaryOperator.CONCAT

    def test_dangling_not_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a NOT")


class TestSetOperations:
    def test_union(self):
        q = parse_query("SELECT a FROM t UNION SELECT b FROM u")
        assert isinstance(q, ast.SetOperation)
        assert q.op is ast.SetOperator.UNION

    def test_union_all(self):
        q = parse_query("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert q.op is ast.SetOperator.UNION_ALL

    def test_intersect_and_except(self):
        assert (
            parse_query("SELECT a FROM t INTERSECT SELECT a FROM u").op
            is ast.SetOperator.INTERSECT
        )
        assert (
            parse_query("SELECT a FROM t EXCEPT SELECT a FROM u").op
            is ast.SetOperator.EXCEPT
        )

    def test_set_op_with_order_and_limit(self):
        q = parse_query(
            "SELECT a FROM t UNION SELECT a FROM u ORDER BY a LIMIT 3"
        )
        assert q.limit == 3
        assert len(q.order_by) == 1

    def test_left_associative_chain(self):
        q = parse_query(
            "SELECT a FROM t UNION SELECT a FROM u EXCEPT SELECT a FROM v"
        )
        assert q.op is ast.SetOperator.EXCEPT
        assert isinstance(q.left, ast.SetOperation)


class TestDdlDml:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, "
            "price REAL, FOREIGN KEY (pid) REFERENCES p(id))"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].primary_key
        assert stmt.foreign_keys[0].ref_table == "p"

    def test_create_table_varchar_length(self):
        stmt = parse_statement("CREATE TABLE t (name VARCHAR(255))")
        assert stmt.columns[0].type_name == "VARCHAR"

    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.rows) == 2

    def test_insert_with_columns(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ["a", "b"]

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = 'x' WHERE id = 3")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a < 0")
        assert isinstance(stmt, ast.Delete)

    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE t")
        assert isinstance(stmt, ast.DropTable)
        assert not stmt.if_exists

    def test_drop_table_if_exists(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert stmt.if_exists

    def test_soft_keyword_as_column_name(self):
        stmt = parse_statement("CREATE TABLE t (date DATE, key TEXT)")
        assert [c.name for c in stmt.columns] == ["date", "key"]

    def test_not_a_statement(self):
        with pytest.raises(ParseError):
            parse_statement("EXPLAIN SELECT 1")
