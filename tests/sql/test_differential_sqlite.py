"""Differential testing: our engine vs sqlite3 as an oracle.

sqlite3 (stdlib) is used ONLY as a test oracle — the library itself never
imports it. Randomly generated queries over a randomly populated table must
produce the same multiset of rows on both engines.
"""

from __future__ import annotations

import sqlite3

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sql.comparison import normalize_row
from repro.sql.engine import Database

_COLUMNS = ["id", "name", "grp", "score", "qty"]


def _build_pair(rows):
    """Create the same table in both engines."""
    ours = Database.from_ddl(
        "diff",
        "CREATE TABLE t (id INTEGER, name TEXT, grp TEXT, score REAL, qty INTEGER)",
    )
    theirs = sqlite3.connect(":memory:")
    theirs.execute(
        "CREATE TABLE t (id INTEGER, name TEXT, grp TEXT, score REAL, qty INTEGER)"
    )
    for row in rows:
        ours.data("t").insert(row)
        theirs.execute("INSERT INTO t VALUES (?, ?, ?, ?, ?)", row)
    return ours, theirs


_rows = st.lists(
    st.tuples(
        st.integers(0, 50),
        st.sampled_from(["ann", "bob", "cat", "dan"]),
        st.sampled_from(["x", "y", "z"]),
        st.one_of(st.none(), st.floats(0, 100, allow_nan=False).map(lambda f: round(f, 2))),
        st.one_of(st.none(), st.integers(-5, 5)),
    ),
    min_size=0,
    max_size=25,
)

_predicates = st.sampled_from(
    [
        "qty > 0",
        "score >= 50.0",
        "name = 'ann'",
        "grp IN ('x', 'y')",
        "name LIKE 'a%'",
        "qty IS NULL",
        "qty IS NOT NULL",
        "score BETWEEN 10.0 AND 60.0",
        "qty > 0 AND grp = 'x'",
        "qty < 0 OR name = 'bob'",
        "NOT (grp = 'z')",
        "id % 2 = 0",
    ]
)

_projections = st.sampled_from(
    [
        "name",
        "name, grp",
        "id + qty",
        "COUNT(*)",
        "COUNT(qty)",
        "COUNT(DISTINCT grp)",
        "SUM(qty)",
        "AVG(score)",
        "MIN(score), MAX(score)",
        "LOWER(name)",
        "LENGTH(name)",
    ]
)


@st.composite
def _queries(draw):
    projection = draw(_projections)
    where = ""
    if draw(st.booleans()):
        where = f" WHERE {draw(_predicates)}"
    group = ""
    aggregates = ("COUNT", "SUM", "AVG", "MIN", "MAX")
    if projection.startswith(aggregates) and draw(st.booleans()):
        group = " GROUP BY grp"
        projection = f"grp, {projection}"
    distinct = "DISTINCT " if (not group and draw(st.booleans())) else ""
    return f"SELECT {distinct}{projection} FROM t{where}{group}"


def _canon(rows):
    out = []
    for row in rows:
        normalized = []
        for value in normalize_row(tuple(row)):
            if isinstance(value, float):
                normalized.append(round(value, 6))
            else:
                normalized.append(value)
        out.append(tuple(normalized))
    return sorted(out, key=repr)


@given(rows=_rows, query=_queries())
@settings(max_examples=250, deadline=None)
def test_engine_matches_sqlite(rows, query):
    ours, theirs = _build_pair(rows)
    try:
        our_rows = ours.query(query).rows
        their_rows = theirs.execute(query).fetchall()
        assert _canon(our_rows) == _canon(their_rows), query
    finally:
        theirs.close()


@given(rows=_rows)
@settings(max_examples=60, deadline=None)
def test_order_by_matches_sqlite(rows):
    ours, theirs = _build_pair(rows)
    query = "SELECT id FROM t WHERE qty IS NOT NULL ORDER BY qty DESC, id ASC"
    try:
        our_rows = ours.query(query).rows
        their_rows = [tuple(r) for r in theirs.execute(query).fetchall()]
        assert our_rows == their_rows
    finally:
        theirs.close()


@given(rows=_rows)
@settings(max_examples=60, deadline=None)
def test_set_operations_match_sqlite(rows):
    ours, theirs = _build_pair(rows)
    query = (
        "SELECT name FROM t WHERE qty > 0 "
        "UNION SELECT name FROM t WHERE grp = 'x'"
    )
    try:
        assert _canon(ours.query(query).rows) == _canon(
            theirs.execute(query).fetchall()
        )
    finally:
        theirs.close()
