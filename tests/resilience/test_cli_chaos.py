"""End-to-end chaos runs through the CLI: determinism and tolerance."""

from __future__ import annotations

import re

import pytest

from repro.cli import main as cli_main

#: Documented tolerance (percentage points) between fault-free and
#: default-profile chaos correction rates at small scale (README,
#: "Resilience & chaos testing").
CHAOS_TOLERANCE_POINTS = 20.0


def _run(argv) -> str:
    import io
    from contextlib import redirect_stdout

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        exit_code = cli_main(argv)
    assert exit_code == 0
    return buffer.getvalue()


def _resilience_section(output: str) -> str:
    match = re.search(
        r"-- Resilience & degradation\n(.*?)(?:\n\n|\Z)", output, re.S
    )
    assert match, "run report must contain the resilience section"
    return match.group(1)


def _table2_percents(output: str) -> dict[str, tuple[float, float]]:
    """Measured (EP, SPIDER) percentages per method from the table."""
    rates = {}
    for line in output.splitlines():
        match = re.match(
            r"(Query Rewrite|FISQL \(- Routing\)|FISQL)\s*\|\s*([\d.]+|-)\s*\|"
            r"\s*(?:[\d.]+|-)\s*\|\s*([\d.]+|-)\s*\|", line
        )
        if match:
            method, ep, spider = match.groups()
            rates[method] = (
                float(ep) if ep != "-" else float("nan"),
                float(spider) if spider != "-" else float("nan"),
            )
    assert rates, "table 2 rows must be parseable"
    return rates


class TestChaosRun:
    def test_chaos_run_completes_and_reports_degradation(self, capsys):
        exit_code = cli_main(
            ["table2", "--scale", "small", "--inject-faults", "default",
             "--metrics"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        section = _resilience_section(out)
        assert "faults injected:" in section
        assert "retries:" in section

    def test_chaos_counters_deterministic_across_runs(self):
        argv = [
            "table2", "--scale", "small", "--inject-faults", "default",
            "--metrics",
        ]
        first = _resilience_section(_run(argv))
        second = _resilience_section(_run(argv))
        assert first == second

    def test_chaos_artifact_deterministic_across_runs(self):
        argv = ["table2", "--scale", "small", "--inject-faults", "default"]
        assert _run(argv) == _run(argv)

    def test_none_profile_is_byte_identical_to_plain_run(self):
        plain = _run(["table2", "--scale", "small"])
        wrapped = _run(
            ["table2", "--scale", "small", "--inject-faults", "none"]
        )
        assert wrapped == plain

    def test_chaos_rates_within_documented_tolerance(self):
        plain = _table2_percents(_run(["table2", "--scale", "small"]))
        chaos = _table2_percents(
            _run(["table2", "--scale", "small", "--inject-faults", "default"])
        )
        assert set(chaos) == set(plain)
        for method, (plain_ep, plain_spider) in plain.items():
            chaos_ep, chaos_spider = chaos[method]
            for before, after in ((plain_ep, chaos_ep), (plain_spider, chaos_spider)):
                if before != before:  # NaN: the dash cell
                    continue
                assert abs(after - before) <= CHAOS_TOLERANCE_POINTS, (
                    f"{method}: {before} -> {after}"
                )

    def test_bad_fault_profile_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["table2", "--scale", "small", "--inject-faults", "bogus"])
        assert excinfo.value.code == 2
        assert "unknown fault profile" in capsys.readouterr().err

    def test_retry_flags_alone_keep_artifacts_identical(self):
        plain = _run(["figure2", "--scale", "small"])
        wrapped = _run(
            ["figure2", "--scale", "small", "--llm-retries", "3",
             "--llm-timeout", "500"]
        )
        assert wrapped == plain
