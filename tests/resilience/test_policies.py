"""Retry/backoff, deadline budget, and circuit-breaker tests (virtual time)."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import CircuitOpenError, LLMError, TransientLLMError
from repro.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    ResilientChatModel,
    RetryPolicy,
    VirtualClock,
)

from tests.resilience.conftest import ScriptedLLM, StubLLM, make_prompt

SQL = "SELECT name FROM singer"


def resilient(inner, retry=None, breaker=None, clock=None):
    clock = clock or VirtualClock()
    return ResilientChatModel(
        inner,
        retry=retry or RetryPolicy(),
        breaker=breaker,
        clock=clock.now,
        sleep=clock.sleep,
    )


class TestVirtualClock:
    def test_sleep_advances(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        clock.sleep(1.5)
        assert clock.now() == 1.5
        with pytest.raises(ValueError):
            clock.sleep(-1)

    def test_tick_advances_per_reading(self):
        clock = VirtualClock(tick=0.001)
        assert clock.now() == 0.0
        assert clock.now() == pytest.approx(0.001)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_ms=0)

    def test_backoff_exponential_within_jitter_and_cap(self):
        policy = RetryPolicy(
            base_backoff_ms=100, max_backoff_ms=350, jitter=0.1
        )
        for retry_index, raw in ((1, 100.0), (2, 200.0), (3, 350.0)):
            wait = policy.backoff_ms(retry_index, sequence=retry_index)
            assert raw * 0.9 <= wait <= raw * 1.1

    def test_backoff_deterministic_per_seed(self):
        a = RetryPolicy(seed=5)
        b = RetryPolicy(seed=5)
        c = RetryPolicy(seed=6)
        waits_a = [a.backoff_ms(1, s) for s in range(10)]
        waits_b = [b.backoff_ms(1, s) for s in range(10)]
        waits_c = [c.backoff_ms(1, s) for s in range(10)]
        assert waits_a == waits_b
        assert waits_a != waits_c


class TestRetry:
    def test_transient_failures_absorbed(self):
        inner = ScriptedLLM([TransientLLMError, TransientLLMError, SQL])
        clock = VirtualClock()
        model = resilient(inner, retry=RetryPolicy(max_retries=2), clock=clock)
        completion = model.complete(make_prompt())
        assert completion.text == SQL
        assert inner.calls == 3
        assert model.retries == 2
        assert model.giveups == 0
        assert clock.now() > 0.0  # backoff consumed virtual time

    def test_gives_up_after_max_retries(self):
        inner = ScriptedLLM([TransientLLMError] * 3)
        model = resilient(inner, retry=RetryPolicy(max_retries=2))
        with pytest.raises(TransientLLMError):
            model.complete(make_prompt())
        assert inner.calls == 3
        assert model.giveups == 1

    def test_zero_retries_disables_retry(self):
        inner = ScriptedLLM([TransientLLMError])
        model = resilient(inner, retry=RetryPolicy(max_retries=0))
        with pytest.raises(TransientLLMError):
            model.complete(make_prompt())
        assert inner.calls == 1

    def test_non_transient_llm_error_not_retried(self):
        inner = ScriptedLLM([LLMError])
        model = resilient(inner, retry=RetryPolicy(max_retries=5))
        with pytest.raises(LLMError):
            model.complete(make_prompt())
        assert inner.calls == 1
        assert model.retries == 0

    def test_deadline_budget_stops_retrying(self):
        inner = ScriptedLLM([TransientLLMError] * 10)
        clock = VirtualClock()
        model = resilient(
            inner,
            retry=RetryPolicy(
                max_retries=10, base_backoff_ms=50, deadline_ms=60
            ),
            clock=clock,
        )
        with pytest.raises(TransientLLMError):
            model.complete(make_prompt())
        # Far fewer than 10 retries: the 60 ms budget ran out first, and
        # backoff waits were clipped so the clock never overshot it much.
        assert inner.calls < 5
        assert model.giveups == 1
        assert clock.now() * 1000.0 <= 60 + 1e-6

    def test_retry_metrics_emitted(self):
        obs.enable()
        inner = ScriptedLLM([TransientLLMError, SQL, TransientLLMError, TransientLLMError])
        model = resilient(inner, retry=RetryPolicy(max_retries=1))
        model.complete(make_prompt())
        with pytest.raises(TransientLLMError):
            model.complete(make_prompt())
        metrics = obs.get_metrics()
        assert metrics.counter_total("llm.retries") == 2
        assert metrics.counter_value("llm.giveups", reason="retries_exhausted") == 1
        assert len(metrics.histogram_values("llm.retry_backoff_ms")) == 2


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after_ms=0)

    def test_opens_after_threshold_and_fails_fast(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=2, reset_after_ms=100, clock=clock.now
        )
        inner = ScriptedLLM([TransientLLMError, TransientLLMError])
        model = resilient(
            inner, retry=RetryPolicy(max_retries=0), breaker=breaker,
            clock=clock,
        )
        for _ in range(2):
            with pytest.raises(TransientLLMError):
                model.complete(make_prompt())
        assert breaker.state == BREAKER_OPEN
        with pytest.raises(CircuitOpenError):
            model.complete(make_prompt())
        assert model.rejections == 1
        assert inner.calls == 2  # the rejected call never reached the backend

    def test_half_open_probe_closes_on_success(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_ms=100, clock=clock.now
        )
        inner = ScriptedLLM([TransientLLMError, SQL])
        model = resilient(
            inner, retry=RetryPolicy(max_retries=0), breaker=breaker,
            clock=clock,
        )
        with pytest.raises(TransientLLMError):
            model.complete(make_prompt())
        assert breaker.state == BREAKER_OPEN
        clock.sleep(0.2)  # past the cooldown: next call is the probe
        completion = model.complete(make_prompt())
        assert completion.text == SQL
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_reopens_on_failure(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_ms=100, clock=clock.now
        )
        inner = ScriptedLLM([TransientLLMError, TransientLLMError])
        model = resilient(
            inner, retry=RetryPolicy(max_retries=0), breaker=breaker,
            clock=clock,
        )
        with pytest.raises(TransientLLMError):
            model.complete(make_prompt())
        clock.sleep(0.2)
        with pytest.raises(TransientLLMError):
            model.complete(make_prompt())
        assert breaker.state == BREAKER_OPEN

    def test_half_open_allows_single_probe(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_ms=100, clock=clock.now
        )
        breaker.record_failure()
        clock.sleep(0.2)
        assert breaker.allow()  # the probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow()  # no second concurrent probe

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_state_transition_metrics(self):
        obs.enable()
        clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_ms=100, clock=clock.now
        )
        breaker.record_failure()  # closed -> open
        clock.sleep(0.2)
        breaker.allow()  # open -> half_open
        breaker.record_success()  # half_open -> closed
        metrics = obs.get_metrics()
        assert metrics.counter_value("llm.breaker.state", state=BREAKER_OPEN) == 1
        assert (
            metrics.counter_value("llm.breaker.state", state=BREAKER_HALF_OPEN)
            == 1
        )
        assert (
            metrics.counter_value("llm.breaker.state", state=BREAKER_CLOSED) == 1
        )

    def test_successful_calls_never_touch_the_breaker_state(self):
        breaker = CircuitBreaker(failure_threshold=1)
        model = resilient(StubLLM(), breaker=breaker)
        for _ in range(3):
            model.complete(make_prompt())
        assert breaker.state == BREAKER_CLOSED


class TestTimeUntilProbe:
    def test_none_while_closed(self):
        breaker = CircuitBreaker()
        assert breaker.time_until_probe() is None

    def test_counts_down_while_open(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_ms=1000, clock=clock.now
        )
        breaker.record_failure()
        remaining = breaker.time_until_probe()
        assert remaining == pytest.approx(1000.0)
        clock.sleep(0.4)
        assert breaker.time_until_probe() == pytest.approx(600.0)
        clock.sleep(1.0)
        assert breaker.time_until_probe() == 0.0

    def test_zero_while_half_open(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_ms=100, clock=clock.now
        )
        breaker.record_failure()
        clock.sleep(0.2)
        assert breaker.allow()
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.time_until_probe() == 0.0


class TestBreakerTransitionEvents:
    def test_transition_events_carry_name_and_labels(self, tmp_path):
        import json

        from repro.obs import StructuredLog

        obs.enable()
        log = StructuredLog(tmp_path / "events")
        obs.set_event_log(log)
        try:
            clock = VirtualClock()
            breaker = CircuitBreaker(
                failure_threshold=1,
                reset_after_ms=100,
                clock=clock.now,
                name="primary",
                labels={"backend": "primary"},
            )
            breaker.record_failure()
            clock.sleep(0.2)
            breaker.allow()
            breaker.record_success()
        finally:
            obs.set_event_log(None)
        events = []
        for path in log.files():
            for line in path.read_text().splitlines():
                if line:
                    events.append(json.loads(line))
        transitions = [
            event for event in events
            if event["event"] == "breaker.transition"
        ]
        states = [(e["from_state"], e["to_state"]) for e in transitions]
        assert states == [
            (BREAKER_CLOSED, BREAKER_OPEN),
            (BREAKER_OPEN, BREAKER_HALF_OPEN),
            (BREAKER_HALF_OPEN, BREAKER_CLOSED),
        ]
        assert all(e["breaker"] == "primary" for e in transitions)
        assert all(e["backend"] == "primary" for e in transitions)


class TestRetryAfterOverride:
    def test_retry_after_overrides_computed_backoff(self):
        clock = VirtualClock()
        inner = ScriptedLLM(
            [TransientLLMError("429", retry_after_ms=750.0), SQL]
        )
        model = resilient(
            inner,
            retry=RetryPolicy(max_retries=2, base_backoff_ms=100.0),
            clock=clock,
        )
        obs.enable()
        model.complete(make_prompt())
        histogram = obs.get_metrics().histogram_values("llm.retry_backoff_ms")
        assert histogram == [750.0]

    def test_retry_after_bounded_by_deadline_budget(self):
        clock = VirtualClock(tick=0.001)
        inner = ScriptedLLM(
            [TransientLLMError("429", retry_after_ms=60_000.0), SQL]
        )
        model = resilient(
            inner,
            retry=RetryPolicy(max_retries=2, deadline_ms=500.0),
            clock=clock,
        )
        obs.enable()
        model.complete(make_prompt())
        waited = obs.get_metrics().histogram_values("llm.retry_backoff_ms")
        assert len(waited) == 1
        assert waited[0] <= 500.0

    def test_absent_retry_after_uses_schedule(self):
        clock = VirtualClock()
        inner = ScriptedLLM([TransientLLMError, SQL])
        model = resilient(
            inner,
            retry=RetryPolicy(
                max_retries=2, base_backoff_ms=100.0, jitter=0.0
            ),
            clock=clock,
        )
        obs.enable()
        model.complete(make_prompt())
        histogram = obs.get_metrics().histogram_values("llm.retry_backoff_ms")
        assert histogram == [100.0]
