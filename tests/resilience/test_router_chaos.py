"""Chaos runs through the router: a flapping primary mid-correction-sweep.

The satellite scenario: a seeded fault profile flaps the primary backend
while a full table-2 correction sweep runs. The sweep must fail over to
the secondary, drop zero correction sessions, readmit the primary once
its probes pass, and — with the profile off — produce byte-identical
artifacts to the unrouted pipeline.
"""

from __future__ import annotations

import re

from repro import obs
from repro.cli import main as cli_main
from repro.eval.experiments import run_table2
from repro.eval.harness import build_context
from repro.eval.reporting import render_table2
from repro.llm.router import (
    RoutingChatModel,
    build_backend_pool,
    parse_backend_spec,
)
from repro.resilience import VirtualClock


def _run(argv) -> str:
    import io
    from contextlib import redirect_stdout

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        exit_code = cli_main(argv)
    assert exit_code == 0
    return buffer.getvalue()


def _resilience_section(output: str) -> str:
    match = re.search(
        r"-- Resilience & degradation\n(.*?)(?:\n\n|\Z)", output, re.S
    )
    assert match, "run report must contain the resilience section"
    return match.group(1)


def _artifact(output: str) -> str:
    """The table itself, before the run report's timing sections."""
    return output.split("-- Wall-clock by span")[0]


def _routed_table2(specs, readmit_after_ms=50.0, probe_on_path=True) -> tuple:
    """Run the table-2 sweep through a router; returns (output, pool)."""
    clock = VirtualClock(tick=0.001)
    pool = build_backend_pool(
        [parse_backend_spec(spec) for spec in specs],
        clock=clock.now,
        sleep=clock.sleep,
        seed=20250325,
        readmit_after_ms=readmit_after_ms,
    )
    router = RoutingChatModel(pool, probe_on_path=probe_on_path)
    context = build_context(scale="small", seed=20250325, llm=router)
    output = render_table2(run_table2(context))
    return output, pool


class TestFlappingPrimarySweep:
    def test_failover_readmission_and_no_dropped_sessions(self):
        obs.enable()
        try:
            output, pool = _routed_table2(
                [
                    "primary=simulated,fault=outage,retries=0,"
                    "breaker-reset-ms=100",
                    "secondary=simulated",
                ]
            )
            snapshot = obs.snapshot()
        finally:
            obs.disable()
        # The sweep rendered a full table despite the flapping primary.
        assert "FISQL" in output
        primary = pool["primary"].health
        secondary = pool["secondary"].health
        # Failover happened: the secondary carried real traffic.
        assert secondary.calls_ok > 0
        # The primary flapped: ejected at least once, then probed back in.
        assert primary.ejections >= 1
        assert primary.readmissions >= 1
        # Zero dropped correction sessions despite the flapping.
        aborted = sum(
            entry["value"]
            for entry in snapshot["counters"]
            if entry["name"] == "eval.correction_failures"
        )
        assert aborted == 0
        failovers = sum(
            entry["value"]
            for entry in snapshot["counters"]
            if entry["name"] == "llm.backend"
            and entry["labels"].get("outcome") == "failover"
        )
        assert failovers >= 1

    def test_flapping_sweep_is_deterministic(self):
        specs = [
            "primary=simulated,fault=outage,retries=0,breaker-reset-ms=100",
            "secondary=simulated",
        ]
        first_output, first_pool = _routed_table2(specs)
        second_output, second_pool = _routed_table2(specs)
        assert first_output == second_output
        first_health = first_pool.health_snapshot()
        second_health = second_pool.health_snapshot()
        assert first_health == second_health

    def test_fault_free_router_is_byte_identical_to_plain_pipeline(self):
        plain_context = build_context(scale="small", seed=20250325)
        plain = render_table2(run_table2(plain_context))
        routed, pool = _routed_table2(["only=simulated"])
        assert routed == plain
        assert pool["only"].health.calls_failed == 0


class TestRoutedChaosCLI:
    ARGV = [
        "run", "table2", "--scale", "small", "--metrics",
        "--backend", "primary=simulated,fault=outage,retries=1",
        "--backend", "secondary=simulated",
    ]

    def test_routed_chaos_run_reports_failover(self):
        out = _run(self.ARGV)
        match = re.search(
            r"backend failovers: (\d+)", out
        )
        assert match and int(match.group(1)) >= 1
        assert "backend ejections:" in out
        assert "correction sessions aborted" not in out

    def test_routed_chaos_run_deterministic(self):
        # Wall-clock spans vary run to run; the artifact and the
        # resilience counters (failovers, ejections, per-backend
        # outcomes) must not.
        first, second = _run(self.ARGV), _run(self.ARGV)
        assert _artifact(first) == _artifact(second)
        assert _resilience_section(first) == _resilience_section(second)

    def test_single_backend_run_byte_identical_to_plain(self):
        plain = _run(["run", "table2", "--scale", "small"])
        routed = _run(
            ["run", "table2", "--scale", "small",
             "--backend", "only=simulated"]
        )
        assert routed == plain

    def test_inject_faults_conflicts_with_backend(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            cli_main(
                ["run", "table2", "--scale", "small",
                 "--inject-faults", "default",
                 "--backend", "a=simulated"]
            )
        assert "conflicts" in capsys.readouterr().err
