"""Fault profile + deterministic fault-injection tests."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import (
    LLMTimeoutError,
    RateLimitError,
    TransientLLMError,
)
from repro.resilience import (
    FAULT_PROFILES,
    FaultInjectingChatModel,
    FaultProfile,
    resolve_fault_profile,
)

from tests.resilience.conftest import StubLLM, make_prompt


class TestFaultProfile:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultProfile(timeout_rate=-0.1)
        with pytest.raises(ValueError):
            FaultProfile(timeout_rate=1.2)
        with pytest.raises(ValueError):
            FaultProfile(timeout_rate=0.6, transient_rate=0.6)

    def test_combined_rate(self):
        profile = FaultProfile(timeout_rate=0.1, empty_rate=0.2)
        assert profile.combined_rate == pytest.approx(0.3)

    def test_fault_for_band_layout(self):
        profile = FaultProfile(
            timeout_rate=0.1,
            transient_rate=0.1,
            rate_limit_rate=0.1,
            empty_rate=0.1,
            truncate_rate=0.1,
        )
        assert profile.fault_for(0.05) == "timeout"
        assert profile.fault_for(0.15) == "transient"
        assert profile.fault_for(0.25) == "rate_limit"
        assert profile.fault_for(0.35) == "empty"
        assert profile.fault_for(0.45) == "truncate"
        assert profile.fault_for(0.75) is None

    def test_default_profile_meets_chaos_floor(self):
        """The documented chaos baseline perturbs >= 10% of calls."""
        assert FAULT_PROFILES["default"].combined_rate >= 0.10


class TestResolveFaultProfile:
    def test_named_profile_with_seed(self):
        profile = resolve_fault_profile("default", seed=7)
        assert profile.seed == 7
        assert profile.timeout_rate == FAULT_PROFILES["default"].timeout_rate

    def test_key_value_spec(self):
        profile = resolve_fault_profile("timeout=0.1,empty=0.05", seed=3)
        assert profile.timeout_rate == pytest.approx(0.1)
        assert profile.empty_rate == pytest.approx(0.05)
        assert profile.transient_rate == 0.0
        assert profile.seed == 3

    def test_spec_seed_overrides_argument(self):
        profile = resolve_fault_profile("timeout=0.1,seed=42", seed=3)
        assert profile.seed == 42

    def test_unknown_name_and_key_raise(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            resolve_fault_profile("nope")
        with pytest.raises(ValueError, match="unknown fault profile key"):
            resolve_fault_profile("bogus=0.1")
        with pytest.raises(ValueError, match="malformed value"):
            resolve_fault_profile("timeout=lots")


def _run_sequence(profile: FaultProfile, calls: int) -> list[str]:
    """The observable outcome of each call: fault class name or text."""
    model = FaultInjectingChatModel(StubLLM(), profile)
    outcomes = []
    for _ in range(calls):
        try:
            completion = model.complete(make_prompt())
        except (LLMTimeoutError, RateLimitError, TransientLLMError) as error:
            outcomes.append(type(error).__name__)
        else:
            outcomes.append(completion.text)
    return outcomes


class TestFaultInjection:
    def test_zero_profile_is_passthrough(self, stub_llm):
        model = FaultInjectingChatModel(stub_llm, FaultProfile())
        for _ in range(50):
            assert model.complete(make_prompt()).text == stub_llm.text
        assert model.fault_counts == {}
        assert model.calls == 50

    def test_all_timeout_profile(self, stub_llm):
        model = FaultInjectingChatModel(
            stub_llm, FaultProfile(timeout_rate=1.0)
        )
        with pytest.raises(LLMTimeoutError):
            model.complete(make_prompt())
        assert stub_llm.calls == 0  # the backend never answered

    def test_empty_and_truncate_perturb_completions(self, stub_llm):
        empty = FaultInjectingChatModel(stub_llm, FaultProfile(empty_rate=1.0))
        assert empty.complete(make_prompt()).text == ""
        truncating = FaultInjectingChatModel(
            stub_llm, FaultProfile(truncate_rate=1.0)
        )
        garbled = truncating.complete(make_prompt()).text
        assert garbled != stub_llm.text
        assert garbled.endswith("...")

    def test_same_seed_same_fault_sequence(self):
        profile = FAULT_PROFILES["outage"]
        first = _run_sequence(profile, 200)
        second = _run_sequence(profile, 200)
        assert first == second
        assert any(outcome.endswith("Error") for outcome in first)

    def test_different_seeds_differ(self):
        profile = FAULT_PROFILES["outage"]
        from dataclasses import replace

        other = replace(profile, seed=1)
        assert _run_sequence(profile, 200) != _run_sequence(other, 200)

    def test_fault_counts_and_metrics(self, stub_llm):
        obs.enable()
        model = FaultInjectingChatModel(
            stub_llm, FaultProfile(rate_limit_rate=1.0)
        )
        for _ in range(5):
            with pytest.raises(RateLimitError):
                model.complete(make_prompt())
        assert model.fault_counts == {"rate_limit": 5}
        assert obs.get_metrics().counter_value(
            "llm.faults.injected", kind="rate_limit"
        ) == 5
