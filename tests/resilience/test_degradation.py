"""Graceful degradation: the loop survives a failing/garbling backend."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.nl2sql import Nl2SqlModel
from repro.core.session import CorrectionOutcome, FisqlPipeline
from repro.core.user import AnnotatorConfig, SimulatedAnnotator
from repro.datasets.base import Example
from repro.errors import CircuitOpenError, TransientLLMError
from repro.eval.metrics import evaluate_model
from repro.llm.interface import KIND_FEEDBACK, KIND_ROUTING, Completion
from repro.llm.simulated import SimulatedLLM


class _KindFailingLLM:
    """Delegates to SimulatedLLM except for the kinds told to fail."""

    def __init__(self, fail_kinds, error=TransientLLMError):
        self._inner = SimulatedLLM()
        self._fail_kinds = set(fail_kinds)
        self._error = error

    def complete(self, prompt):
        if prompt.kind in self._fail_kinds:
            raise self._error(f"injected failure for {prompt.kind}")
        return self._inner.complete(prompt)


class _EmptyFeedbackLLM:
    def __init__(self):
        self._inner = SimulatedLLM()

    def complete(self, prompt):
        if prompt.kind == KIND_FEEDBACK:
            return Completion(text="   \n")
        return self._inner.complete(prompt)


@pytest.fixture()
def perfect_annotator(aep_db):
    return SimulatedAnnotator(
        aep_db.schema, AnnotatorConfig(vague_rate=0.0, misaligned_rate=0.0)
    )


def year_example():
    return Example(
        example_id="year-1",
        db_id="experience_platform",
        question="How many segments were created in January?",
        gold_sql=(
            "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
            "'2024-01-01' AND createdtime < '2024-02-01'"
        ),
        trap_kind="default_year",
    )


YEAR_INITIAL = (
    "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
    "'2023-01-01' AND createdtime < '2023-02-01'"
)


def _correct(llm, aep_db, annotator, max_rounds=1, routing=True):
    pipeline = FisqlPipeline(
        model=Nl2SqlModel(llm=llm), llm=llm, routing=routing
    )
    return pipeline.correct(
        example=year_example(),
        database=aep_db,
        initial_sql=YEAR_INITIAL,
        annotator=annotator,
        max_rounds=max_rounds,
    )


class TestRoutingDegradation:
    def test_routing_failure_falls_back_to_generic_demos(
        self, aep_db, perfect_annotator
    ):
        obs.enable()
        llm = _KindFailingLLM({KIND_ROUTING})
        outcome = _correct(llm, aep_db, perfect_annotator)
        # The round survived without a routed type; the generic demo set
        # still fixes the year trap (as in the -Routing ablation).
        assert outcome.rounds, "round must still run"
        record = outcome.rounds[0]
        assert record.feedback_type is None
        assert any("routing failed" in note for note in record.notes)
        assert outcome.corrected
        metrics = obs.get_metrics()
        assert metrics.counter_value("resilience.degraded", stage="routing") == 1

    def test_breaker_open_routing_degrades_too(self, aep_db, perfect_annotator):
        llm = _KindFailingLLM({KIND_ROUTING}, error=CircuitOpenError)
        outcome = _correct(llm, aep_db, perfect_annotator)
        assert outcome.rounds
        assert outcome.rounds[0].feedback_type is None


class TestRegenerationDegradation:
    def test_failed_regeneration_keeps_previous_sql(
        self, aep_db, perfect_annotator
    ):
        obs.enable()
        llm = _KindFailingLLM({KIND_FEEDBACK})
        outcome = _correct(llm, aep_db, perfect_annotator, max_rounds=2)
        assert not outcome.corrected
        assert len(outcome.rounds) == 2  # the session kept going
        for record in outcome.rounds:
            assert record.degraded
            assert not record.corrected
            assert record.sql_after == record.sql_before == YEAR_INITIAL
            assert any("kept previous SQL" in note for note in record.notes)
        metrics = obs.get_metrics()
        assert (
            metrics.counter_value("resilience.degraded", stage="regeneration")
            == 2
        )

    def test_empty_completion_is_a_degraded_round(
        self, aep_db, perfect_annotator
    ):
        obs.enable()
        llm = _EmptyFeedbackLLM()
        outcome = _correct(llm, aep_db, perfect_annotator)
        record = outcome.rounds[0]
        assert record.degraded
        assert record.sql_after == YEAR_INITIAL
        assert any("empty completion" in note for note in record.notes)
        metrics = obs.get_metrics()
        assert metrics.counter_total("correction.empty_completions") == 1
        assert (
            metrics.counter_value(
                "resilience.degraded", stage="empty_completion"
            )
            == 1
        )


class TestEvaluationDegradation:
    def test_evaluate_model_skips_and_records(self, aep_suite):
        obs.enable()
        benchmark, _demos = aep_suite
        dead_model = Nl2SqlModel(llm=_KindFailingLLM({"nl2sql"}))
        examples = benchmark.examples[:5]
        report = evaluate_model(dead_model, benchmark, examples=examples)
        assert report.total == 5
        assert report.correct == 0
        assert report.failed == 5
        assert all(record.failed for record in report.records)
        assert all(record.predicted_sql == "" for record in report.records)
        assert len(report.failures()) == 5
        metrics = obs.get_metrics()
        assert metrics.counter_total("eval.skipped_examples") == 5

    def test_failed_predictions_are_not_correctable_errors(self, aep_suite):
        """Skip-and-record examples drop out of the annotated error set
        (there is no SQL to give feedback on)."""
        benchmark, _demos = aep_suite
        dead_model = Nl2SqlModel(llm=_KindFailingLLM({"nl2sql"}))
        report = evaluate_model(
            dead_model, benchmark, examples=benchmark.examples[:3]
        )
        from repro.sql.parser import parse_query
        from repro.errors import SqlError

        for record in report.errors():
            with pytest.raises(SqlError):
                parse_query(record.predicted_sql)


class TestOutcomeBookkeeping:
    def test_failure_outcome_counts_as_uncorrected(self):
        from repro.eval.metrics import correction_rate

        outcomes = [
            CorrectionOutcome(example_id="a", corrected_round=1),
            CorrectionOutcome(
                example_id="b",
                corrected_round=None,
                failure="TransientLLMError: boom",
            ),
        ]
        assert correction_rate(outcomes, within_rounds=1) == 50.0
