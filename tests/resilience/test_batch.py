"""Batch-aware fault injection and resilience policies."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import (
    CircuitOpenError,
    LLMError,
    TransientLLMError,
)
from repro.llm.interface import Completion
from repro.resilience import (
    CircuitBreaker,
    FaultInjectingChatModel,
    FaultProfile,
    ResilientChatModel,
    RetryPolicy,
    VirtualClock,
)

from tests.resilience.conftest import ScriptedLLM, StubLLM, make_prompt

SQL = "SELECT name FROM singer"


def resilient(inner, retry=None, breaker=None, clock=None):
    clock = clock or VirtualClock()
    return ResilientChatModel(
        inner,
        retry=retry or RetryPolicy(),
        breaker=breaker,
        clock=clock.now,
        sleep=clock.sleep,
    )


class TestFaultInjectionBatch:
    PROFILE = FaultProfile(
        timeout_rate=0.1, transient_rate=0.2, empty_rate=0.1, seed=7
    )

    def _sequential_outcomes(self, n: int):
        model = FaultInjectingChatModel(StubLLM(), self.PROFILE)
        outcomes = []
        for _ in range(n):
            try:
                outcomes.append(model.complete(make_prompt()))
            except LLMError as error:
                outcomes.append(error)
        return model, outcomes

    def test_batch_draws_same_fault_plan_as_sequential(self):
        n = 40
        seq_model, seq = self._sequential_outcomes(n)
        batch_model = FaultInjectingChatModel(StubLLM(), self.PROFILE)
        batched = batch_model.complete_batch_settled([make_prompt()] * n)

        assert [type(o) for o in batched] == [type(o) for o in seq]
        texts = lambda outcomes: [  # noqa: E731
            o.text for o in outcomes if isinstance(o, Completion)
        ]
        assert texts(batched) == texts(seq)
        assert batch_model.fault_counts == seq_model.fault_counts
        assert any(isinstance(o, LLMError) for o in batched)  # plan fired

    def test_strict_batch_propagates_first_fault(self):
        model = FaultInjectingChatModel(
            StubLLM(), FaultProfile(transient_rate=1.0)
        )
        with pytest.raises(TransientLLMError):
            model.complete_batch([make_prompt(), make_prompt()])


class TestResilientBatch:
    def test_per_item_retry_and_fatal(self):
        inner = ScriptedLLM([TransientLLMError, SQL, LLMError, SQL])
        model = resilient(inner, retry=RetryPolicy(max_retries=2))
        outcomes = model.complete_batch_settled([make_prompt()] * 3)
        # Round 1: item 0 transient, item 1 success, item 2 fatal.
        # Round 2: item 0 retried to success.
        assert outcomes[0].text == SQL
        assert outcomes[1].text == SQL
        assert isinstance(outcomes[2], LLMError)
        assert not isinstance(outcomes[2], TransientLLMError)
        assert model.retries == 1
        assert model.giveups == 0
        assert inner.calls == 4

    def test_retries_exhausted_settle_as_errors(self):
        inner = ScriptedLLM([TransientLLMError] * 6)
        model = resilient(inner, retry=RetryPolicy(max_retries=1))
        outcomes = model.complete_batch_settled([make_prompt()] * 3)
        assert all(isinstance(o, TransientLLMError) for o in outcomes)
        assert model.retries == 3
        assert model.giveups == 3

    def test_round_sleeps_max_backoff_not_sum(self):
        inner = ScriptedLLM([TransientLLMError] * 3 + [SQL] * 3)
        clock = VirtualClock()
        model = resilient(
            inner,
            retry=RetryPolicy(max_retries=1, base_backoff_ms=100, jitter=0.0),
            clock=clock,
        )
        outcomes = model.complete_batch_settled([make_prompt()] * 3)
        assert [o.text for o in outcomes] == [SQL] * 3
        # Three sequential calls would have slept 3 x 100 ms; the batch
        # overlaps the waits into one 100 ms round sleep.
        assert clock.now() == pytest.approx(0.1)
        assert model.retries == 3

    def test_shared_breaker_rejects_pending_items(self):
        inner = ScriptedLLM([TransientLLMError] * 3)
        breaker_clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=2, clock=breaker_clock.now
        )
        model = resilient(
            inner,
            retry=RetryPolicy(max_retries=3),
            breaker=breaker,
            clock=breaker_clock,
        )
        outcomes = model.complete_batch_settled([make_prompt()] * 3)
        # Round 1 trips the breaker; round 2's allow() checks reject all
        # three still-pending items without touching the inner model.
        assert all(isinstance(o, CircuitOpenError) for o in outcomes)
        assert model.rejections == 3
        assert inner.calls == 3

    def test_strict_batch_raises_first_error_by_index(self):
        inner = ScriptedLLM([SQL, LLMError])
        model = resilient(inner)
        with pytest.raises(LLMError):
            model.complete_batch([make_prompt(), make_prompt()])

    def test_counters_keep_sequential_names(self):
        obs.enable()
        inner = ScriptedLLM([TransientLLMError, SQL])
        model = resilient(inner, retry=RetryPolicy(max_retries=1))
        model.complete_batch_settled([make_prompt(kind="feedback")])
        metrics = obs.get_metrics()
        assert metrics.counter_value("llm.retries", kind="feedback") == 1
        assert len(metrics.histogram_values("llm.retry_backoff_ms")) == 1

    def test_empty_batch(self):
        assert resilient(StubLLM()).complete_batch_settled([]) == []
        assert resilient(StubLLM()).complete_batch([]) == []
