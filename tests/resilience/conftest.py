"""Resilience fixtures: stub models and obs-state hygiene."""

from __future__ import annotations

import pytest

from repro import obs
from repro.llm.interface import Completion, Prompt


class StubLLM:
    """A trivial inner model returning a fixed completion."""

    def __init__(self, text: str = "SELECT name FROM singer") -> None:
        self.text = text
        self.calls = 0

    def complete(self, prompt: Prompt) -> Completion:
        self.calls += 1
        return Completion(text=self.text)


class ScriptedLLM:
    """Raises/returns per a script: exception classes or completion texts."""

    def __init__(self, script: list) -> None:
        self._script = list(script)
        self.calls = 0

    def complete(self, prompt: Prompt) -> Completion:
        self.calls += 1
        if not self._script:
            raise AssertionError("ScriptedLLM script exhausted")
        step = self._script.pop(0)
        if isinstance(step, type) and issubclass(step, BaseException):
            raise step("scripted failure")
        if isinstance(step, BaseException):
            raise step
        return Completion(text=step)


@pytest.fixture()
def stub_llm() -> StubLLM:
    return StubLLM()


def make_prompt(kind: str = "nl2sql") -> Prompt:
    return Prompt(kind=kind, text="prompt text", payload={})


@pytest.fixture(autouse=True)
def _obs_disabled_after_each_test():
    """Tests may enable() freely; the global always ends the test disabled."""
    yield
    obs.disable()
