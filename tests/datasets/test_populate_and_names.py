"""Value pools and row population internals."""

import random

import pytest

from repro.datasets.names import (
    CURRENT_YEAR,
    MODEL_DEFAULT_YEAR,
    STATUS_POOLS,
    VALUE_POOLS,
    attribute_pool,
)
from repro.datasets.populate import make_date, make_entity_name, make_value
from repro.sql.types import DataType


class TestAttributePools:
    @pytest.mark.parametrize("category", ["person", "object", "event", "org"])
    def test_pool_nonempty_and_typed(self, category):
        pool = attribute_pool(category)
        assert len(pool) >= 8
        kinds = {spec.kind for spec in pool}
        assert {"status", "description", "date", "numeric"} <= kinds

    def test_category_pools_exist(self):
        for spec in attribute_pool("person"):
            if spec.kind == "category":
                assert spec.pool in VALUE_POOLS

    def test_numeric_ranges_sane(self):
        for category in ("person", "object", "event", "org"):
            for spec in attribute_pool(category):
                if spec.kind in ("numeric", "measure"):
                    assert spec.low < spec.high

    def test_measure_kind_present(self):
        assert any(s.kind == "measure" for s in attribute_pool("org"))


class TestMakeValue:
    def test_status_uses_pool(self):
        rng = random.Random(1)
        values, _phrase = STATUS_POOLS[0]
        for _ in range(20):
            spec = next(
                s for s in attribute_pool("object") if s.kind == "status"
            )
            assert make_value(rng, spec, values) in values

    def test_numeric_in_range(self):
        rng = random.Random(2)
        spec = next(s for s in attribute_pool("person") if s.column == "age")
        for _ in range(50):
            value = make_value(rng, spec)
            assert spec.low <= value <= spec.high
            assert isinstance(value, int)

    def test_real_rating(self):
        rng = random.Random(3)
        spec = next(
            s for s in attribute_pool("person")
            if s.dtype is DataType.REAL
        )
        value = make_value(rng, spec)
        assert isinstance(value, float)

    def test_date_iso_format(self):
        rng = random.Random(4)
        for _ in range(50):
            date = make_date(rng)
            year, month, day = date.split("-")
            assert int(year) in (MODEL_DEFAULT_YEAR, CURRENT_YEAR)
            assert 1 <= int(month) <= 12
            assert 1 <= int(day) <= 28

    def test_unknown_kind_raises(self):
        from repro.datasets.names import AttrSpec

        rng = random.Random(5)
        with pytest.raises(ValueError):
            make_value(rng, AttrSpec("x", "x", DataType.TEXT, "mystery"))

    def test_entity_names(self):
        rng = random.Random(6)
        person = make_entity_name(rng, "person")
        thing = make_entity_name(rng, "object")
        assert " " in person and " " in thing

    def test_status_vague_phrases_defined(self):
        for values, phrase in STATUS_POOLS:
            assert len(values) >= 2
            assert phrase
