"""Dataset generator tests: shape, determinism, gold validity, traps."""

from collections import Counter

import pytest

from repro.datasets.aep import AEP_DB_ID, build_aep_database, generate_aep_suite
from repro.datasets.base import Benchmark, Example, demonstrations_from_examples
from repro.datasets.spider import generate_spider_suite
from repro.datasets.traps import ALL_TRAPS, trap_for, traps_for_dataset
from repro.sql.comparison import query_is_ordered, results_match
from repro.sql.parser import parse_query


class TestSpiderShape:
    def test_dev_split_size(self, small_suite):
        assert len(small_suite.dev_examples) == 90

    def test_database_count(self, small_suite):
        assert len(small_suite.benchmark.databases) == 16

    def test_tables_per_database_in_paper_range(self, small_suite):
        for gdb in small_suite.generated.values():
            assert 5 <= len(gdb.tables) <= 20

    def test_columns_per_table_in_paper_range(self, small_suite):
        for gdb in small_suite.generated.values():
            for meta in gdb.tables:
                assert 5 <= len(meta.table.columns) <= 10

    def test_tables_have_rows(self, small_suite):
        for db_id, gdb in small_suite.generated.items():
            for meta in gdb.tables:
                assert gdb.database.row_count(meta.table.name) >= 18

    def test_every_example_targets_existing_db(self, small_suite):
        for example in small_suite.dev_examples:
            assert example.db_id in small_suite.benchmark.databases

    def test_hardness_buckets(self, small_suite):
        buckets = {e.hardness for e in small_suite.dev_examples}
        assert buckets <= {"easy", "medium", "hard", "extra"}
        assert "easy" in buckets and "medium" in buckets


class TestGoldValidity:
    def test_all_dev_gold_queries_execute(self, small_suite):
        for example in small_suite.dev_examples:
            db = small_suite.benchmark.database(example.db_id)
            db.query(example.gold_sql)  # must not raise

    def test_all_train_gold_queries_execute(self, small_suite):
        for example in small_suite.train_examples:
            db = small_suite.benchmark.database(example.db_id)
            db.query(example.gold_sql)

    def test_trap_foils_execute_and_differ(self, small_suite):
        for example in small_suite.benchmark.trapped_examples():
            foil = example.trap_meta.get("foil_sql")
            if not foil:
                continue
            db = small_suite.benchmark.database(example.db_id)
            gold_ast = parse_query(example.gold_sql)
            gold = db.execute_ast(gold_ast)
            foil_result = db.query(foil)
            assert not results_match(
                gold, foil_result, ordered=query_is_ordered(gold_ast)
            ), example.example_id


def _suite_fingerprint(suite):
    return [
        (e.example_id, e.question, e.gold_sql, e.trap_kind)
        for e in suite.dev_examples
    ]


class TestDeterminism:
    def test_same_seed_same_suite(self):
        a = generate_spider_suite(n_databases=6, n_dev=30, n_train=10, seed=7)
        b = generate_spider_suite(n_databases=6, n_dev=30, n_train=10, seed=7)
        assert _suite_fingerprint(a) == _suite_fingerprint(b)

    def test_different_seed_different_suite(self):
        a = generate_spider_suite(n_databases=6, n_dev=30, n_train=10, seed=7)
        b = generate_spider_suite(n_databases=6, n_dev=30, n_train=10, seed=8)
        assert _suite_fingerprint(a) != _suite_fingerprint(b)

    def test_data_rows_deterministic(self):
        a = generate_spider_suite(n_databases=3, n_dev=10, n_train=5, seed=3)
        b = generate_spider_suite(n_databases=3, n_dev=10, n_train=5, seed=3)
        db_id = sorted(a.benchmark.databases)[0]
        table = a.generated[db_id].tables[0].table.name
        assert (
            a.benchmark.databases[db_id].data(table).rows
            == b.benchmark.databases[db_id].data(table).rows
        )


class TestTrapMix:
    def test_dev_has_trapped_and_clean(self, small_suite):
        kinds = Counter(e.trap_kind for e in small_suite.dev_examples)
        assert kinds[None] > 0
        assert sum(v for k, v in kinds.items() if k) > 0

    def test_trap_rate_in_band(self, small_suite):
        trapped = len(small_suite.benchmark.trapped_examples())
        rate = trapped / len(small_suite.dev_examples)
        assert 0.2 <= rate <= 0.5

    def test_train_traps_are_conventions_only(self, small_suite):
        allowed = {
            None,
            "extra_description",
            "count_distinct",
            "missing_distinct",
            "order_direction",
            "wrong_aggregate",
        }
        assert {e.trap_kind for e in small_suite.train_examples} <= allowed

    def test_trap_meta_for_default_year(self, small_suite):
        examples = [
            e for e in small_suite.dev_examples if e.trap_kind == "default_year"
        ]
        for example in examples:
            assert example.trap_meta["intended_year"] == 2024
            assert example.trap_meta["assumed_year"] == 2023


class TestTrapRegistry:
    def test_lookup(self):
        assert trap_for("default_year").feedback_type == "edit"

    def test_dataset_filters(self):
        spider_traps = {t.name for t in traps_for_dataset("spider")}
        aep_traps = {t.name for t in traps_for_dataset("aep")}
        assert "ambiguous_column" in spider_traps
        assert "jargon_join" in aep_traps
        assert "jargon_join" not in spider_traps

    def test_all_have_descriptions(self):
        for trap in ALL_TRAPS.values():
            assert trap.description
            assert trap.feedback_type in ("add", "remove", "edit")


class TestAep:
    def test_database_builds(self, aep_db):
        assert aep_db.schema.has_table("hkg_dim_segment")
        assert aep_db.row_count("hkg_dim_segment") == 20
        assert aep_db.row_count("hkg_fact_activation") > 0

    def test_traffic_size(self, aep_suite):
        benchmark, _demos = aep_suite
        assert len(benchmark.examples) == 70

    def test_gold_executes(self, aep_suite):
        benchmark, _demos = aep_suite
        for example in benchmark.examples:
            benchmark.database(example.db_id).query(example.gold_sql)

    def test_jargon_questions_present(self, aep_suite):
        benchmark, _demos = aep_suite
        questions = " ".join(e.question.lower() for e in benchmark.examples)
        assert "audiences" in questions
        assert "activated" in questions

    def test_demo_pool_has_glossary(self, aep_suite):
        _benchmark, demos = aep_suite
        merged = {}
        for demo in demos:
            merged.update(demo.glossary)
        assert merged.get("audiences") == "hkg_dim_segment"
        # 'enabled' is deliberately NOT covered (stays an Assistant error).
        assert "enabled" not in merged

    def test_determinism(self):
        a, _d1 = generate_aep_suite(n_questions=40)
        b, _d2 = generate_aep_suite(n_questions=40)
        assert [e.question for e in a.examples] == [e.question for e in b.examples]


class TestContainers:
    def test_example_serialization_roundtrip(self):
        example = Example(
            example_id="x",
            db_id="d",
            question="q?",
            gold_sql="SELECT 1",
            hardness="easy",
            trap_kind="default_year",
            trap_meta={"month": 3},
        )
        assert Example.from_dict(example.to_dict()) == example

    def test_benchmark_helpers(self, small_suite):
        benchmark = small_suite.benchmark
        example = benchmark.examples[0]
        assert benchmark.examples_for(example.db_id)
        assert len(benchmark) == len(benchmark.examples)
        with pytest.raises(Exception):
            benchmark.database("missing")

    def test_save_load_examples(self, small_suite, tmp_path):
        path = tmp_path / "examples.jsonl"
        small_suite.benchmark.save_examples(path)
        loaded = Benchmark.load_examples(path)
        assert loaded == small_suite.benchmark.examples

    def test_demonstrations_from_examples(self, small_suite):
        demos = demonstrations_from_examples(small_suite.train_examples[:5])
        assert len(demos) == 5
        assert demos[0].question == small_suite.train_examples[0].question
        assert "Question:" in demos[0].render()
