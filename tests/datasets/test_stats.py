"""Suite-statistics tests (the paper's stated benchmark shapes)."""

from repro.datasets.stats import benchmark_stats, matches_paper_shape, suite_stats
from repro.eval.experiments import Figure2Result, Figure8Result
from repro.eval.reporting import ascii_bar, render_figure2_chart, render_figure8_chart


class TestStats:
    def test_counts(self, small_suite):
        stats = suite_stats(small_suite)
        assert stats.n_databases == 16
        assert stats.n_examples == 90

    def test_paper_shape_holds(self, small_suite):
        stats = suite_stats(small_suite)
        assert matches_paper_shape(stats) == []

    def test_trap_rate_consistent(self, small_suite):
        stats = suite_stats(small_suite)
        trapped = len(small_suite.benchmark.trapped_examples())
        assert abs(stats.trap_rate - trapped / 90) < 1e-9

    def test_render(self, small_suite):
        text = suite_stats(small_suite).render()
        assert "databases: 16" in text
        assert "trap mix:" in text

    def test_aep_stats(self, aep_suite):
        benchmark, _demos = aep_suite
        stats = benchmark_stats(benchmark)
        assert stats.n_databases == 1
        assert stats.trap_mix["jargon_table"] > 0

    def test_violations_reported(self):
        from repro.datasets.stats import SuiteStats

        bad = SuiteStats(
            tables_per_db_min=2,
            tables_per_db_max=30,
            columns_per_table_min=2,
            columns_per_table_max=25,
        )
        violations = matches_paper_shape(bad)
        assert len(violations) == 2


class TestAsciiCharts:
    def test_bar_bounds(self):
        assert ascii_bar(0.0) == "·" * 40
        assert ascii_bar(100.0) == "█" * 40
        assert ascii_bar(150.0) == "█" * 40  # clamped
        assert len(ascii_bar(33.3)) == 40

    def test_figure2_chart(self):
        text = render_figure2_chart(
            Figure2Result(
                spider_accuracy=65.0, aep_accuracy=25.0,
                spider_total=1034, aep_total=110,
            )
        )
        assert "SPIDER" in text
        assert "█" in text
        lines = text.splitlines()[1:]
        assert lines[0].index("|") == lines[1].index("|")

    def test_figure8_chart(self):
        text = render_figure8_chart(
            Figure8Result(
                fisql_by_round=[45.0, 60.0],
                no_routing_by_round=[44.0, 59.0],
            )
        )
        assert "round 1" in text and "round 2" in text
        assert "(-Routing)" in text
