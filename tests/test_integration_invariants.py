"""Cross-module invariants over the small-scale end-to-end pipeline.

These are the properties a downstream user implicitly relies on, checked
over real (generated) workloads rather than hand-picked cases.
"""

import pytest

from repro.eval.experiments import _run_fisql, _run_query_rewrite
from repro.eval.harness import build_context
from repro.eval.metrics import evaluate_model
from repro.errors import SqlError
from repro.sql import ast
from repro.sql.parser import parse_query


@pytest.fixture(scope="module")
def context():
    return build_context(scale="small")


@pytest.fixture(scope="module")
def spider_errors(context):
    return context.error_set("spider")


@pytest.fixture(scope="module")
def fisql_outcomes(context, spider_errors):
    return _run_fisql(
        context, "spider", spider_errors, routing=True, highlights=False,
        max_rounds=2,
    )


class TestSqlValidityInvariants:
    def test_every_revision_parses(self, fisql_outcomes):
        """FISQL never emits unparseable SQL (edits are AST-level)."""
        for outcome in fisql_outcomes:
            for record in outcome.rounds:
                parse_query(record.sql_after)

    def test_every_revision_executes(self, context, spider_errors, fisql_outcomes):
        by_id = {r.example.example_id: r for r in spider_errors}
        for outcome in fisql_outcomes:
            example = by_id[outcome.example_id].example
            database = context.spider.benchmark.database(example.db_id)
            for record in outcome.rounds:
                database.query(record.sql_after)  # must not raise

    def test_noop_rounds_keep_sql_identical(self, fisql_outcomes):
        for outcome in fisql_outcomes:
            for record in outcome.rounds:
                if "could not interpret" in " ".join(record.notes):
                    assert record.sql_after == record.sql_before


class TestSessionInvariants:
    def test_correction_is_terminal(self, fisql_outcomes):
        """Once corrected, the session stops."""
        for outcome in fisql_outcomes:
            if outcome.corrected_round is not None:
                assert outcome.rounds[-1].round_index == outcome.corrected_round
                assert outcome.rounds[-1].corrected

    def test_corrected_by_is_monotone(self, fisql_outcomes):
        for outcome in fisql_outcomes:
            assert (not outcome.corrected_by(1)) or outcome.corrected_by(2)

    def test_round_indices_sequential(self, fisql_outcomes):
        for outcome in fisql_outcomes:
            indices = [r.round_index for r in outcome.rounds]
            assert indices == list(range(1, len(indices) + 1))

    def test_outcomes_align_with_error_set(self, spider_errors, fisql_outcomes):
        assert [o.example_id for o in fisql_outcomes] == [
            r.example.example_id for r in spider_errors
        ]


class TestDeterminismInvariants:
    def test_fisql_outcomes_reproducible(self, context, spider_errors):
        first = _run_fisql(
            context, "spider", spider_errors, routing=True, highlights=False,
            max_rounds=1,
        )
        second = _run_fisql(
            context, "spider", spider_errors, routing=True, highlights=False,
            max_rounds=1,
        )
        assert [o.corrected_round for o in first] == [
            o.corrected_round for o in second
        ]
        assert [
            [r.feedback_text for r in o.rounds] for o in first
        ] == [[r.feedback_text for r in o.rounds] for o in second]

    def test_query_rewrite_reproducible(self, context, spider_errors):
        first = _run_query_rewrite(context, "spider", spider_errors)
        second = _run_query_rewrite(context, "spider", spider_errors)
        assert [o.corrected for o in first] == [o.corrected for o in second]


class TestEvaluationInvariants:
    def test_predictions_always_parse(self, context):
        """The simulated model always emits syntactically valid SQL."""
        report = context.assistant_report("spider")
        for record in report.records:
            parse_query(record.predicted_sql)

    def test_hardness_breakdown_sums(self, context):
        report = context.assistant_report("spider")
        breakdown = report.by_hardness()
        assert sum(total for _c, total in breakdown.values()) == report.total
        assert sum(correct for correct, _t in breakdown.values()) == (
            report.correct
        )

    def test_trap_breakdown_traps_hurt(self, context):
        """Accuracy on untrapped questions exceeds overall trapped accuracy."""
        report = evaluate_model(
            context.zero_shot_model(), context.spider.benchmark
        )
        breakdown = report.by_trap_kind()
        untrapped_correct, untrapped_total = breakdown["untrapped"]
        trapped_correct = sum(
            c for kind, (c, _t) in breakdown.items() if kind != "untrapped"
        )
        trapped_total = sum(
            t for kind, (_c, t) in breakdown.items() if kind != "untrapped"
        )
        assert untrapped_correct / untrapped_total > 0.95
        assert trapped_correct / trapped_total < 0.10

    def test_feedback_round_notes_are_strings(self, fisql_outcomes):
        for outcome in fisql_outcomes:
            for record in outcome.rounds:
                assert all(isinstance(n, str) for n in record.notes)


class TestGoldAstShapes:
    def test_all_gold_queries_are_selects(self, context):
        for example in context.spider.benchmark.examples:
            assert isinstance(parse_query(example.gold_sql), ast.Select)

    def test_foil_always_differs_from_gold_text(self, context):
        for example in context.spider.benchmark.trapped_examples():
            foil = example.trap_meta.get("foil_sql")
            if foil:
                assert foil != example.gold_sql
