"""Persisted SPIDER/AEP suites: generate once, load on every warm start.

Suite generation is a pure function of ``(scale, seed)`` but dominates
cold-start time (``harness.suite_build_ms``). This module serializes the
full generated environment — SPIDER databases + dev/train splits, the AEP
benchmark, and its demonstration pool — through the same schema+rows JSON
as :mod:`repro.sql.io`, wrapped in the checksummed atomic envelope from
:mod:`repro.durability.atomic`.

Ordering is load-bearing: benchmark examples and database insertion order
must survive the round trip, so both are stored as JSON *arrays* (which
canonical JSON never reorders), never as objects keyed by id.

A corrupt or stale suite file is quarantined and the caller regenerates —
a warm start can be slow, but never wrong.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.datasets.base import Benchmark, Demonstration, Example
from repro.datasets.spider import SpiderSuite
from repro.durability.atomic import (
    quarantine_file,
    read_checksummed_json,
    write_checksummed_json,
)
from repro import obs
from repro.sql.io import database_from_dict, database_to_dict

#: Bump when the suite payload layout changes (old files regenerate).
SUITE_SCHEMA_VERSION = 1


def suite_path(directory: Union[str, Path], scale: str, seed: int) -> Path:
    """The canonical file for a ``(scale, seed)`` suite."""
    return Path(directory) / f"suite-{scale}-{seed}.json"


def _benchmark_payload(benchmark: Benchmark) -> dict:
    return {
        "name": benchmark.name,
        "databases": [
            database_to_dict(db) for db in benchmark.databases.values()
        ],
        "examples": [example.to_dict() for example in benchmark.examples],
    }


def _benchmark_from_payload(payload: dict) -> Benchmark:
    databases = {}
    for data in payload["databases"]:
        database = database_from_dict(data)
        databases[database.schema.name] = database
    return Benchmark(
        name=payload["name"],
        databases=databases,
        examples=[Example.from_dict(data) for data in payload["examples"]],
    )


def save_suites(
    directory: Union[str, Path],
    scale: str,
    seed: int,
    spider: SpiderSuite,
    aep_benchmark: Benchmark,
    aep_demos: list[Demonstration],
) -> Path:
    """Persist a generated environment for ``(scale, seed)``."""
    payload = {
        "version": SUITE_SCHEMA_VERSION,
        "scale": scale,
        "seed": seed,
        "spider": {
            "benchmark": _benchmark_payload(spider.benchmark),
            "train": [example.to_dict() for example in spider.train_examples],
        },
        "aep": {
            "benchmark": _benchmark_payload(aep_benchmark),
            "demos": [
                {
                    "question": demo.question,
                    "sql": demo.sql,
                    "db_id": demo.db_id,
                    "glossary": dict(demo.glossary),
                }
                for demo in aep_demos
            ],
        },
    }
    path = suite_path(directory, scale, seed)
    write_checksummed_json(path, payload)
    obs.count("suite.saved", scale=scale)
    return path


def load_suites(
    directory: Union[str, Path], scale: str, seed: int
) -> Optional[tuple[SpiderSuite, Benchmark, list[Demonstration]]]:
    """Load a persisted environment; None when absent, stale, or corrupt.

    The returned :class:`SpiderSuite` carries an empty ``generated`` map —
    the per-table generator bookkeeping is only needed *during* generation
    and is deliberately not persisted.
    """
    path = suite_path(directory, scale, seed)
    payload = read_checksummed_json(path, kind="suite")
    if payload is None:
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("version") != SUITE_SCHEMA_VERSION
        or payload.get("scale") != scale
        or payload.get("seed") != seed
    ):
        # Checksum was fine but the payload is from another schema version
        # or a mismatched (scale, seed): regenerate rather than trust it.
        quarantine_file(path)
        obs.count("durability.quarantined", kind="suite")
        return None
    try:
        spider = SpiderSuite(
            benchmark=_benchmark_from_payload(payload["spider"]["benchmark"]),
            train_examples=[
                Example.from_dict(data)
                for data in payload["spider"]["train"]
            ],
            generated={},
        )
        aep_benchmark = _benchmark_from_payload(payload["aep"]["benchmark"])
        aep_demos = [
            Demonstration(
                question=demo["question"],
                sql=demo["sql"],
                db_id=demo["db_id"],
                glossary=dict(demo.get("glossary", {})),
            )
            for demo in payload["aep"]["demos"]
        ]
    except (KeyError, TypeError, ValueError):
        quarantine_file(path)
        obs.count("durability.quarantined", kind="suite")
        return None
    obs.count("suite.loaded", scale=scale)
    return spider, aep_benchmark, aep_demos
