"""Atomic, checksummed JSON files: the one way anything here touches disk.

Three guarantees, shared by every persister in the stack (completion
cache, session store, journal segments, suite files):

1. **Atomic replace** — content is written to a temp file in the *same*
   directory, flushed and ``fsync``'d, then ``os.replace``'d over the
   target, and the directory entry is fsync'd too. A crash at any point
   leaves either the old file or the new file, never a torn mix.
2. **Checksum** — documents carry a SHA-256 over the canonical JSON of
   their payload. A reader that finds a mismatch knows the file is
   corrupt (bit rot, partial copy, manual edit) rather than trusting it.
3. **Quarantine** — corrupt files are renamed to ``<name>.corrupt`` (or
   ``.corrupt-N``) and the reader reports "absent". The data they held is
   re-derived by the caller; a bad file can never crash a loader or be
   half-loaded, and the evidence is kept on disk for inspection.

:func:`canonical_json` / :func:`canonical_key` are the same construction
:func:`repro.llm.dispatch.canonical_prompt_key` uses (sorted keys, compact
separators, SHA-256), so journal keys and cache keys hash identically for
identical material.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Union

from repro import obs
from repro.chaos.diskfaults import disk_fault

#: Checksum algorithm recorded in every checksummed document.
CHECKSUM_ALGORITHM = "sha256"


def canonical_json(payload: object) -> str:
    """The canonical JSON text for a payload (sorted keys, stable bytes)."""
    return json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=False,
        default=str,
    )


def canonical_key(payload: object) -> str:
    """A deterministic hex digest over a payload's canonical JSON."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry so a rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. directories are not openable on this platform
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: Union[str, Path], text: str, fsync: bool = True
) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the target's directory so the replace is a
    same-filesystem rename. With ``fsync`` (the default) the content hits
    the platters before the rename, and the directory entry after it —
    a crash leaves either the complete old file or the complete new one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        disk_fault("disk.atomic_write", tmp_path=tmp_path, target=path)
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        disk_fault("disk.replace", tmp_path=tmp_path, target=path)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    if fsync:
        _fsync_directory(path.parent)
    return path


def write_checksummed_json(
    path: Union[str, Path], payload: object, fsync: bool = True
) -> Path:
    """Atomically persist ``payload`` wrapped in a checksummed envelope.

    The document is itself canonical JSON, so two processes persisting
    equal payloads write byte-identical files.
    """
    document = {
        "algorithm": CHECKSUM_ALGORITHM,
        "checksum": canonical_key(payload),
        "payload": payload,
    }
    return atomic_write_text(path, canonical_json(document) + "\n", fsync=fsync)


def quarantine_file(path: Union[str, Path]) -> Optional[Path]:
    """Move a corrupt file aside as ``<name>.corrupt[-N]``; None on failure.

    Quarantined files no longer match ``*.json`` globs, so loaders stop
    seeing them, but the bytes stay on disk for post-mortems.
    """
    path = Path(path)
    target = path.with_name(path.name + ".corrupt")
    suffix = 0
    while target.exists():
        suffix += 1
        target = path.with_name(f"{path.name}.corrupt-{suffix}")
    try:
        os.replace(path, target)
    except OSError:
        return None
    return target


def read_checksummed_json(
    path: Union[str, Path], quarantine: bool = True, kind: str = "file"
) -> Optional[object]:
    """Load a checksummed document's payload; None when absent or corrupt.

    Corruption — unreadable bytes, non-JSON, a missing envelope, or a
    checksum mismatch — quarantines the file (when ``quarantine``) and
    counts ``durability.quarantined`` labelled by ``kind``. The caller
    re-derives the data; a torn file never crashes the loader.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    except OSError:
        return None
    try:
        document = json.loads(text)
    except ValueError:
        document = None
    if (
        isinstance(document, dict)
        and "payload" in document
        and isinstance(document.get("checksum"), str)
        and document.get("checksum") == canonical_key(document["payload"])
    ):
        return document["payload"]
    obs.count("durability.quarantined", kind=kind)
    if quarantine:
        quarantine_file(path)
    return None
