"""``repro.durability`` — crash-safe persistence for the FISQL stack.

:mod:`repro.resilience` (PR 2) covers *call-level* faults: a flaky LLM
backend is retried, deadlined, and circuit-broken. This package covers the
next fault domain up — **process death and torn files** — so that a killed
``fisql-repro run`` resumes instead of redoing hours of sweep work, and a
crash mid-write can never corrupt a cache, session, or journal file.

Layers:

* :mod:`repro.durability.atomic` — the shared atomic-write + checksum
  primitive. Every JSON file the stack persists (completion cache,
  session store, journal segments, suites) goes through temp-file +
  ``fsync`` + ``os.replace``; readers verify a canonical-JSON checksum and
  *quarantine* torn or corrupt files (rename to ``*.corrupt``) instead of
  crashing or silently mis-loading.
* :mod:`repro.durability.journal` — the write-ahead **run journal**: each
  completed eval item / correction session is appended as one fsync'd
  canonical-JSON record keyed by the same canonical-hash construction the
  completion cache uses. ``fisql-repro run --journal DIR --resume`` skips
  journaled items and merges to byte-identical artifacts.
* :mod:`repro.durability.suites` — persisted SPIDER/AEP suites: the
  generated benchmark (databases + splits + demos) serialized once so
  resumes and warm starts skip the dominant ``harness.suite_build_ms``.
* :mod:`repro.durability.crashpoints` — seeded deterministic crash
  injection (``FISQL_CRASH_POINT=journal.append:12`` kills the process
  with SIGKILL on the 12th journal append), the chaos half of the
  crash-recovery proof.
"""

from repro.durability.atomic import (
    atomic_write_text,
    canonical_json,
    canonical_key,
    quarantine_file,
    read_checksummed_json,
    write_checksummed_json,
)
from repro.durability.crashpoints import (
    CRASH_POINT_ENV,
    SimulatedCrash,
    arm_crash_point,
    crash_point,
    disarm_crash_points,
)
from repro.durability.journal import (
    JOURNAL_SCHEMA_VERSION,
    RunJournal,
    compact_journal,
    journal_stats,
)
from repro.durability.suites import (
    SUITE_SCHEMA_VERSION,
    load_suites,
    save_suites,
    suite_path,
)

__all__ = [
    "CRASH_POINT_ENV",
    "JOURNAL_SCHEMA_VERSION",
    "RunJournal",
    "SUITE_SCHEMA_VERSION",
    "SimulatedCrash",
    "arm_crash_point",
    "atomic_write_text",
    "canonical_json",
    "canonical_key",
    "compact_journal",
    "crash_point",
    "disarm_crash_points",
    "journal_stats",
    "load_suites",
    "quarantine_file",
    "read_checksummed_json",
    "save_suites",
    "suite_path",
    "write_checksummed_json",
]
