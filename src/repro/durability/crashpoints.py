"""Seeded crash injection: deterministic process death at named points.

The durability claims in this package ("resume after kill -9 merges to
byte-identical artifacts") are only provable if a test can kill the
process at a *chosen, repeatable* instant. Crash points are that
mechanism — the process-death analogue of
:class:`repro.resilience.FaultInjectingChatModel`'s call-level faults,
deterministic by hit count rather than by RNG draw.

Instrumented code calls ``crash_point("journal.append")`` at interesting
moments. By default that is a no-op costing one dict lookup. Two ways to
arm it:

* **Environment** (for subprocess tests and CI chaos jobs)::

      FISQL_CRASH_POINT=journal.append:12 fisql-repro run table2 --journal /tmp/j

  kills the process with SIGKILL on the 12th hit of ``journal.append`` —
  a real, unhandled kill -9: no atexit hooks, no flushes, no goodbye.

* **In-process** (for unit tests): :func:`arm_crash_point` with
  ``action="raise"`` raises :class:`SimulatedCrash` (a ``BaseException``
  so ordinary ``except Exception`` recovery paths cannot swallow it)
  instead of killing the interpreter running the test suite.
"""

from __future__ import annotations

import os
import signal
import threading
from typing import Optional

#: ``name:N`` — die on the Nth hit of crash point ``name``.
CRASH_POINT_ENV = "FISQL_CRASH_POINT"

#: Optional override for the env-armed action: ``kill9`` (default),
#: ``exit`` (``os._exit(137)``), or ``raise``.
CRASH_MODE_ENV = "FISQL_CRASH_MODE"

_VALID_ACTIONS = ("kill9", "exit", "raise")


class SimulatedCrash(BaseException):
    """An in-process stand-in for process death at a crash point.

    Deliberately a ``BaseException``: recovery code that catches
    ``Exception`` (or :class:`~repro.errors.ReproError`) must not be able
    to "survive" a simulated crash, or the test would prove nothing.
    """

    def __init__(self, point: str, hits: int) -> None:
        super().__init__(f"simulated crash at {point!r} (hit {hits})")
        self.point = point
        self.hits = hits


class _CrashState:
    __slots__ = ("lock", "hits", "armed")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.hits: dict[str, int] = {}
        # name -> (die_on_hit, action); programmatic arms shadow the env.
        self.armed: dict[str, tuple[int, str]] = {}


_STATE = _CrashState()


def arm_crash_point(name: str, on_hit: int = 1, action: str = "raise") -> None:
    """Arm a crash point programmatically (tests): die on hit ``on_hit``."""
    if on_hit < 1:
        raise ValueError(f"on_hit must be >= 1: {on_hit}")
    if action not in _VALID_ACTIONS:
        raise ValueError(f"unknown crash action {action!r}")
    with _STATE.lock:
        _STATE.armed[name] = (on_hit, action)
        _STATE.hits[name] = 0


def disarm_crash_points() -> None:
    """Disarm everything and reset hit counters (test teardown)."""
    with _STATE.lock:
        _STATE.armed.clear()
        _STATE.hits.clear()


def _env_armed(name: str) -> Optional[tuple[int, str]]:
    spec = os.environ.get(CRASH_POINT_ENV, "")
    if not spec:
        return None
    point, _, count = spec.partition(":")
    if point != name:
        return None
    try:
        on_hit = int(count) if count else 1
    except ValueError:
        return None
    action = os.environ.get(CRASH_MODE_ENV, "kill9")
    if action not in _VALID_ACTIONS:
        action = "kill9"
    return on_hit, action


def _die(action: str, name: str, hits: int) -> None:
    if action == "kill9":
        os.kill(os.getpid(), signal.SIGKILL)
        # SIGKILL is not deliverable on some platforms' threads; fall
        # through to the unconditional hard exit.
        os._exit(137)
    if action == "exit":
        os._exit(137)
    raise SimulatedCrash(name, hits)


def crash_point(name: str) -> None:
    """Maybe die here, per the armed configuration (no-op otherwise)."""
    with _STATE.lock:
        armed = _STATE.armed.get(name) or _env_armed(name)
        if armed is None:
            return
        hits = _STATE.hits.get(name, 0) + 1
        _STATE.hits[name] = hits
        on_hit, action = armed
        if hits != on_hit:
            return
    _die(action, name, hits)
