"""The write-ahead run journal: completed work items, fsync'd as they land.

A long sweep (`fisql-repro run all --scale full`) is thousands of
independent, deterministic work items: one prediction per benchmark
example, one correction session per annotated error. The journal makes
each of them durable the moment it completes:

* ``append(key, kind, value)`` writes one canonical-JSON line to the
  **active segment** (``segment-NNNN.jsonl``), flushes, and ``fsync``'s —
  the record survives kill -9 from that point on. Keys are
  :func:`~repro.durability.atomic.canonical_key` digests, the same
  construction the completion cache uses for prompts.
* When the active segment reaches ``segment_max_records`` it is
  **sealed**: rewritten as one checksummed canonical-JSON document
  (``segment-NNNN.sealed.json``) via atomic temp-file + ``os.replace``,
  and the raw ``.jsonl`` is removed. Sealed segments are verified on
  load; corrupt ones are quarantined and their records simply recomputed.
* A new process always opens a **fresh** active segment (max index + 1):
  it never appends after a possibly-torn tail from a crashed writer.

Loading tolerates every crash shape: a torn final line in an active
segment is skipped (everything before it replays), a half-written sealed
segment was never visible (the replace is atomic), and a corrupt sealed
file quarantines instead of raising.

Replay is key-based, not order-based: the resumed run recomputes the same
work list in the same order, and each item either replays from the journal
or is computed and appended — so the merged result is byte-identical to an
uninterrupted run regardless of which thread journaled what when.
"""

from __future__ import annotations

import json
import os
import re
import threading
from pathlib import Path
from typing import Optional, TextIO, Union

from repro import obs
from repro.chaos.diskfaults import disk_fault
from repro.durability.atomic import (
    canonical_json,
    quarantine_file,
    read_checksummed_json,
    write_checksummed_json,
)
from repro.durability.crashpoints import crash_point

#: Bump when the journal record layout changes (old journals are ignored).
JOURNAL_SCHEMA_VERSION = 1

#: Records per segment before the active file is sealed.
DEFAULT_SEGMENT_MAX_RECORDS = 256

_ACTIVE_RE = re.compile(r"^segment-(\d{4})(?:\.w(\d+))?\.jsonl$")
_SEALED_RE = re.compile(r"^segment-(\d{4})(?:\.w(\d+))?\.sealed\.json$")


class RunJournal:
    """Append-only, crash-safe store of completed run items.

    Thread-safe: evaluation shards and parallel correction loops append
    from worker threads. Replay hits and appends are counted both on the
    instance (``replayed``/``appended``, always available for the CLI
    summary) and as ``journal.*`` obs counters (when instrumented).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        segment_max_records: int = DEFAULT_SEGMENT_MAX_RECORDS,
        fsync: bool = True,
        worker: Optional[int] = None,
    ) -> None:
        if segment_max_records < 1:
            raise ValueError(
                f"segment_max_records must be >= 1: {segment_max_records}"
            )
        if worker is not None and worker < 0:
            raise ValueError(f"worker must be >= 0: {worker}")
        # Process-pool workers open their own journal on the shared
        # directory; the worker tag keeps their active segments from
        # colliding when two processes compute the same next index.
        self._worker_tag = "" if worker is None else f".w{worker}"
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._segment_max = segment_max_records
        self._fsync = fsync
        self._lock = threading.Lock()
        self._records: dict[str, dict] = {}
        self._active_handle: Optional[TextIO] = None
        self._active_records: list[dict] = []
        self.appended = 0
        self.replayed = 0
        self.sealed = 0
        self.quarantined = 0
        # A failed disk write (ENOSPC, EIO, read-only remount) flips the
        # journal into degraded read-only mode: the sweep keeps running
        # on in-memory records, nothing new is persisted, and the losses
        # are counted instead of crashing the run.
        self._degraded = False
        self.degraded_writes = 0
        self._next_index = self._load()

    # -- introspection --------------------------------------------------------

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def degraded(self) -> bool:
        """True once a disk fault flipped the journal read-only."""
        return self._degraded

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._records

    def stats(self) -> dict:
        with self._lock:
            return {
                "records": len(self._records),
                "appended": self.appended,
                "replayed": self.replayed,
                "sealed": self.sealed,
                "quarantined": self.quarantined,
                "degraded": self._degraded,
                "degraded_writes": self.degraded_writes,
            }

    def summary(self) -> str:
        """One status line for the CLI (stderr, not part of artifacts)."""
        stats = self.stats()
        line = (
            f"{stats['appended']} appended, {stats['replayed']} replayed, "
            f"{stats['records']} total records in {self._directory}"
        )
        if stats["degraded"]:
            line += (
                f" [DEGRADED: {stats['degraded_writes']} records not "
                "persisted after a disk fault]"
            )
        return line

    # -- load -----------------------------------------------------------------

    def _load(self) -> int:
        """Replay every durable record; returns the next segment index."""
        max_index = -1
        sealed_paths: list[tuple[int, Path]] = []
        active_paths: list[tuple[int, Path]] = []
        for path in self._directory.iterdir():
            match = _SEALED_RE.match(path.name)
            if match:
                sealed_paths.append((int(match.group(1)), path))
                continue
            match = _ACTIVE_RE.match(path.name)
            if match:
                active_paths.append((int(match.group(1)), path))
        for index, path in sorted(sealed_paths) + sorted(active_paths):
            max_index = max(max_index, index)
        for index, path in sorted(sealed_paths):
            payload = read_checksummed_json(path, kind="journal_segment")
            if (
                not isinstance(payload, dict)
                or payload.get("version") != JOURNAL_SCHEMA_VERSION
                or not isinstance(payload.get("records"), list)
            ):
                # read_checksummed_json already quarantined checksum-level
                # corruption; a valid envelope with a stale/invalid payload
                # is quarantined here.
                if payload is not None:
                    quarantine_file(path)
                    obs.count(
                        "durability.quarantined", kind="journal_segment"
                    )
                self.quarantined += 1
                continue
            for record in payload["records"]:
                self._absorb(record)
        for index, path in sorted(active_paths):
            self._load_active(path)
        return max_index + 1

    def _load_active(self, path: Path) -> None:
        """Replay an append-mode segment, tolerating a torn final line."""
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # A torn tail from a crashed writer. Everything before it
                # was newline-terminated and fsync'd; stop here.
                break
            self._absorb(record)

    def _absorb(self, record: object) -> None:
        if (
            isinstance(record, dict)
            and isinstance(record.get("key"), str)
            and isinstance(record.get("kind"), str)
            and "value" in record
        ):
            self._records[record["key"]] = record

    # -- replay ---------------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The stored record for a key (no counters), or None."""
        with self._lock:
            return self._records.get(key)

    def replay(self, key: str) -> Optional[dict]:
        """The stored record for a key, counting the hit; None on miss."""
        with self._lock:
            record = self._records.get(key)
            if record is None:
                return None
            self.replayed += 1
        obs.count("journal.replayed", kind=record["kind"])
        return record

    # -- append ---------------------------------------------------------------

    def append(self, key: str, kind: str, value: object) -> bool:
        """Durably record one completed item; False when already present.

        The line is flushed and fsync'd before returning: once ``append``
        comes back, kill -9 cannot lose the record.

        When a serve request context is active the correlation id is
        stamped onto the record (``request_id``); batch runs carry no
        context, so their journal bytes are unchanged.
        """
        payload = {"key": key, "kind": kind, "v": JOURNAL_SCHEMA_VERSION,
                   "value": value}
        request_id = obs.current_request_id()
        if request_id is not None:
            payload["request_id"] = request_id
        line = canonical_json(payload)
        with self._lock:
            if key in self._records:
                return False
            record = {"key": key, "kind": kind, "value": value}
            if request_id is not None:
                record["request_id"] = request_id
            durable = not self._degraded
            if durable:
                try:
                    disk_fault("disk.journal_append")
                    handle = self._ensure_active_locked()
                    handle.write(line + "\n")
                    handle.flush()
                    if self._fsync:
                        os.fsync(handle.fileno())
                except OSError as error:
                    durable = False
                    self._degrade_locked("append", error)
            # The run continues on the in-memory record either way; only
            # durability is lost, and that loss is counted.
            self._records[key] = record
            if durable:
                self._active_records.append(record)
                self.appended += 1
                crash_point("journal.append")
                if len(self._active_records) >= self._segment_max:
                    self._seal_active_locked()
            else:
                self.degraded_writes += 1
        if durable:
            obs.count("journal.appended", kind=kind)
            obs.event("journal.append", key=key, kind=kind)
        else:
            obs.count("durability.degraded", kind="journal")
        return True

    def _degrade_locked(self, op: str, error: OSError) -> None:
        """Flip to degraded read-only mode after a failed disk write."""
        first = not self._degraded
        self._degraded = True
        if self._active_handle is not None:
            try:
                self._active_handle.close()
            except OSError:
                pass
            self._active_handle = None
        if first:
            obs.event(
                "journal.degraded",
                op=op,
                error=f"{type(error).__name__}: {error}",
            )

    def absorb_worker_counts(self, appended: int = 0, replayed: int = 0) -> None:
        """Fold a worker process's append/replay counts into this instance.

        Process-pool shards journal through their own :class:`RunJournal`;
        the parent folds their counts in so the CLI summary stays accurate.
        """
        with self._lock:
            self.appended += appended
            self.replayed += replayed

    def _ensure_active_locked(self) -> TextIO:
        if self._active_handle is None:
            name = f"segment-{self._next_index:04d}{self._worker_tag}.jsonl"
            path = self._directory / name
            self._active_handle = open(path, "a", encoding="utf-8")
            self._active_path = path
            self._next_index += 1
        return self._active_handle

    def _seal_active_locked(self) -> None:
        """Rewrite the active segment as a checksummed sealed document."""
        if self._active_handle is None:
            return
        crash_point("journal.seal")
        self._active_handle.close()
        self._active_handle = None
        sealed_path = self._active_path.with_name(
            self._active_path.name.replace(".jsonl", ".sealed.json")
        )
        try:
            write_checksummed_json(
                sealed_path,
                {
                    "version": JOURNAL_SCHEMA_VERSION,
                    "records": list(self._active_records),
                },
                fsync=self._fsync,
            )
        except OSError as error:
            # The raw .jsonl stays on disk and replays on the next load,
            # so a failed seal loses nothing already fsync'd — but the
            # disk is clearly unwell: stop writing.
            self._degrade_locked("seal", error)
            obs.count("durability.degraded", kind="journal_seal")
            return
        # The sealed copy is durable; the raw segment is now redundant.
        try:
            os.unlink(self._active_path)
        except OSError:
            pass
        self._active_records = []
        self.sealed += 1
        obs.count("journal.segments_sealed")

    def seal(self) -> None:
        """Seal the current active segment now (e.g. at end of run)."""
        with self._lock:
            self._seal_active_locked()

    def close(self) -> None:
        """Close the active handle; records already on disk stay durable."""
        with self._lock:
            if self._active_handle is not None:
                self._active_handle.close()
                self._active_handle = None


def compact_journal(directory: Union[str, Path]) -> dict:
    """Merge all sealed segments into one checksummed segment.

    Long journal directories accumulate sealed segments forever (every 256
    records by default, plus one per worker process per sweep). Compaction
    rewrites them as a single sealed segment and removes the originals.
    It is crash-safe at every step:

    * The merged segment is written (atomic replace + fsync) at an index
      above every existing segment **before** any original is unlinked, so
      a crash mid-compaction leaves duplicates, never gaps.
    * Replay is key-based and later-segments-win, so duplicated records
      absorb idempotently on the next load — and the merged segment, being
      the highest index, wins ties exactly as the originals would have.
    * Active (``.jsonl``) segments are left untouched: they may have a
      live writer.

    Corrupt sealed segments quarantine exactly as they would on load.
    Returns a stats dict: ``segments`` merged, ``records`` kept,
    ``quarantined``, and the ``output`` filename (None when there was
    nothing to compact).
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"journal directory not found: {directory}")
    max_index = -1
    sealed_paths: list[tuple[int, Path]] = []
    for path in directory.iterdir():
        match = _SEALED_RE.match(path.name)
        if match:
            sealed_paths.append((int(match.group(1)), path))
            max_index = max(max_index, int(match.group(1)))
            continue
        match = _ACTIVE_RE.match(path.name)
        if match:
            max_index = max(max_index, int(match.group(1)))
    sealed_paths.sort()
    records: dict[str, dict] = {}
    sources: list[Path] = []
    quarantined = 0
    for _index, path in sealed_paths:
        payload = read_checksummed_json(path, kind="journal_segment")
        if (
            not isinstance(payload, dict)
            or payload.get("version") != JOURNAL_SCHEMA_VERSION
            or not isinstance(payload.get("records"), list)
        ):
            if payload is not None:
                quarantine_file(path)
                obs.count("durability.quarantined", kind="journal_segment")
            quarantined += 1
            continue
        for record in payload["records"]:
            if (
                isinstance(record, dict)
                and isinstance(record.get("key"), str)
                and isinstance(record.get("kind"), str)
                and "value" in record
            ):
                records[record["key"]] = record
        sources.append(path)
    stats = {
        "segments": len(sources),
        "records": len(records),
        "quarantined": quarantined,
        "output": None,
    }
    if len(sources) < 2:
        # Zero or one healthy segment: nothing to merge.
        return stats
    output = directory / f"segment-{max_index + 1:04d}.sealed.json"
    write_checksummed_json(
        output,
        {"version": JOURNAL_SCHEMA_VERSION, "records": list(records.values())},
        fsync=True,
    )
    for path in sources:
        try:
            os.unlink(path)
        except OSError:
            pass
    obs.count("journal.segments_compacted", n=len(sources))
    stats["output"] = output.name
    return stats


def journal_stats(directory: Union[str, Path]) -> dict:
    """Read-only record and segment counts for a journal directory.

    Unlike loading a :class:`RunJournal`, this never quarantines, opens a
    new segment, or otherwise writes — safe to point at a directory with a
    live writer. Records are counted by unique key, matching what replay
    would see.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"journal directory not found: {directory}")
    sealed = active = 0
    keys: set = set()
    for path in sorted(directory.iterdir()):
        if _SEALED_RE.match(path.name):
            sealed += 1
            payload = read_checksummed_json(path, kind="journal_segment")
            if isinstance(payload, dict) and isinstance(
                payload.get("records"), list
            ):
                for record in payload["records"]:
                    if isinstance(record, dict) and isinstance(
                        record.get("key"), str
                    ):
                        keys.add(record["key"])
        elif _ACTIVE_RE.match(path.name):
            active += 1
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    for line in handle:
                        try:
                            record = json.loads(line)
                        except json.JSONDecodeError:
                            continue  # torn tail from a crashed writer
                        if isinstance(record, dict) and isinstance(
                            record.get("key"), str
                        ):
                            keys.add(record["key"])
            except OSError:
                pass
    return {
        "sealed_segments": sealed,
        "active_segments": active,
        "records": len(keys),
    }
