"""Prompt builders reproducing the paper's prompt skeletons.

* :func:`nl2sql_prompt` — Figure 1's zero-shot skeleton, extended with the
  RAG demonstration block when demonstrations are supplied.
* :func:`feedback_prompt` — Figure 6's feedback-infused prompt (with the
  Figure 5 demonstration format for feedback examples).
* :func:`routing_prompt` — the feedback-type identification prompt.
* :func:`rewrite_prompt` — the Query Rewrite baseline's paraphrase prompt.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datasets.base import Demonstration
from repro.llm.interface import (
    KIND_FEEDBACK,
    KIND_NL2SQL,
    KIND_REWRITE,
    KIND_ROUTING,
    Prompt,
)
from repro.sql.schema import DatabaseSchema

NL2SQL_INSTRUCTIONS = (
    "You are a SQL expert. Given the database schema below, write a SQL "
    "query that answers the user's question. Return only the SQL query."
)

FEEDBACK_INSTRUCTIONS = (
    "You are a SQL expert. A SQL query you generated for the question "
    "below has received user feedback. Taking the feedback into account, "
    "rewrite the SQL query. Return only the SQL query."
)

ROUTING_INSTRUCTIONS = (
    "Classify the user's feedback on a SQL query into exactly one of three "
    "operation types: Add (the feedback asks for a SQL operation to be "
    "added), Remove (the feedback asks for an operation to be removed), or "
    "Edit (the feedback changes the arguments of an existing operation). "
    "Answer with a single word."
)

REWRITE_INSTRUCTIONS = (
    "Rewrite the user's question so that it is self-contained, merging in "
    "the information from their follow-up feedback. Return only the "
    "rewritten question."
)


def _render_demos(demos: Sequence[Demonstration]) -> str:
    if not demos:
        return ""
    blocks = [demo.render() for demo in demos]
    return "Here are some examples:\n\n" + "\n\n".join(blocks) + "\n\n"


def nl2sql_prompt(
    schema: DatabaseSchema,
    question: str,
    demos: Sequence[Demonstration] = (),
) -> Prompt:
    """Build the NL2SQL prompt (zero-shot when ``demos`` is empty)."""
    text = (
        f"{NL2SQL_INSTRUCTIONS}\n\n"
        f"Schema:\n{schema.ddl()}\n\n"
        f"{_render_demos(demos)}"
        f"Here is the question you need to answer:\n"
        f"Question: {question}\n"
        f"Query:"
    )
    return Prompt(
        kind=KIND_NL2SQL,
        text=text,
        payload={"schema": schema, "question": question, "demos": list(demos)},
    )


def render_feedback_demo(
    question: str, sql: str, feedback: str, revised_sql: str
) -> str:
    """Render one feedback demonstration in the Figure 5 format."""
    return (
        f"Question: {question}\n"
        f"Query: {sql}\n"
        f"The SQL query you have generated has received the following "
        f"feedback: {feedback}\n"
        f"Taking into account the feedback, please rewrite the SQL query.\n"
        f"Query: {revised_sql}"
    )


def feedback_prompt(
    schema: DatabaseSchema,
    question: str,
    previous_sql: str,
    feedback: str,
    demos: Sequence[Demonstration] = (),
    feedback_demos: Sequence[str] = (),
    feedback_type: Optional[str] = None,
    highlight: Optional[str] = None,
    context_key: str = "",
) -> Prompt:
    """Build the Figure 6 feedback-incorporation prompt.

    ``feedback_demos`` are pre-rendered Figure 5 blocks (retrieved per
    feedback type when routing is on). ``highlight`` is the SQL span the
    user marked, if any. ``context_key`` identifies the (example, round)
    pair for the simulated model's deterministic behaviour.
    """
    blocks = []
    if feedback_demos:
        blocks.append(
            "Here are examples of how to revise queries from feedback:\n\n"
            + "\n\n".join(feedback_demos)
        )
    highlight_line = (
        f"The user highlighted this part of the query: {highlight}\n"
        if highlight
        else ""
    )
    text = (
        f"{FEEDBACK_INSTRUCTIONS}\n\n"
        f"Schema:\n{schema.ddl()}\n\n"
        f"{_render_demos(demos)}"
        + ("\n\n".join(blocks) + "\n\n" if blocks else "")
        + f"Here is the question you need to answer:\n"
        f"Question: {question}\n"
        f"Query: {previous_sql}\n"
        f"The SQL query you have generated has received the following "
        f"feedback: {feedback}\n"
        f"{highlight_line}"
        f"Taking into account the feedback, please rewrite the SQL query.\n"
        f"Query:"
    )
    return Prompt(
        kind=KIND_FEEDBACK,
        text=text,
        payload={
            "schema": schema,
            "question": question,
            "previous_sql": previous_sql,
            "feedback": feedback,
            "demos": list(demos),
            "feedback_demos": list(feedback_demos),
            "feedback_type": feedback_type,
            "highlight": highlight,
            "context_key": context_key,
        },
    )


def routing_prompt(feedback: str, examples: Sequence[tuple[str, str]] = ()) -> Prompt:
    """Build the feedback-type identification prompt.

    ``examples`` are (feedback, label) few-shot pairs; the defaults in
    :data:`repro.core.feedback.FEEDBACK_TYPE_EXAMPLES` mirror Table 1.
    """
    shots = "\n".join(
        f"Feedback: {text}\nType: {label}" for text, label in examples
    )
    text = (
        f"{ROUTING_INSTRUCTIONS}\n\n"
        + (shots + "\n\n" if shots else "")
        + f"Feedback: {feedback}\nType:"
    )
    return Prompt(
        kind=KIND_ROUTING,
        text=text,
        payload={"feedback": feedback, "examples": list(examples)},
    )


def rewrite_prompt(question: str, feedback: str) -> Prompt:
    """Build the Query Rewrite baseline's merge prompt."""
    text = (
        f"{REWRITE_INSTRUCTIONS}\n\n"
        f"Question: {question}\n"
        f"Feedback: {feedback}\n"
        f"Rewritten question:"
    )
    return Prompt(
        kind=KIND_REWRITE,
        text=text,
        payload={"question": question, "feedback": feedback},
    )
