"""An OpenAI-compatible HTTP chat backend, plus an offline test double.

:class:`HttpChatModel` speaks the ``POST {base}/chat/completions`` wire
protocol over stdlib :mod:`http.client` — no third-party SDK, so the
repository stays dependency-free. Transport and protocol failures map
onto the :class:`~repro.errors.LLMError` taxonomy the resilience layer
already understands:

* connection refused / reset / DNS failure  -> ``TransientLLMError``
* local exhaustion (ENOSPC/EMFILE/ENOMEM)   -> ``LLMError`` (not retried)
* socket timeout                            -> ``LLMTimeoutError``
* HTTP 429 (``Retry-After`` honored)        -> ``RateLimitError``
* HTTP 5xx (``Retry-After`` honored on 503) -> ``TransientLLMError``
* other HTTP 4xx                            -> ``LLMError`` (not retried)
* malformed / truncated response body       -> ``TransientLLMError``

``Retry-After`` seconds ride the error as ``retry_after_ms``, which
:class:`~repro.resilience.ResilientChatModel` uses as that round's
backoff instead of the computed exponential schedule.

:class:`FakeOpenAIServer` is the in-process test double that keeps CI
fully offline: a real socket speaking the same wire format, with
deterministic canned completions and injectable failure modes (forced
status codes, ``Retry-After`` headers, response delays). It also runs
standalone (``python -m repro.llm.http_backend --port N``) so smoke
tests can kill and restart a backend process mid-run.
"""

from __future__ import annotations

import argparse
import errno
import hashlib
import http.client
import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.errors import (
    LLMError,
    LLMTimeoutError,
    RateLimitError,
    TransientLLMError,
)
from repro.llm.interface import ChatModel, Completion, Prompt

#: Default wire-protocol model name (the paper's backend).
DEFAULT_MODEL = "gpt-3.5-turbo"

#: OSErrors that mean *this host* is exhausted, not that the backend
#: hiccupped: out of disk, out of file descriptors (process or system),
#: out of memory. Retrying cannot help — the retry needs the same
#: resource — and hammering a suffocating host makes the exhaustion
#: worse, so these map to fatal ``LLMError`` instead of transient.
_LOCAL_EXHAUSTION_ERRNOS = frozenset(
    {errno.ENOSPC, errno.EMFILE, errno.ENFILE, errno.ENOMEM}
)


def parse_retry_after(value: Optional[str]) -> Optional[float]:
    """``Retry-After`` header seconds -> milliseconds (None when absent
    or malformed; HTTP-date form is not supported — treat as absent)."""
    if value is None:
        return None
    try:
        seconds = float(value.strip())
    except ValueError:
        return None
    if seconds < 0:
        return None
    return seconds * 1000.0


class HttpChatModel:
    """A :class:`ChatModel` over an OpenAI-compatible chat-completions API.

    The prompt's rendered ``text`` is sent as a single user message; the
    first choice's message content comes back as the completion text.
    One connection per call keeps the client thread-safe to share.
    """

    def __init__(
        self,
        base_url: str,
        model: str = DEFAULT_MODEL,
        api_key: Optional[str] = None,
        timeout_s: float = 30.0,
    ) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0: {timeout_s}")
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", "https") or not parts.hostname:
            raise ValueError(
                f"base_url must be http(s)://host[:port][/prefix]: "
                f"{base_url!r}"
            )
        self._scheme = parts.scheme
        self._host = parts.hostname
        self._port = parts.port or (443 if parts.scheme == "https" else 80)
        self._prefix = parts.path.rstrip("/")
        self._model = model
        self._api_key = api_key
        self._timeout_s = timeout_s

    @property
    def base_url(self) -> str:
        return f"{self._scheme}://{self._host}:{self._port}{self._prefix}"

    @property
    def model(self) -> str:
        return self._model

    def _connection(self) -> http.client.HTTPConnection:
        if self._scheme == "https":
            return http.client.HTTPSConnection(
                self._host, self._port, timeout=self._timeout_s
            )
        return http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout_s
        )

    def complete(self, prompt: Prompt) -> Completion:
        body = json.dumps(
            {
                "model": self._model,
                "messages": [{"role": "user", "content": prompt.text}],
                "temperature": 0,
            }
        ).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if self._api_key:
            headers["Authorization"] = f"Bearer {self._api_key}"
        connection = self._connection()
        try:
            connection.request(
                "POST",
                f"{self._prefix}/chat/completions",
                body=body,
                headers=headers,
            )
            response = connection.getresponse()
            status = response.status
            retry_after = parse_retry_after(response.getheader("Retry-After"))
            raw = response.read()
        except socket.timeout as error:
            raise LLMTimeoutError(
                f"backend {self.base_url} did not answer within "
                f"{self._timeout_s}s: {error}"
            ) from error
        except (ConnectionError, OSError, http.client.HTTPException) as error:
            if (
                isinstance(error, OSError)
                and error.errno in _LOCAL_EXHAUSTION_ERRNOS
            ):
                raise LLMError(
                    f"local resource exhaustion reaching {self.base_url}: "
                    f"{type(error).__name__}: {error}"
                ) from error
            raise TransientLLMError(
                f"cannot reach backend {self.base_url}: "
                f"{type(error).__name__}: {error}"
            ) from error
        finally:
            connection.close()
        return self._decode(status, retry_after, raw)

    def _decode(
        self, status: int, retry_after: Optional[float], raw: bytes
    ) -> Completion:
        if status == 429:
            raise RateLimitError(
                f"backend {self.base_url} rate-limited the call (429)",
                retry_after_ms=retry_after,
            )
        if status >= 500:
            raise TransientLLMError(
                f"backend {self.base_url} failed with HTTP {status}",
                retry_after_ms=retry_after,
            )
        if status >= 400:
            raise LLMError(
                f"backend {self.base_url} rejected the call "
                f"(HTTP {status}): {raw[:200]!r}"
            )
        try:
            payload = json.loads(raw.decode("utf-8"))
            content = payload["choices"][0]["message"]["content"]
        except (ValueError, KeyError, IndexError, TypeError) as error:
            # A torn body usually means the backend died mid-response;
            # retrying against it (or a sibling) is the right move.
            raise TransientLLMError(
                f"backend {self.base_url} returned a malformed "
                f"chat-completion body: {type(error).__name__}: {error}"
            ) from error
        if not isinstance(content, str):
            raise TransientLLMError(
                f"backend {self.base_url} returned non-text content: "
                f"{type(content).__name__}"
            )
        return Completion(text=content)

    def complete_batch(self, prompts: Sequence[Prompt]) -> list[Completion]:
        """The wire protocol has no batch endpoint; dispatch sequentially."""
        return [self.complete(prompt) for prompt in prompts]


# -- offline test double -----------------------------------------------------------


def default_responder(request: dict) -> str:
    """A deterministic canned completion: echo a stable digest of the
    last user message, so two identical requests always answer alike."""
    messages = request.get("messages") or []
    content = ""
    for message in messages:
        if isinstance(message, dict) and message.get("role") == "user":
            content = str(message.get("content", ""))
    digest = hashlib.sha256(content.encode("utf-8")).hexdigest()[:12]
    return f"ok:{digest}"


class _FakeHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "fake-openai"

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        server: "ThreadingHTTPServer" = self.server  # type: ignore[assignment]
        fake: "FakeOpenAIServer" = server.fake  # type: ignore[attr-defined]
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length > 0 else b""
        status, headers, body = fake.respond(self.path, raw)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *_args) -> None:
        pass


class FakeOpenAIServer:
    """An in-process OpenAI-compatible chat-completions server.

    Answers ``POST {*}/chat/completions`` with deterministic canned
    completions (see :func:`default_responder`) and supports failure
    injection for failover tests: :meth:`set_failure` forces a status
    (optionally with a ``Retry-After`` header), :meth:`set_delay` adds
    response latency, and :meth:`stop` kills the listener outright —
    clients then see connection-refused, exactly like a dead backend.
    """

    def __init__(
        self,
        responder: Optional[Callable[[dict], str]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        model: str = DEFAULT_MODEL,
    ) -> None:
        self._responder = responder or default_responder
        self._model = model
        self._lock = threading.Lock()
        self._fail_status: Optional[int] = None
        self._fail_retry_after: Optional[float] = None
        self._delay_s = 0.0
        self.requests = 0
        self._httpd = ThreadingHTTPServer((host, port), _FakeHandler)
        self._httpd.daemon_threads = True
        self._httpd.fake = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def base_url(self) -> str:
        """What to pass as an ``HttpChatModel`` / ``--backend`` base URL."""
        return f"http://{self.host}:{self.port}/v1"

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "FakeOpenAIServer":
        thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="fake-openai",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def stop(self) -> None:
        """Stop listening and close the socket (connection-refused after)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "FakeOpenAIServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- failure injection ----------------------------------------------------

    def set_failure(
        self,
        status: Optional[int] = None,
        retry_after_s: Optional[float] = None,
    ) -> None:
        """Force every response to ``status`` (None restores success)."""
        with self._lock:
            self._fail_status = status
            self._fail_retry_after = retry_after_s

    def set_delay(self, seconds: float) -> None:
        with self._lock:
            self._delay_s = max(0.0, seconds)

    # -- request handling -----------------------------------------------------

    def respond(self, path: str, raw: bytes) -> Tuple[int, dict, bytes]:
        with self._lock:
            self.requests += 1
            fail_status = self._fail_status
            retry_after = self._fail_retry_after
            delay = self._delay_s
        if delay > 0:
            time.sleep(delay)
        if not path.endswith("/chat/completions"):
            return 404, {}, b'{"error": {"message": "no such route"}}'
        if fail_status is not None:
            headers = {}
            if retry_after is not None:
                headers["Retry-After"] = str(retry_after)
            body = json.dumps(
                {"error": {"message": f"injected failure {fail_status}"}}
            ).encode("utf-8")
            return fail_status, headers, body
        try:
            request = json.loads(raw.decode("utf-8"))
        except ValueError:
            return 400, {}, b'{"error": {"message": "malformed JSON body"}}'
        text = self._responder(request)
        body = json.dumps(
            {
                "id": f"chatcmpl-fake-{self.requests}",
                "object": "chat.completion",
                "model": request.get("model", self._model),
                "choices": [
                    {
                        "index": 0,
                        "message": {"role": "assistant", "content": text},
                        "finish_reason": "stop",
                    }
                ],
                "usage": {
                    "prompt_tokens": 0,
                    "completion_tokens": 0,
                    "total_tokens": 0,
                },
            }
        ).encode("utf-8")
        return 200, {}, body


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run a standalone fake backend (CI failover smoke kills this)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.llm.http_backend",
        description="Offline OpenAI-compatible chat-completions stub.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    args = parser.parse_args(argv)
    server = FakeOpenAIServer(host=args.host, port=args.port)
    print(f"fake-openai listening on {server.base_url}", flush=True)
    try:
        self_thread = server.start()
        while self_thread._thread is not None:  # noqa: SLF001 - own attr
            time.sleep(0.5)
    except KeyboardInterrupt:
        pass
    finally:
        try:
            server.stop()
        except Exception:  # noqa: BLE001 - already shutting down
            pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI smoke
    raise SystemExit(main())
