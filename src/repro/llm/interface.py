"""Chat-model interface for the simulated LLM.

The paper's backend drives everything through prompts to ``gpt-3.5-turbo``.
We preserve that architecture: callers build a :class:`Prompt` (which
renders to the paper's prompt text — Figures 1, 5 and 6) and pass it to a
:class:`ChatModel`. Offline, the only implementation is
:class:`repro.llm.simulated.SimulatedLLM`, which dispatches on the prompt's
structured payload; a real API-backed model could be dropped in by
implementing the same protocol against ``prompt.text``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

#: Prompt kinds the backend issues.
KIND_NL2SQL = "nl2sql"
KIND_FEEDBACK = "nl2sql_feedback"
KIND_ROUTING = "feedback_routing"
KIND_REWRITE = "query_rewrite"


@dataclass
class Prompt:
    """A prompt: rendered text plus the structured fields it was built from.

    Attributes:
        kind: One of the ``KIND_*`` constants.
        text: The full rendered prompt (what would be sent to an API model).
        payload: The structured fields (schema object, question, demos, ...)
            that the simulated model dispatches on.
    """

    kind: str
    text: str
    payload: dict = field(default_factory=dict)


@dataclass
class Completion:
    """A model response: the text plus optional structured notes."""

    text: str
    notes: list[str] = field(default_factory=list)


class ChatModel(Protocol):
    """Anything that can answer a prompt."""

    def complete(self, prompt: Prompt) -> Completion:
        """Produce a completion for the prompt."""
        ...  # pragma: no cover

    def complete_batch(self, prompts: Sequence[Prompt]) -> list[Completion]:
        """Produce one completion per prompt, in order.

        Models without a native batch path are still usable: callers go
        through :func:`repro.llm.dispatch.complete_batch`, which falls back
        to sequential :meth:`complete` calls when this method is absent.
        """
        ...  # pragma: no cover
