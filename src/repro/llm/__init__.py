"""Simulated LLM backend, prompt library, and batched/cached dispatch."""

from repro.llm.http_backend import FakeOpenAIServer, HttpChatModel
from repro.llm.router import (
    Backend,
    BackendPool,
    BackendSpec,
    RoutingChatModel,
    build_backend_pool,
    parse_backend_spec,
    parse_route_map,
    probe_prompt,
    tiered_route_map,
)
from repro.llm.dispatch import (
    BatchingChatModel,
    CachingChatModel,
    CompletionCache,
    canonical_prompt_key,
    complete_batch,
    settle_batch,
)
from repro.llm.interface import (
    KIND_FEEDBACK,
    KIND_NL2SQL,
    KIND_REWRITE,
    KIND_ROUTING,
    ChatModel,
    Completion,
    Prompt,
)
from repro.llm.prompts import (
    feedback_prompt,
    nl2sql_prompt,
    render_feedback_demo,
    rewrite_prompt,
    routing_prompt,
)
from repro.llm.simulated import SimulatedLLM, derive_conventions, merge_glossaries

__all__ = [
    "Backend",
    "BackendPool",
    "BackendSpec",
    "BatchingChatModel",
    "CachingChatModel",
    "ChatModel",
    "Completion",
    "CompletionCache",
    "FakeOpenAIServer",
    "HttpChatModel",
    "RoutingChatModel",
    "KIND_FEEDBACK",
    "KIND_NL2SQL",
    "KIND_REWRITE",
    "KIND_ROUTING",
    "Prompt",
    "SimulatedLLM",
    "build_backend_pool",
    "canonical_prompt_key",
    "complete_batch",
    "derive_conventions",
    "feedback_prompt",
    "merge_glossaries",
    "nl2sql_prompt",
    "parse_backend_spec",
    "parse_route_map",
    "probe_prompt",
    "render_feedback_demo",
    "rewrite_prompt",
    "routing_prompt",
    "settle_batch",
    "tiered_route_map",
]
