"""Simulated LLM backend and prompt library."""

from repro.llm.interface import (
    KIND_FEEDBACK,
    KIND_NL2SQL,
    KIND_REWRITE,
    KIND_ROUTING,
    ChatModel,
    Completion,
    Prompt,
)
from repro.llm.prompts import (
    feedback_prompt,
    nl2sql_prompt,
    render_feedback_demo,
    rewrite_prompt,
    routing_prompt,
)
from repro.llm.simulated import SimulatedLLM, derive_conventions, merge_glossaries

__all__ = [
    "ChatModel",
    "Completion",
    "KIND_FEEDBACK",
    "KIND_NL2SQL",
    "KIND_REWRITE",
    "KIND_ROUTING",
    "Prompt",
    "SimulatedLLM",
    "derive_conventions",
    "feedback_prompt",
    "merge_glossaries",
    "nl2sql_prompt",
    "render_feedback_demo",
    "rewrite_prompt",
    "routing_prompt",
]
