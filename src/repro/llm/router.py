"""Multi-backend model routing with health-checked failover and hedging.

One :class:`SimulatedLLM` behind one retry/breaker stack means a single
backend failure takes down NL2SQL, routing, and correction traffic alike.
This module splits the model tier into an ordered pool of *named*
backends, each wrapped in its own :class:`~repro.resilience.policies
.ResilientChatModel` stack with a backend-scoped circuit breaker, and
routes across them:

* :class:`RoutingChatModel` — routes each prompt by its *kind* (cheap
  backend for feedback-routing/rewrite prompts, strong backend for
  NL2SQL and corrections — whatever the per-tenant route map says) and
  **fails over** along the pool order when a call fails transiently, a
  breaker is open, or the backend is ejected.
* :class:`BackendPool` + per-backend :class:`BackendHealth` — outlier
  detection: consecutive failures (live calls and synthetic probes both
  count) eject a backend from rotation; after ``readmit_after_ms`` a
  probe re-tests it and success readmits it. Probing is either *lazy
  on-path* (``maybe_probe``, deterministic under a
  :class:`~repro.resilience.policies.VirtualClock` — the batch CLI path)
  or a background daemon thread (``start_probing`` — the serve path).
* **Hedged requests** — with ``hedge_after_ms`` set, a single-prompt
  ``complete`` fires the next candidate if the first hasn't answered in
  time; the first settled *success* wins, primary preferred when both
  have settled, and the loser's completion is discarded (its metrics
  still count). Hedging never triggers when the primary answers fast,
  so fault-free runs stay byte-identical to the unrouted pipeline.

Metric names: ``llm.backend`` (counter, labels ``backend``/``outcome``
with outcome in ok | error | failover | skipped | rejected | hedge |
hedge_win), ``llm.backend_latency_ms`` (histogram, labelled
``backend``).
Health changes emit ``backend.ejected`` / ``backend.readmitted``
structured-log events.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence, Union

from repro import obs
from repro.errors import (
    CircuitOpenError,
    LLMError,
    NoHealthyBackendError,
    TransientLLMError,
)
from repro.llm.interface import (
    KIND_FEEDBACK,
    KIND_NL2SQL,
    KIND_REWRITE,
    KIND_ROUTING,
    ChatModel,
    Completion,
    Prompt,
)

#: Outcome labels on the ``llm.backend`` counter.
OUTCOME_OK = "ok"
OUTCOME_ERROR = "error"
OUTCOME_FAILOVER = "failover"
OUTCOME_SKIPPED = "skipped"
OUTCOME_REJECTED = "rejected"
OUTCOME_HEDGE = "hedge"
OUTCOME_HEDGE_WIN = "hedge_win"

#: Spellings accepted by ``--route-map`` for each prompt kind.
ROUTE_KIND_ALIASES: dict[str, str] = {
    "nl2sql": KIND_NL2SQL,
    KIND_NL2SQL: KIND_NL2SQL,
    "feedback": KIND_FEEDBACK,
    "correction": KIND_FEEDBACK,
    KIND_FEEDBACK: KIND_FEEDBACK,
    "routing": KIND_ROUTING,
    KIND_ROUTING: KIND_ROUTING,
    "rewrite": KIND_REWRITE,
    KIND_REWRITE: KIND_REWRITE,
}


def probe_prompt() -> Prompt:
    """The synthetic health-check prompt.

    A feedback-routing prompt is the cheapest kind every backend answers:
    the simulated model classifies the literal feedback text, and an HTTP
    backend just round-trips the rendered text.
    """
    return Prompt(
        kind=KIND_ROUTING,
        text="FISQL health probe",
        payload={"feedback": "health probe"},
    )


def tiered_route_map(strong: str, cheap: str) -> dict[str, str]:
    """The paper-loop tiering: strong model for NL2SQL and corrections,
    cheap model for feedback routing and query rewrites."""
    return {
        KIND_NL2SQL: strong,
        KIND_FEEDBACK: strong,
        KIND_ROUTING: cheap,
        KIND_REWRITE: cheap,
    }


@dataclass
class BackendHealth:
    """Mutable health record for one pooled backend."""

    healthy: bool = True
    consecutive_failures: int = 0
    ejected_at: Optional[float] = None
    last_probe_at: Optional[float] = None
    probes: int = 0
    probe_failures: int = 0
    calls_ok: int = 0
    calls_failed: int = 0
    ejections: int = 0
    readmissions: int = 0


class Backend:
    """One named pool member: the (already resilient) model stack plus
    its backend-scoped breaker, if the stack has one."""

    def __init__(
        self,
        name: str,
        model: ChatModel,
        breaker: Optional[object] = None,
    ) -> None:
        if not name:
            raise ValueError("backend name must be non-empty")
        self.name = name
        self.model = model
        # Fall back to the stack's own breaker attribute when not given.
        self.breaker = breaker if breaker is not None else getattr(
            model, "breaker", None
        )
        self.health = BackendHealth()


class BackendPool:
    """An ordered pool of named backends with outlier ejection.

    Failover order is pool order. Health bookkeeping is centralised here
    so the routing facades (one per tenant in the serve tier) can share
    one pool: ``note_success``/``note_failure`` feed the consecutive-
    failure counter from live traffic, ``maybe_probe``/``probe`` feed it
    from synthetic probes, and crossing ``eject_after`` failures ejects
    the backend from rotation until a readmission probe (no earlier than
    ``readmit_after_ms`` after ejection) succeeds. Probes go through the
    backend's full resilient stack, so an open breaker also blocks
    readmission until its own cooldown admits the half-open probe.
    """

    def __init__(
        self,
        backends: Sequence[Backend],
        clock: Callable[[], float] = time.monotonic,
        eject_after: int = 3,
        readmit_after_ms: float = 5000.0,
        probe_interval_ms: Optional[float] = None,
        on_outcome: Optional[Callable[[str, str, float], None]] = None,
    ) -> None:
        backends = list(backends)
        if not backends:
            raise ValueError("a backend pool needs at least one backend")
        names = [backend.name for backend in backends]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate backend names: {names}")
        if eject_after < 1:
            raise ValueError(f"eject_after must be >= 1: {eject_after}")
        if readmit_after_ms < 0:
            raise ValueError(
                f"readmit_after_ms must be >= 0: {readmit_after_ms}"
            )
        self._backends = backends
        self._by_name = {backend.name: backend for backend in backends}
        self._clock = clock
        self._eject_after = eject_after
        self._readmit_after_ms = readmit_after_ms
        self._probe_interval_ms = probe_interval_ms
        self._on_outcome = on_outcome
        self._lock = threading.Lock()
        self._probe_thread: Optional[threading.Thread] = None
        self._probe_stop = threading.Event()

    # -- pool shape -----------------------------------------------------------

    @property
    def backends(self) -> list[Backend]:
        return list(self._backends)

    @property
    def names(self) -> list[str]:
        return [backend.name for backend in self._backends]

    def __getitem__(self, name: str) -> Backend:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown backend {name!r}; pool has: {self.names}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._backends)

    # -- outcome accounting ---------------------------------------------------

    def set_outcome_hook(
        self, hook: Optional[Callable[[str, str, float], None]]
    ) -> None:
        """Install the live-telemetry feed: ``hook(name, outcome, ms)``
        per routed-call outcome (the serve tier wires its TelemetryHub)."""
        self._on_outcome = hook

    def record_outcome(
        self, name: str, outcome: str, duration_ms: Optional[float] = None
    ) -> None:
        """Count one routed-call outcome (and its latency, when timed)."""
        obs.count("llm.backend", backend=name, outcome=outcome)
        if duration_ms is not None:
            obs.observe("llm.backend_latency_ms", duration_ms, backend=name)
        if self._on_outcome is not None:
            self._on_outcome(name, outcome, duration_ms or 0.0)

    def note_success(self, backend: Backend) -> None:
        with self._lock:
            backend.health.calls_ok += 1
            backend.health.consecutive_failures = 0

    def note_failure(self, backend: Backend) -> None:
        with self._lock:
            backend.health.calls_failed += 1
            self._note_failure_locked(backend)

    def _note_failure_locked(self, backend: Backend) -> None:
        health = backend.health
        health.consecutive_failures += 1
        if health.healthy and health.consecutive_failures >= self._eject_after:
            health.healthy = False
            health.ejected_at = self._clock()
            health.ejections += 1
            obs.count("llm.backend.ejections", backend=backend.name)
            obs.event(
                "backend.ejected",
                backend=backend.name,
                consecutive_failures=health.consecutive_failures,
            )

    def available(self, backend: Backend) -> bool:
        """Whether the backend is in rotation (not ejected)."""
        with self._lock:
            return backend.health.healthy

    # -- probing & readmission ------------------------------------------------

    def probe(self, backend: Backend) -> bool:
        """Synthetic health check through the backend's full stack.

        Success resets the failure streak and readmits an ejected
        backend; failure feeds the same ejection counter live calls do.
        """
        with self._lock:
            backend.health.probes += 1
            backend.health.last_probe_at = self._clock()
        try:
            backend.model.complete(probe_prompt())
        except LLMError:
            with self._lock:
                backend.health.probe_failures += 1
                self._note_failure_locked(backend)
            self.record_outcome(backend.name, OUTCOME_ERROR)
            return False
        with self._lock:
            health = backend.health
            health.consecutive_failures = 0
            if not health.healthy:
                health.healthy = True
                health.ejected_at = None
                health.readmissions += 1
                obs.count("llm.backend.readmissions", backend=backend.name)
                obs.event("backend.readmitted", backend=backend.name)
        return True

    def _probe_due(self, backend: Backend) -> bool:
        with self._lock:
            health = backend.health
            now = self._clock()
            if not health.healthy:
                assert health.ejected_at is not None
                since_ejection = (now - health.ejected_at) * 1000.0
                if since_ejection < self._readmit_after_ms:
                    return False
                # Don't re-probe an ejected backend more often than the
                # readmission interval either.
                if health.last_probe_at is not None:
                    since_probe = (now - health.last_probe_at) * 1000.0
                    if (
                        health.last_probe_at > health.ejected_at
                        and since_probe < self._readmit_after_ms
                    ):
                        return False
                return True
            if self._probe_interval_ms is None:
                return False
            if health.last_probe_at is None:
                return True
            return (
                (now - health.last_probe_at) * 1000.0
                >= self._probe_interval_ms
            )

    def maybe_probe(self) -> None:
        """Run whichever probes are due right now (lazy on-path probing).

        The batch CLI path calls this before each routed dispatch: under a
        :class:`VirtualClock` the due-ness is a pure function of simulated
        time, so probe traffic is deterministic.
        """
        for backend in self._backends:
            if self._probe_due(backend):
                self.probe(backend)

    def start_probing(self, interval_s: Optional[float] = None) -> None:
        """Start the background probe loop (the serve path)."""
        if self._probe_thread is not None:
            return
        if interval_s is None:
            interval_ms = self._probe_interval_ms or 1000.0
            interval_s = interval_ms / 1000.0
        self._probe_stop.clear()

        def loop() -> None:
            while not self._probe_stop.wait(interval_s):
                try:
                    self.maybe_probe()
                except Exception:  # noqa: BLE001 - probe loop must survive
                    obs.count("llm.backend.probe_loop_errors")

        self._probe_thread = threading.Thread(
            target=loop, name="backend-probe", daemon=True
        )
        self._probe_thread.start()

    def stop_probing(self) -> None:
        thread = self._probe_thread
        if thread is None:
            return
        self._probe_stop.set()
        thread.join(timeout=5.0)
        self._probe_thread = None

    # -- health reporting -----------------------------------------------------

    def health_snapshot(self) -> dict:
        """Per-backend health for ``/readyz``, ``/statusz``, and metrics."""
        snapshot: dict = {}
        with self._lock:
            now = self._clock()
            for backend in self._backends:
                health = backend.health
                entry: dict = {
                    "healthy": health.healthy,
                    "consecutive_failures": health.consecutive_failures,
                    "calls_ok": health.calls_ok,
                    "calls_failed": health.calls_failed,
                    "probes": health.probes,
                    "probe_failures": health.probe_failures,
                    "ejections": health.ejections,
                    "readmissions": health.readmissions,
                }
                if health.ejected_at is not None:
                    entry["ejected_for_ms"] = round(
                        (now - health.ejected_at) * 1000.0, 3
                    )
                breaker = backend.breaker
                if breaker is not None:
                    entry["breaker"] = breaker.state
                    until_probe = breaker.time_until_probe()
                    if until_probe is not None:
                        entry["breaker_probe_in_ms"] = round(until_probe, 3)
                snapshot[backend.name] = entry
        return snapshot


class RoutingChatModel:
    """A :class:`ChatModel` that routes across a :class:`BackendPool`.

    Each prompt's kind selects its *preferred* backend via ``route_map``
    (falling back to the pool's first backend); failover then walks the
    remaining backends in pool order. Transient errors and open breakers
    fail over; other ``LLMError``\\ s are the request's own problem and
    propagate. When every candidate is ejected the call fails fast with
    :class:`~repro.errors.NoHealthyBackendError`.

    ``hedge_after_ms`` arms tail-latency hedging on single-prompt
    ``complete`` calls (see module docstring for the determinism rules).
    ``probe_on_path`` makes each dispatch run due probes first — the
    deterministic batch-CLI alternative to ``BackendPool.start_probing``.
    """

    def __init__(
        self,
        pool: BackendPool,
        route_map: Optional[Mapping[str, str]] = None,
        hedge_after_ms: Optional[float] = None,
        probe_on_path: bool = False,
    ) -> None:
        if hedge_after_ms is not None and hedge_after_ms < 0:
            raise ValueError(
                f"hedge_after_ms must be >= 0: {hedge_after_ms}"
            )
        self._pool = pool
        self._route_map = dict(route_map or {})
        for kind, name in self._route_map.items():
            if name not in pool:
                raise ValueError(
                    f"route map sends {kind!r} to unknown backend "
                    f"{name!r}; pool has: {pool.names}"
                )
        self._hedge_after_ms = hedge_after_ms
        self._probe_on_path = probe_on_path

    @property
    def pool(self) -> BackendPool:
        return self._pool

    @property
    def route_map(self) -> dict[str, str]:
        return dict(self._route_map)

    def _candidates(self, kind: str) -> list[Backend]:
        """Preferred backend first, then the rest in pool order."""
        preferred = self._route_map.get(kind)
        backends = self._pool.backends
        if preferred is None:
            return backends
        ordered = [self._pool[preferred]]
        ordered.extend(b for b in backends if b.name != preferred)
        return ordered

    # -- single-prompt path ---------------------------------------------------

    def complete(self, prompt: Prompt) -> Completion:
        if self._probe_on_path:
            self._pool.maybe_probe()
        candidates = self._candidates(prompt.kind)
        in_rotation = [b for b in candidates if self._pool.available(b)]
        for backend in candidates:
            if backend not in in_rotation:
                self._pool.record_outcome(backend.name, OUTCOME_SKIPPED)
        if not in_rotation:
            raise NoHealthyBackendError(
                f"all backends ejected ({self._pool.names}); "
                f"rejecting LLM call (kind={prompt.kind})"
            )
        if self._hedge_after_ms is not None and len(in_rotation) >= 2:
            return self._complete_hedged(prompt, in_rotation)
        return self._complete_sequential(prompt, in_rotation)

    def _complete_sequential(
        self, prompt: Prompt, candidates: Sequence[Backend]
    ) -> Completion:
        last_error: Optional[LLMError] = None
        for position, backend in enumerate(candidates):
            started = time.monotonic()
            try:
                completion = backend.model.complete(prompt)
            except (TransientLLMError, CircuitOpenError) as error:
                self._pool.note_failure(backend)
                last_error = error
                outcome = (
                    OUTCOME_REJECTED
                    if isinstance(error, CircuitOpenError)
                    else OUTCOME_ERROR
                )
                self._pool.record_outcome(backend.name, outcome)
                if position + 1 < len(candidates):
                    self._pool.record_outcome(
                        candidates[position + 1].name, OUTCOME_FAILOVER
                    )
                    obs.event(
                        "backend.failover",
                        kind=prompt.kind,
                        from_backend=backend.name,
                        to_backend=candidates[position + 1].name,
                        error=type(error).__name__,
                    )
                continue
            except LLMError as error:
                # The request itself is bad (prompt error, 4xx): another
                # backend would reject it too.
                self._pool.note_failure(backend)
                self._pool.record_outcome(backend.name, OUTCOME_ERROR)
                raise error
            duration_ms = (time.monotonic() - started) * 1000.0
            self._pool.note_success(backend)
            self._pool.record_outcome(backend.name, OUTCOME_OK, duration_ms)
            return completion
        assert last_error is not None
        raise last_error

    def _complete_hedged(
        self, prompt: Prompt, candidates: Sequence[Backend]
    ) -> Completion:
        """Primary plus one delayed hedge; first settled success wins.

        Determinism rules: the hedge fires only if the primary has not
        settled within ``hedge_after_ms`` of real wall-clock time, and
        when both have settled the primary's outcome is preferred — so a
        fast, healthy primary yields exactly the sequential result.
        """
        primary, hedge = candidates[0], candidates[1]
        cond = threading.Condition()
        outcomes: dict[str, tuple[Union[Completion, LLMError], float]] = {}

        def run(slot: str, backend: Backend) -> None:
            started = time.monotonic()
            settled: Union[Completion, LLMError]
            try:
                settled = backend.model.complete(prompt)
            except LLMError as error:
                settled = error
            duration_ms = (time.monotonic() - started) * 1000.0
            with cond:
                outcomes[slot] = (settled, duration_ms)
                cond.notify_all()

        threading.Thread(
            target=run, args=("primary", primary), daemon=True
        ).start()
        with cond:
            cond.wait_for(
                lambda: "primary" in outcomes,
                timeout=self._hedge_after_ms / 1000.0,
            )
            primary_settled = "primary" in outcomes
        if primary_settled:
            # No hedge fired: identical to the sequential path.
            return self._settle_hedge_slot(
                prompt, primary, outcomes["primary"], candidates, 1
            )
        self._pool.record_outcome(hedge.name, OUTCOME_HEDGE)
        obs.event(
            "backend.hedge",
            kind=prompt.kind,
            primary=primary.name,
            hedge=hedge.name,
            after_ms=self._hedge_after_ms,
        )
        threading.Thread(target=run, args=("hedge", hedge), daemon=True).start()

        def resolved() -> bool:
            if len(outcomes) == 2:
                return True
            return any(
                isinstance(settled, Completion)
                for settled, _ in outcomes.values()
            )

        with cond:
            cond.wait_for(resolved)
            snapshot = dict(outcomes)
        # Primary preference: when both settled (or only the primary did),
        # its outcome decides first; the hedge only wins while the primary
        # is still in flight or has failed.
        primary_outcome = snapshot.get("primary")
        hedge_outcome = snapshot.get("hedge")
        if primary_outcome is not None and isinstance(
            primary_outcome[0], Completion
        ):
            if hedge_outcome is not None:
                self._discard_hedge_slot(hedge, hedge_outcome)
            return self._settle_hedge_slot(
                prompt, primary, primary_outcome, candidates, 1
            )
        if hedge_outcome is not None and isinstance(
            hedge_outcome[0], Completion
        ):
            settled, duration_ms = hedge_outcome
            self._pool.note_success(hedge)
            self._pool.record_outcome(hedge.name, OUTCOME_OK, duration_ms)
            self._pool.record_outcome(hedge.name, OUTCOME_HEDGE_WIN)
            if primary_outcome is not None:
                self._discard_hedge_slot(primary, primary_outcome)
            return settled
        # Both settled with errors: account for each, then continue the
        # ordinary sequential failover over the remaining candidates.
        assert primary_outcome is not None and hedge_outcome is not None
        last_error: Optional[LLMError] = None
        for backend, (settled, _) in (
            (primary, primary_outcome),
            (hedge, hedge_outcome),
        ):
            assert isinstance(settled, LLMError)
            if not isinstance(settled, (TransientLLMError, CircuitOpenError)):
                self._pool.note_failure(backend)
                self._pool.record_outcome(backend.name, OUTCOME_ERROR)
                raise settled
            self._pool.note_failure(backend)
            self._pool.record_outcome(
                backend.name,
                OUTCOME_REJECTED
                if isinstance(settled, CircuitOpenError)
                else OUTCOME_ERROR,
            )
            last_error = settled
        rest = list(candidates[2:])
        if rest:
            self._pool.record_outcome(rest[0].name, OUTCOME_FAILOVER)
            return self._complete_sequential(prompt, rest)
        assert last_error is not None
        raise last_error

    def _settle_hedge_slot(
        self,
        prompt: Prompt,
        backend: Backend,
        outcome: tuple[Union[Completion, LLMError], float],
        candidates: Sequence[Backend],
        next_index: int,
    ) -> Completion:
        """Resolve one already-settled slot exactly like the sequential
        path would have: success returns, transient failure fails over to
        the remaining candidates, fatal errors propagate."""
        settled, duration_ms = outcome
        if isinstance(settled, Completion):
            self._pool.note_success(backend)
            self._pool.record_outcome(backend.name, OUTCOME_OK, duration_ms)
            return settled
        self._pool.note_failure(backend)
        if not isinstance(settled, (TransientLLMError, CircuitOpenError)):
            self._pool.record_outcome(backend.name, OUTCOME_ERROR)
            raise settled
        self._pool.record_outcome(
            backend.name,
            OUTCOME_REJECTED
            if isinstance(settled, CircuitOpenError)
            else OUTCOME_ERROR,
        )
        rest = list(candidates[next_index:])
        if not rest:
            raise settled
        self._pool.record_outcome(rest[0].name, OUTCOME_FAILOVER)
        obs.event(
            "backend.failover",
            kind=prompt.kind,
            from_backend=backend.name,
            to_backend=rest[0].name,
            error=type(settled).__name__,
        )
        return self._complete_sequential(prompt, rest)

    def _discard_hedge_slot(
        self,
        backend: Backend,
        outcome: tuple[Union[Completion, LLMError], float],
    ) -> None:
        """Account for the losing slot's settled outcome (result dropped)."""
        settled, duration_ms = outcome
        if isinstance(settled, Completion):
            self._pool.note_success(backend)
            self._pool.record_outcome(backend.name, OUTCOME_OK, duration_ms)
        else:
            self._pool.note_failure(backend)
            self._pool.record_outcome(
                backend.name,
                OUTCOME_REJECTED
                if isinstance(settled, CircuitOpenError)
                else OUTCOME_ERROR,
            )

    # -- batch path -----------------------------------------------------------

    def complete_batch(self, prompts: Sequence[Prompt]) -> list[Completion]:
        outcomes = self.complete_batch_settled(prompts)
        for outcome in outcomes:
            if isinstance(outcome, LLMError):
                raise outcome
        return outcomes  # type: ignore[return-value]

    def complete_batch_settled(
        self, prompts: Sequence[Prompt]
    ) -> "list[Union[Completion, LLMError]]":
        """Routed settled batch: items are grouped by the backend each one
        currently targets, dispatched as sub-batches, and failed items
        fail over to their next candidate in later rounds. No hedging —
        the per-backend resilient stacks already overlap their retry
        waits inside a round."""
        from repro.llm.dispatch import _settle_batch

        if self._probe_on_path:
            self._pool.maybe_probe()
        prompts = list(prompts)
        results: list[Optional[Union[Completion, LLMError]]] = [None] * len(
            prompts
        )
        candidate_lists = [self._candidates(p.kind) for p in prompts]
        positions = [0] * len(prompts)
        last_errors: list[Optional[LLMError]] = [None] * len(prompts)
        pending = list(range(len(prompts)))
        while pending:
            groups: dict[str, list[int]] = {}
            for index in pending:
                candidates = candidate_lists[index]
                while positions[index] < len(candidates):
                    backend = candidates[positions[index]]
                    if self._pool.available(backend):
                        break
                    self._pool.record_outcome(backend.name, OUTCOME_SKIPPED)
                    positions[index] += 1
                if positions[index] >= len(candidates):
                    results[index] = last_errors[index] or (
                        NoHealthyBackendError(
                            f"all backends ejected ({self._pool.names}); "
                            "rejecting LLM call "
                            f"(kind={prompts[index].kind})"
                        )
                    )
                    continue
                groups.setdefault(backend.name, []).append(index)
            if not groups:
                break
            for name, indices in groups.items():
                backend = self._pool[name]
                started = time.monotonic()
                settled = _settle_batch(
                    backend.model, [prompts[index] for index in indices]
                )
                duration_ms = (time.monotonic() - started) * 1000.0
                for index, outcome in zip(indices, settled):
                    if isinstance(outcome, Completion):
                        self._pool.note_success(backend)
                        self._pool.record_outcome(
                            name, OUTCOME_OK, duration_ms
                        )
                        results[index] = outcome
                        continue
                    self._pool.note_failure(backend)
                    if not isinstance(
                        outcome, (TransientLLMError, CircuitOpenError)
                    ):
                        self._pool.record_outcome(name, OUTCOME_ERROR)
                        results[index] = outcome
                        continue
                    self._pool.record_outcome(
                        name,
                        OUTCOME_REJECTED
                        if isinstance(outcome, CircuitOpenError)
                        else OUTCOME_ERROR,
                    )
                    last_errors[index] = outcome
                    positions[index] += 1
                    nxt = positions[index]
                    if nxt < len(candidate_lists[index]):
                        self._pool.record_outcome(
                            candidate_lists[index][nxt].name,
                            OUTCOME_FAILOVER,
                        )
            pending = [
                index
                for index in range(len(prompts))
                if results[index] is None
            ]
        for index in range(len(prompts)):
            if results[index] is None:
                results[index] = last_errors[index] or NoHealthyBackendError(
                    f"all backends ejected ({self._pool.names}); "
                    f"rejecting LLM call (kind={prompts[index].kind})"
                )
        return results  # type: ignore[return-value]


# -- backend specs & pool construction ---------------------------------------------

#: Backend kinds accepted by ``--backend name=kind[,...]``.
BACKEND_KIND_SIMULATED = "simulated"
BACKEND_KIND_HTTP = "http"

_SPEC_KEYS = {
    "model",
    "base-url",
    "api-key",
    "timeout-s",
    "fault",
    "fault-seed",
    "retries",
    "deadline-ms",
    "breaker-threshold",
    "breaker-reset-ms",
}


@dataclass(frozen=True)
class BackendSpec:
    """One parsed ``--backend`` flag: a named backend and its options."""

    name: str
    kind: str
    options: "tuple[tuple[str, str], ...]" = ()

    def option(self, key: str, default: Optional[str] = None) -> Optional[str]:
        for candidate, value in self.options:
            if candidate == key:
                return value
        return default


def parse_backend_spec(text: str) -> BackendSpec:
    """Parse ``name=kind[,key=value...]`` into a :class:`BackendSpec`.

    Kinds: ``simulated`` (the offline deterministic model, optionally
    flapped with ``fault=PROFILE``/``fault-seed=N``) and ``http`` (an
    OpenAI-compatible endpoint, requires ``base-url=``). Common options:
    ``retries=``, ``deadline-ms=``, ``breaker-threshold=``,
    ``breaker-reset-ms=``; HTTP adds ``model=``, ``api-key=``,
    ``timeout-s=``.
    """
    parts = [part.strip() for part in text.split(",") if part.strip()]
    if not parts or "=" not in parts[0]:
        raise ValueError(
            f"malformed backend spec {text!r}; expected "
            "name=kind[,key=value...]"
        )
    name, _, kind = parts[0].partition("=")
    name, kind = name.strip(), kind.strip()
    if not name or not kind:
        raise ValueError(f"malformed backend spec {text!r}")
    if kind not in (BACKEND_KIND_SIMULATED, BACKEND_KIND_HTTP):
        raise ValueError(
            f"unknown backend kind {kind!r} in {text!r}; expected "
            f"{BACKEND_KIND_SIMULATED!r} or {BACKEND_KIND_HTTP!r}"
        )
    options: list[tuple[str, str]] = []
    for part in parts[1:]:
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in _SPEC_KEYS:
            valid = ", ".join(sorted(_SPEC_KEYS))
            raise ValueError(
                f"unknown backend option {part!r} in {text!r}; "
                f"valid keys: {valid}"
            )
        options.append((key, value.strip()))
    if kind == BACKEND_KIND_HTTP and not any(
        key == "base-url" for key, _ in options
    ):
        raise ValueError(
            f"http backend {name!r} needs base-url=http://host:port/prefix"
        )
    return BackendSpec(name=name, kind=kind, options=tuple(options))


def parse_route_map(text: str, names: Sequence[str]) -> dict[str, str]:
    """Parse ``--route-map kind=backend,...`` against the pool's names."""
    route_map: dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        kind, sep, name = part.partition("=")
        kind, name = kind.strip(), name.strip()
        if not sep or not kind or not name:
            raise ValueError(
                f"malformed route map entry {part!r}; expected kind=backend"
            )
        canonical = ROUTE_KIND_ALIASES.get(kind)
        if canonical is None:
            valid = ", ".join(sorted(set(ROUTE_KIND_ALIASES)))
            raise ValueError(
                f"unknown prompt kind {kind!r} in route map; one of: {valid}"
            )
        if name not in names:
            raise ValueError(
                f"route map sends {kind!r} to unknown backend {name!r}; "
                f"defined backends: {list(names)}"
            )
        route_map[canonical] = name
    return route_map


def _spec_float(spec: BackendSpec, key: str) -> Optional[float]:
    raw = spec.option(key)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"backend {spec.name!r}: malformed {key}={raw!r}"
        ) from None


def _spec_int(spec: BackendSpec, key: str) -> Optional[int]:
    raw = spec.option(key)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"backend {spec.name!r}: malformed {key}={raw!r}"
        ) from None


def build_backend_pool(
    specs: Sequence[BackendSpec],
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    seed: int = 0,
    default_retries: int = 2,
    default_deadline_ms: Optional[float] = None,
    default_breaker_threshold: int = 5,
    default_breaker_reset_ms: float = 30_000.0,
    eject_after: int = 3,
    readmit_after_ms: float = 5000.0,
    probe_interval_ms: Optional[float] = None,
    on_outcome: Optional[Callable[[str, str, float], None]] = None,
    labels: Optional[dict] = None,
) -> BackendPool:
    """Assemble a :class:`BackendPool` from parsed ``--backend`` specs.

    Each backend gets its own :class:`ResilientChatModel` stack and a
    backend-scoped :class:`CircuitBreaker` named after it, so one
    backend's failures never trip a sibling's breaker. ``fault=PROFILE``
    wraps that backend (alone) in a seeded
    :class:`~repro.resilience.faults.FaultInjectingChatModel` for chaos
    runs.
    """
    from repro.llm.simulated import SimulatedLLM
    from repro.resilience.faults import (
        FaultInjectingChatModel,
        resolve_fault_profile,
    )
    from repro.resilience.policies import (
        CircuitBreaker,
        ResilientChatModel,
        RetryPolicy,
    )

    backends: list[Backend] = []
    for spec in specs:
        inner: ChatModel
        if spec.kind == BACKEND_KIND_SIMULATED:
            inner = SimulatedLLM()
        else:
            from repro.llm.http_backend import DEFAULT_MODEL, HttpChatModel

            inner = HttpChatModel(
                base_url=spec.option("base-url"),  # validated by the parser
                model=spec.option("model", DEFAULT_MODEL),
                api_key=spec.option("api-key"),
                timeout_s=_spec_float(spec, "timeout-s") or 30.0,
            )
        fault = spec.option("fault")
        if fault is not None:
            profile = resolve_fault_profile(
                fault, seed=_spec_int(spec, "fault-seed") or seed
            )
            inner = FaultInjectingChatModel(inner, profile)
        breaker = CircuitBreaker(
            failure_threshold=_spec_int(spec, "breaker-threshold")
            or default_breaker_threshold,
            reset_after_ms=_spec_float(spec, "breaker-reset-ms")
            or default_breaker_reset_ms,
            clock=clock,
            name=spec.name,
            labels=dict(labels or {}, backend=spec.name),
        )
        retries = _spec_int(spec, "retries")
        deadline = _spec_float(spec, "deadline-ms")
        stack = ResilientChatModel(
            inner,
            retry=RetryPolicy(
                max_retries=retries if retries is not None else default_retries,
                deadline_ms=deadline
                if deadline is not None
                else default_deadline_ms,
                seed=seed,
            ),
            breaker=breaker,
            clock=clock,
            sleep=sleep,
        )
        backends.append(Backend(spec.name, stack, breaker))
    return BackendPool(
        backends,
        clock=clock,
        eject_after=eject_after,
        readmit_after_ms=readmit_after_ms,
        probe_interval_ms=probe_interval_ms,
        on_outcome=on_outcome,
    )
