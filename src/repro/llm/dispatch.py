"""Unified batched/cached LLM dispatch.

Every LLM interaction in the stack used to funnel through single-prompt
:meth:`ChatModel.complete` calls. This module restructures that call-chain
shape once, for every layer above it:

* :func:`complete_batch` / :func:`settle_batch` — the dispatch adapters.
  They route a list of prompts through a model's *native* batch path when
  it has one and fall back to sequential ``complete`` otherwise, so any
  :class:`~repro.llm.interface.ChatModel` keeps working unchanged.
  ``settle_batch`` never raises for a single item: each slot settles to
  either a :class:`~repro.llm.interface.Completion` or the
  :class:`~repro.errors.LLMError` that item died with (the semantics the
  evaluation loop's skip-and-record path needs).
* :func:`canonical_prompt_key` — a deterministic content hash over a
  prompt's kind, rendered text, and the payload fields that influence the
  completion but are *not* part of the rendered text (``context_key``,
  ``feedback_type``, demonstration glossaries). Two prompts with equal
  keys are guaranteed to produce equal completions from the deterministic
  backend.
* :class:`CompletionCache` — a thread-safe completion store keyed on
  canonical prompt hashes, with optional JSON persistence (one
  ``completions.json`` per cache directory) so predictions and generated
  correction suites survive across processes.
* :class:`CachingChatModel` — a :class:`ChatModel` wrapper that consults
  the cache before dispatching, batch-aware on both sides: cache misses
  inside a batch are re-batched to the inner model.
* :class:`BatchingChatModel` — a bounded-wait request coalescer: concurrent
  ``complete`` calls from many threads are grouped into one
  ``complete_batch`` dispatch (leader/follower, ``max_wait_ms`` bounded).
  The serve layer hangs one of these per tenant.

Metric names: ``llm.batch_size`` (histogram, one observation per batch
dispatch), ``cache.hit`` / ``cache.miss`` (counters, labelled by prompt
kind).
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import threading
import time
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro import obs
from repro.obs.context import current_request_id
from repro.chaos.diskfaults import disk_fault
from repro.datasets.base import Demonstration
from repro.durability.atomic import read_checksummed_json, write_checksummed_json
from repro.errors import LLMError, OverloadError
from repro.llm.interface import ChatModel, Completion, Prompt
from repro.sql.schema import DatabaseSchema

#: Bump when the cache file layout changes (old files are ignored).
#: v2: the file is a checksummed envelope (see repro.durability.atomic).
CACHE_SCHEMA_VERSION = 2

#: File name used inside a ``--cache-dir`` directory.
CACHE_FILENAME = "completions.json"

#: One settled batch slot: the completion, or the error the item died with.
BatchOutcome = Union[Completion, LLMError]


# -- canonical prompt hashing ------------------------------------------------------


def _canonical_value(value: object) -> object:
    """A JSON-stable projection of a payload value.

    Scalars pass through; demonstrations contribute their glossary (which
    influences the simulated model's in-context learning but is *not* part
    of the rendered prompt text); schemas contribute only their name (the
    full DDL is already in the text). Everything else degrades to ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical_value(item) for item in value]
    if isinstance(value, dict):
        return {
            str(key): _canonical_value(val)
            for key, val in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, Demonstration):
        return {
            "question": value.question,
            "sql": value.sql,
            "db_id": value.db_id,
            "glossary": dict(sorted(value.glossary.items())),
        }
    if isinstance(value, DatabaseSchema):
        return {"schema": value.name}
    return str(value)


def canonical_prompt_key(prompt: Prompt) -> str:
    """A deterministic hex digest identifying a prompt's full content."""
    material = json.dumps(
        {
            "kind": prompt.kind,
            "text": prompt.text,
            "payload": _canonical_value(prompt.payload),
        },
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=False,
        default=str,
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


# -- batch dispatch adapters -------------------------------------------------------


def _dispatch_batch(model: ChatModel, prompts: Sequence[Prompt]) -> list[Completion]:
    """Native batch when available, sequential otherwise. No metrics."""
    native = getattr(model, "complete_batch", None)
    if callable(native):
        return list(native(prompts))
    return [model.complete(prompt) for prompt in prompts]


def _settle_batch(model: ChatModel, prompts: Sequence[Prompt]) -> list[BatchOutcome]:
    """Per-item settled dispatch (native when available). No metrics."""
    native = getattr(model, "complete_batch_settled", None)
    if callable(native):
        return list(native(prompts))
    outcomes: list[BatchOutcome] = []
    for prompt in prompts:
        try:
            outcomes.append(model.complete(prompt))
        except LLMError as error:
            outcomes.append(error)
    return outcomes


def complete_batch(model: ChatModel, prompts: Sequence[Prompt]) -> list[Completion]:
    """Batch-complete ``prompts`` against any :class:`ChatModel`.

    Uses the model's native ``complete_batch`` when it has one; otherwise
    falls back to sequential ``complete`` calls, so every model keeps
    working. Raises the first item's :class:`~repro.errors.LLMError` when
    an item fails — use :func:`settle_batch` for per-item outcomes.
    """
    prompts = list(prompts)
    if not prompts:
        return []
    obs.observe("llm.batch_size", len(prompts))
    return _dispatch_batch(model, prompts)


def settle_batch(model: ChatModel, prompts: Sequence[Prompt]) -> list[BatchOutcome]:
    """Batch-complete with per-item outcomes (never raises per item).

    Each returned slot is either the item's :class:`Completion` or the
    :class:`~repro.errors.LLMError` it failed with, in prompt order.
    """
    prompts = list(prompts)
    if not prompts:
        return []
    obs.observe("llm.batch_size", len(prompts))
    return _settle_batch(model, prompts)


def _cache_labels(kind: str) -> dict:
    """Cache counter labels: prompt kind, plus the correlation id when a
    request context is active (serve traffic) — batch runs stay without
    the label, so their metric snapshots are byte-identical to pre-
    telemetry output."""
    request_id = current_request_id()
    if request_id is None:
        return {"kind": kind}
    return {"kind": kind, "request_id": request_id}


# -- completion cache --------------------------------------------------------------


class CompletionCache:
    """A thread-safe, deterministic completion store with LRU eviction.

    Entries are keyed on :func:`canonical_prompt_key` digests and hold the
    completion's text and notes. ``max_entries`` caps the resident set:
    at capacity the least-recently-*used* entry (read or written) is
    evicted. ``load``/``save`` persist the whole store as one checksummed
    canonical-JSON document inside a directory, so a warm cache carries
    nl2sql predictions and generated correction completions across
    processes — and a torn or corrupt file degrades to a cold cache
    (quarantined aside) instead of crashing the loader.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1: {max_entries}")
        self._lock = threading.Lock()
        # dict preserves insertion order; hits/puts re-insert at the end,
        # so iteration order is LRU-first.
        self._entries: dict[str, tuple[str, tuple[str, ...]]] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.loaded = 0
        self.evictions = 0
        self.save_failed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def max_entries(self) -> Optional[int]:
        return self._max_entries

    def get(self, key: str) -> Optional[Completion]:
        """The cached completion (a fresh copy), or None on miss."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                self.misses += 1
                return None
            self._entries[key] = entry  # re-insert: most recently used
            self.hits += 1
        text, notes = entry
        return Completion(text=text, notes=list(notes))

    def put(self, key: str, completion: Completion) -> None:
        """Store one completion under its canonical key."""
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = (completion.text, tuple(completion.notes))
            self._evict_over_cap_locked()

    def _evict_over_cap_locked(self) -> None:
        if self._max_entries is None:
            return
        while len(self._entries) > self._max_entries:
            victim = next(iter(self._entries))
            del self._entries[victim]
            self.evictions += 1
            obs.count("cache.evictions")

    def clear(self) -> int:
        """Drop every resident entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
        return dropped

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "loaded": self.loaded,
                "evictions": self.evictions,
            }

    # -- persistence ----------------------------------------------------------

    @classmethod
    def load(
        cls,
        directory: Union[str, Path],
        max_entries: Optional[int] = None,
    ) -> "CompletionCache":
        """A cache warmed from ``directory`` (empty when nothing persisted).

        A corrupt file (torn write, checksum mismatch, manual edit) is
        quarantined and the cache starts cold; a stale schema version is
        simply ignored. Loading never raises.
        """
        cache = cls(max_entries=max_entries)
        path = Path(directory) / CACHE_FILENAME
        document = read_checksummed_json(path, kind="completion_cache")
        if (
            not isinstance(document, dict)
            or document.get("version") != CACHE_SCHEMA_VERSION
        ):
            return cache
        entries = document.get("entries")
        if not isinstance(entries, dict):
            return cache
        for key, entry in entries.items():
            if (
                isinstance(key, str)
                and isinstance(entry, dict)
                and isinstance(entry.get("text"), str)
            ):
                notes = entry.get("notes", [])
                if isinstance(notes, list) and all(
                    isinstance(note, str) for note in notes
                ):
                    cache._entries[key] = (entry["text"], tuple(notes))
        cache.loaded = len(cache._entries)
        with cache._lock:
            cache._evict_over_cap_locked()
        return cache

    def save(self, directory: Union[str, Path]) -> int:
        """Persist the store to ``directory`` (atomic); returns entry count.

        The document is checksummed canonical JSON written via temp-file +
        ``os.replace``: two processes that cached the same completions
        write identical bytes, and a crash mid-save leaves the previous
        file intact rather than a torn one.

        A disk fault (ENOSPC, EIO, read-only filesystem) degrades
        gracefully: the save is skipped, ``save_failed`` flips, and a
        ``durability.degraded`` counter records the loss — a full disk
        costs cache warmth, never the run. Returns 0 on a failed save.
        """
        directory = Path(directory)
        with self._lock:
            entries = {
                key: {"text": text, "notes": list(notes)}
                for key, (text, notes) in self._entries.items()
            }
        document = {"version": CACHE_SCHEMA_VERSION, "entries": entries}
        try:
            disk_fault("disk.cache_save")
            directory.mkdir(parents=True, exist_ok=True)
            write_checksummed_json(directory / CACHE_FILENAME, document)
        except OSError as error:
            self.save_failed = True
            obs.count("durability.degraded", kind="completion_cache")
            obs.event(
                "cache.save_failed",
                error=f"{type(error).__name__}: {error}",
            )
            return 0
        return len(entries)


class CachingChatModel:
    """A :class:`ChatModel` wrapper that memoizes completions.

    Hits are answered from the :class:`CompletionCache` without touching
    the inner model; misses inside a batch are re-batched to the inner
    model's native dispatch. Settled errors are never cached — a failed
    item retries against the backend on the next call.
    """

    def __init__(
        self,
        inner: ChatModel,
        cache: Optional[CompletionCache] = None,
        on_lookup: Optional[Callable[[bool], None]] = None,
    ) -> None:
        self._inner = inner
        self._cache = cache if cache is not None else CompletionCache()
        # Optional live-telemetry hook: called with hit/miss per lookup
        # (the serve layer feeds its TelemetryHub windowed hit rate).
        self._on_lookup = on_lookup

    @property
    def inner(self) -> ChatModel:
        return self._inner

    @property
    def cache(self) -> CompletionCache:
        return self._cache

    def _lookup(self, hit: bool, kind: str) -> None:
        obs.count("cache.hit" if hit else "cache.miss", **_cache_labels(kind))
        if self._on_lookup is not None:
            self._on_lookup(hit)

    def complete(self, prompt: Prompt) -> Completion:
        key = canonical_prompt_key(prompt)
        cached = self._cache.get(key)
        if cached is not None:
            self._lookup(True, prompt.kind)
            return cached
        self._lookup(False, prompt.kind)
        completion = self._inner.complete(prompt)
        self._cache.put(key, completion)
        return completion

    def complete_batch(self, prompts: Sequence[Prompt]) -> list[Completion]:
        prompts = list(prompts)
        results: list[Optional[Completion]] = [None] * len(prompts)
        keys = [canonical_prompt_key(prompt) for prompt in prompts]
        missing: list[int] = []
        for index, (prompt, key) in enumerate(zip(prompts, keys)):
            cached = self._cache.get(key)
            if cached is not None:
                self._lookup(True, prompt.kind)
                results[index] = cached
            else:
                self._lookup(False, prompt.kind)
                missing.append(index)
        if missing:
            fetched = _dispatch_batch(
                self._inner, [prompts[index] for index in missing]
            )
            for index, completion in zip(missing, fetched):
                self._cache.put(keys[index], completion)
                results[index] = completion
        return results  # type: ignore[return-value]

    def complete_batch_settled(
        self, prompts: Sequence[Prompt]
    ) -> list[BatchOutcome]:
        prompts = list(prompts)
        results: list[Optional[BatchOutcome]] = [None] * len(prompts)
        keys = [canonical_prompt_key(prompt) for prompt in prompts]
        missing: list[int] = []
        for index, (prompt, key) in enumerate(zip(prompts, keys)):
            cached = self._cache.get(key)
            if cached is not None:
                self._lookup(True, prompt.kind)
                results[index] = cached
            else:
                self._lookup(False, prompt.kind)
                missing.append(index)
        if missing:
            settled = _settle_batch(
                self._inner, [prompts[index] for index in missing]
            )
            for index, outcome in zip(missing, settled):
                if isinstance(outcome, Completion):
                    self._cache.put(keys[index], outcome)
                results[index] = outcome
        return results  # type: ignore[return-value]


# -- bounded-wait request coalescing -----------------------------------------------


class _PendingItem:
    """One enqueued prompt awaiting its slot of a coalesced dispatch."""

    __slots__ = ("prompt", "outcome", "done", "request_id")

    def __init__(self, prompt: Prompt) -> None:
        self.prompt = prompt
        self.outcome: Optional[BatchOutcome] = None
        self.done = False
        # Captured at enqueue time: the leader dispatches on behalf of
        # followers from *its* thread, so the follower's correlation id
        # must ride the item, not the dispatching context.
        self.request_id = current_request_id()


class BatchingChatModel:
    """Coalesces concurrent ``complete`` calls into batched dispatches.

    Leader/follower over one condition variable: the first caller with no
    active leader becomes the leader, waits up to ``max_wait_ms`` for the
    queue to fill (or until ``max_batch`` items arrived), dispatches the
    collected prompts as one settled batch against the inner model, and
    distributes the per-item outcomes. A solitary caller therefore pays at
    most ``max_wait_ms`` extra latency; concurrent callers on the same
    model share one dispatch.

    With ``max_batch=1`` the wrapper degenerates to pass-through
    ``complete`` calls (no queueing, no added latency).

    **Backpressure.** ``max_queue`` bounds the number of prompts waiting
    for a coalesced dispatch; an enqueue beyond it is shed with
    :class:`~repro.errors.OverloadError` instead of growing the queue
    without limit. **Drain.** :meth:`begin_drain` rejects new prompts
    (``OverloadError`` with reason ``draining``) while already-enqueued
    ones run to completion; :meth:`await_idle` blocks until the queue is
    empty and no dispatch is in flight — the SIGTERM half of graceful
    shutdown.
    """

    def __init__(
        self,
        inner: ChatModel,
        max_batch: int = 8,
        max_wait_ms: float = 5.0,
        max_queue: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1: {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0: {max_wait_ms}")
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1: {max_queue}")
        self._inner = inner
        self._max_batch = max_batch
        self._max_wait = max_wait_ms / 1000.0
        self._max_queue = max_queue
        self._clock = clock
        self._cond = threading.Condition()
        self._queue: list[_PendingItem] = []
        self._leader_active = False
        self._draining = False
        self.dispatches = 0
        self.coalesced = 0
        self.shed = 0

    @property
    def inner(self) -> ChatModel:
        return self._inner

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queued(self) -> int:
        """Prompts currently waiting in the coalescer queue."""
        with self._cond:
            return len(self._queue)

    def begin_drain(self) -> None:
        """Reject new prompts; enqueued ones still dispatch and settle."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def await_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and no leader is dispatching."""
        with self._cond:
            return self._cond.wait_for(
                lambda: not self._queue and not self._leader_active,
                timeout=timeout,
            )

    def _shed(self, reason: str) -> OverloadError:
        self.shed += 1
        obs.count("llm.batch.shed", reason=reason)
        if reason == "draining":
            return OverloadError(
                "batcher is draining; not accepting new prompts",
                reason="draining",
            )
        return OverloadError(
            f"batch queue is full ({self._max_queue} waiting); shedding",
            reason="queue_full",
        )

    def complete(self, prompt: Prompt) -> Completion:
        if self._max_batch == 1:
            if self._draining:
                with self._cond:
                    raise self._shed("draining")
            return self._inner.complete(prompt)
        item = _PendingItem(prompt)
        with self._cond:
            if self._draining:
                raise self._shed("draining")
            if (
                self._max_queue is not None
                and len(self._queue) >= self._max_queue
            ):
                raise self._shed("queue_full")
            self._queue.append(item)
            self._cond.notify_all()
        while True:
            batch: list[_PendingItem] = []
            with self._cond:
                if item.done:
                    break
                if self._leader_active:
                    # Follower: wait for the current leader's round, then
                    # re-check (our item may ride the next round).
                    self._cond.wait(timeout=max(self._max_wait, 0.01))
                    if item.done:
                        break
                    continue
                self._leader_active = True
                deadline = self._clock() + self._max_wait
                while len(self._queue) < self._max_batch:
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                batch = self._queue[: self._max_batch]
                del self._queue[: self._max_batch]
            # Dispatch outside the lock so followers can keep enqueueing.
            outcomes = settle_batch(
                self._inner, [pending.prompt for pending in batch]
            )
            obs.event(
                "llm.batch",
                size=len(batch),
                coalesced=True,
                request_ids=sorted(
                    {p.request_id for p in batch if p.request_id is not None}
                ),
            )
            with self._cond:
                for pending, outcome in zip(batch, outcomes):
                    pending.outcome = outcome
                    pending.done = True
                self.dispatches += 1
                self.coalesced += len(batch)
                self._leader_active = False
                self._cond.notify_all()
            if item.done:
                break
        if isinstance(item.outcome, LLMError):
            raise item.outcome
        assert item.outcome is not None
        return item.outcome

    def complete_batch(self, prompts: Sequence[Prompt]) -> list[Completion]:
        """An explicit batch bypasses coalescing: it already is one."""
        with self._cond:
            if self._draining:
                raise self._shed("draining")
            self.dispatches += 1
            self.coalesced += len(prompts)
        _explicit_batch_event(len(prompts))
        return complete_batch(self._inner, prompts)

    def complete_batch_settled(
        self, prompts: Sequence[Prompt]
    ) -> list[BatchOutcome]:
        with self._cond:
            if self._draining:
                raise self._shed("draining")
            self.dispatches += 1
            self.coalesced += len(prompts)
        _explicit_batch_event(len(prompts))
        return settle_batch(self._inner, prompts)


def _explicit_batch_event(size: int) -> None:
    request_id = current_request_id()
    obs.event(
        "llm.batch",
        size=size,
        coalesced=False,
        request_ids=[request_id] if request_id is not None else [],
    )


# -- event-loop-tick request coalescing --------------------------------------------


class LoopBatchingChatModel:
    """Coalesces concurrent ``complete`` calls on an asyncio event loop.

    The same contract as :class:`BatchingChatModel` — concurrent callers
    on one model share a settled batch dispatch, with ``max_batch`` /
    ``max_wait_ms`` / ``max_queue`` bounds, drain semantics, and the same
    counters — but the grouping mechanism fits the async transport:
    instead of request threads electing a leader and blocking each other
    on a condition variable, each ``complete`` call (made from one of the
    transport's executor threads) hands its prompt to the **event loop**
    via ``call_soon_threadsafe`` and parks on a
    :class:`concurrent.futures.Future`. On the loop, prompts accumulate
    until the batch fills or one ``max_wait_ms`` timer tick fires; the
    collected batch is then dispatched on a *separate* executor (never the
    loop thread, never the request executor — that separation is what
    makes the design deadlock-free), and the done-callback distributes
    per-item outcomes back to the parked callers.

    All queue/timer state is loop-confined — mutated only from loop
    callbacks — so the batcher itself needs no lock.
    """

    def __init__(
        self,
        inner: ChatModel,
        loop,
        dispatch_executor,
        max_batch: int = 8,
        max_wait_ms: float = 5.0,
        max_queue: Optional[int] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1: {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0: {max_wait_ms}")
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1: {max_queue}")
        self._inner = inner
        self._loop = loop
        self._executor = dispatch_executor
        self._max_batch = max_batch
        self._max_wait = max_wait_ms / 1000.0
        self._max_queue = max_queue
        #: Loop-confined: (prompt, waiter, request_id) triples.
        self._queue: list = []
        self._timer = None
        self._dispatching = 0
        self._draining = False
        self.dispatches = 0
        self.coalesced = 0
        self.shed = 0

    @property
    def inner(self) -> ChatModel:
        return self._inner

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queued(self) -> int:
        # Racy when read off-loop, but it only feeds status gauges.
        return len(self._queue)

    def _shed(self, reason: str) -> OverloadError:
        self.shed += 1
        obs.count("llm.batch.shed", reason=reason)
        if reason == "draining":
            return OverloadError(
                "batcher is draining; not accepting new prompts",
                reason="draining",
            )
        return OverloadError(
            f"batch queue is full ({self._max_queue} waiting); shedding",
            reason="queue_full",
        )

    # -- caller side (executor threads) ------------------------------------------

    def complete(self, prompt: Prompt) -> Completion:
        if self._draining:
            raise self._shed("draining")
        waiter: "concurrent.futures.Future" = concurrent.futures.Future()
        request_id = current_request_id()
        self._loop.call_soon_threadsafe(
            self._enqueue, prompt, waiter, request_id
        )
        outcome = waiter.result()
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def complete_batch(self, prompts: Sequence[Prompt]) -> list[Completion]:
        """An explicit batch bypasses coalescing: it already is one."""
        if self._draining:
            raise self._shed("draining")
        self.dispatches += 1
        self.coalesced += len(prompts)
        _explicit_batch_event(len(prompts))
        return complete_batch(self._inner, prompts)

    def complete_batch_settled(
        self, prompts: Sequence[Prompt]
    ) -> list[BatchOutcome]:
        if self._draining:
            raise self._shed("draining")
        self.dispatches += 1
        self.coalesced += len(prompts)
        _explicit_batch_event(len(prompts))
        return settle_batch(self._inner, prompts)

    # -- drain --------------------------------------------------------------------

    def begin_drain(self) -> None:
        """Reject new prompts; enqueued ones still dispatch and settle."""
        self._draining = True
        try:
            self._loop.call_soon_threadsafe(self._drain_on_loop)
        except RuntimeError:
            # Loop already closed; with it gone, nothing can be queued.
            pass

    def _drain_on_loop(self) -> None:
        if self._queue:
            self._flush()

    def await_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and no dispatch is in flight."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._queue or self._dispatching:
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.005)
        return True

    # -- loop side ----------------------------------------------------------------

    def _enqueue(self, prompt: Prompt, waiter, request_id) -> None:
        if self._draining:
            waiter.set_result(self._shed("draining"))
            return
        if self._max_queue is not None and len(self._queue) >= self._max_queue:
            waiter.set_result(self._shed("queue_full"))
            return
        self._queue.append((prompt, waiter, request_id))
        if len(self._queue) >= self._max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = self._loop.call_later(self._max_wait, self._flush)

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._queue:
            return
        batch = self._queue[: self._max_batch]
        del self._queue[: self._max_batch]
        if self._queue:
            # Overflow beyond one batch: dispatch the rest next tick.
            self._loop.call_soon(self._flush)
        self._dispatching += 1
        prompts = [prompt for prompt, _waiter, _rid in batch]
        future = self._loop.run_in_executor(
            self._executor, settle_batch, self._inner, prompts
        )
        future.add_done_callback(
            lambda done, batch=batch: self._distribute(batch, done)
        )

    def _distribute(self, batch, future) -> None:
        self._dispatching -= 1
        error = future.exception()
        if error is not None:
            # A non-LLM dispatch failure: deliver it to every caller
            # (settle_batch already converts per-item LLMErrors).
            outcomes = [error] * len(batch)
        else:
            outcomes = future.result()
        obs.event(
            "llm.batch",
            size=len(batch),
            coalesced=True,
            request_ids=sorted(
                {rid for _p, _w, rid in batch if rid is not None}
            ),
        )
        self.dispatches += 1
        self.coalesced += len(batch)
        for (_prompt, waiter, _rid), outcome in zip(batch, outcomes):
            if not waiter.done():
                waiter.set_result(outcome)
