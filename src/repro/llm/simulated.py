"""The simulated chat model standing in for ``gpt-3.5-turbo``.

Dispatches on the structured payload of each :class:`~repro.llm.interface.
Prompt`:

* NL2SQL prompts run the rule-based semantic parser, with in-context
  learning realized by deriving *conventions* and a *glossary* from the
  demonstrations present in the prompt (see :func:`derive_conventions`).
* Feedback prompts run the feedback editor against the previous SQL.
* Routing prompts run the lexical feedback-type classifier.
* Rewrite prompts run the deterministic paraphrase merger: it can inline
  explicit values (years after month names), but operation-level feedback
  ("do not give descriptions") is appended as a trailing clause — which the
  downstream NL2SQL pass cannot absorb. That asymmetry is the mechanistic
  reason Query Rewrite trails FISQL in the paper's Table 2.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro import obs
from repro.core.editor import FeedbackEditor
from repro.core.feedback import Feedback, Highlight
from repro.core.routing import classify_feedback
from repro.core.semparse import (
    CONVENTION_COUNT_DISTINCT,
    CONVENTION_DISTINCT_VALUES,
    CONVENTION_FIRST_IS_TOP,
    CONVENTION_NAME_ONLY,
    CONVENTION_SUM_HOW_MANY,
    ParserConfig,
    SemanticParser,
)
from repro.datasets.base import Demonstration
from repro.datasets.names import MODEL_DEFAULT_YEAR, MONTH_NAMES
from repro.errors import PromptError, SqlError
from repro.llm.interface import (
    KIND_FEEDBACK,
    KIND_NL2SQL,
    KIND_REWRITE,
    KIND_ROUTING,
    Completion,
    Prompt,
)
from repro.sql import ast
from repro.sql.parser import parse_query
from repro.sql.printer import print_query

_MONTH_ALT = "|".join(m.lower() for m in MONTH_NAMES)
_YEAR_RE = re.compile(r"\b((?:19|20)\d{2})\b")


def derive_conventions(demos: Sequence[Demonstration]) -> frozenset:
    """In-context learning: which phrasing conventions do the demos teach?

    Each convention is recognized from the (question, SQL) surface of a
    demonstration — the same evidence an LLM would generalize from.
    """
    conventions: set[str] = set()
    for demo in demos:
        question = demo.question.lower()
        try:
            query = parse_query(demo.sql)
        except SqlError:
            continue
        if not isinstance(query, ast.Select):
            continue
        if question.startswith("how many"):
            for item in query.items:
                call = item.expression
                if isinstance(call, ast.FunctionCall):
                    if call.name == "COUNT" and call.distinct:
                        conventions.add(CONVENTION_COUNT_DISTINCT)
                    if call.name == "SUM":
                        conventions.add(CONVENTION_SUM_HOW_MANY)
        if (
            " values of " in question
            and "different" not in question
            and query.distinct
        ):
            conventions.add(CONVENTION_DISTINCT_VALUES)
        if (
            re.search(r"\bfirst \d+\b", question)
            and " by " in question
            and any(o.order is ast.SortOrder.DESC for o in query.order_by)
        ):
            conventions.add(CONVENTION_FIRST_IS_TOP)
        if (
            re.match(r"^(list|show|give) the [a-z]", question)
            and " names" not in question
            and " name " not in question
            and len(query.items) == 1
        ):
            conventions.add(CONVENTION_NAME_ONLY)
    return frozenset(conventions)


def merge_glossaries(demos: Sequence[Demonstration]) -> dict[str, str]:
    """Union of the vocabulary the demonstrations teach."""
    glossary: dict[str, str] = {}
    for demo in demos:
        glossary.update(demo.glossary)
    return glossary


class SimulatedLLM:
    """Deterministic stand-in for the paper's GPT-3.5-turbo backend."""

    def __init__(self, default_year: int = MODEL_DEFAULT_YEAR) -> None:
        self._default_year = default_year

    def complete(self, prompt: Prompt) -> Completion:
        """Answer a prompt built by :mod:`repro.llm.prompts`."""
        if not obs.is_enabled():
            return self._dispatch(prompt)
        obs.count("llm.calls", kind=prompt.kind)
        with obs.span("llm.complete", kind=prompt.kind), obs.timer(
            "llm.latency_ms", kind=prompt.kind
        ):
            return self._dispatch(prompt)

    def complete_batch(self, prompts: Sequence[Prompt]) -> list[Completion]:
        """Answer a batch of prompts natively (one ``llm.complete_batch`` span).

        Per-prompt accounting (``llm.calls`` counters, ``llm.latency_ms``
        timers) is preserved so a batched run's metrics stay comparable to
        a sequential one.
        """
        prompts = list(prompts)
        if not obs.is_enabled():
            return [self._dispatch(prompt) for prompt in prompts]
        with obs.span("llm.complete_batch", n=len(prompts)):
            completions = []
            for prompt in prompts:
                obs.count("llm.calls", kind=prompt.kind)
                with obs.timer("llm.latency_ms", kind=prompt.kind):
                    completions.append(self._dispatch(prompt))
            return completions

    def _dispatch(self, prompt: Prompt) -> Completion:
        if prompt.kind == KIND_NL2SQL:
            return self._nl2sql(prompt)
        if prompt.kind == KIND_FEEDBACK:
            return self._feedback(prompt)
        if prompt.kind == KIND_ROUTING:
            label = classify_feedback(prompt.payload["feedback"])
            return Completion(text=label)
        if prompt.kind == KIND_REWRITE:
            return self._rewrite(prompt)
        raise PromptError(f"unknown prompt kind {prompt.kind!r}")

    # -- NL2SQL ------------------------------------------------------------------

    def _nl2sql(self, prompt: Prompt) -> Completion:
        schema = prompt.payload["schema"]
        question = prompt.payload["question"]
        demos = prompt.payload.get("demos", [])
        config = ParserConfig(
            default_year=self._default_year,
            conventions=derive_conventions(demos),
            glossary=merge_glossaries(demos),
        )
        parser = SemanticParser(schema, config)
        outcome = parser.parse(question)
        return Completion(text=print_query(outcome.query), notes=outcome.notes)

    # -- feedback incorporation ------------------------------------------------------

    def _feedback(self, prompt: Prompt) -> Completion:
        schema = prompt.payload["schema"]
        question = prompt.payload["question"]
        previous_sql = prompt.payload["previous_sql"]
        feedback_text = prompt.payload["feedback"]
        feedback_type = prompt.payload.get("feedback_type")
        highlight_text = prompt.payload.get("highlight")
        context_key = prompt.payload.get("context_key", "")

        try:
            previous = parse_query(previous_sql)
        except SqlError:
            return Completion(
                text=previous_sql, notes=["previous SQL unparseable"]
            )
        if not isinstance(previous, ast.Select):
            return Completion(
                text=previous_sql, notes=["set operations not editable"]
            )

        highlight = None
        if highlight_text:
            start = previous_sql.find(highlight_text)
            highlight = Highlight(
                text=highlight_text,
                start=max(start, 0),
                end=max(start, 0) + len(highlight_text),
            )
        feedback = Feedback(text=feedback_text, highlight=highlight)

        editor = FeedbackEditor(schema)
        operation = editor.interpret(
            feedback,
            previous,
            question,
            feedback_type=feedback_type,
            context_key=context_key,
        )
        if operation is None:
            return Completion(
                text=previous_sql,
                notes=["could not interpret the feedback; query unchanged"],
            )
        revised = editor.apply(operation, previous)
        if revised is None:
            return Completion(
                text=previous_sql,
                notes=["edit could not be applied; query unchanged"],
            )
        return Completion(
            text=print_query(revised), notes=[operation.describe()]
        )

    # -- query rewrite -----------------------------------------------------------------

    def _rewrite(self, prompt: Prompt) -> Completion:
        question = prompt.payload["question"].rstrip(" ?.!")
        feedback = prompt.payload["feedback"].strip()
        merged = self._merge(question, feedback)
        return Completion(text=merged)

    def _merge(self, question: str, feedback: str) -> str:
        """The paraphrase model's merge behaviour.

        Explicit scalar context (a year for a month mention) is inlined into
        the question. Everything else becomes a trailing clause: a faithful
        model of how question-rewriting keeps the *wording* of operation
        feedback without restructuring the question around it.
        """
        years = _YEAR_RE.findall(feedback)
        month_match = re.search(rf"\b({_MONTH_ALT})\b", question.lower())
        if years and month_match is not None:
            has_year_already = re.search(
                rf"\b({_MONTH_ALT})\s+(?:19|20)\d{{2}}\b", question.lower()
            )
            if has_year_already is None:
                month_word = month_match.group(1)
                pattern = re.compile(rf"\b{month_word}\b", re.IGNORECASE)
                return (
                    pattern.sub(f"{month_word.capitalize()} {years[-1]}", question, count=1)
                    + "?"
                )
            # Replace the existing year.
            return (
                re.sub(r"\b(?:19|20)\d{2}\b", years[-1], question, count=1) + "?"
            )
        return f"{question}, and note that {feedback}?"
