"""In-memory row storage with type checking.

Rows are stored as tuples in declaration order. The storage layer enforces
column count, coerces values to declared types, and (lightly) enforces
primary-key uniqueness.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import CatalogError, ExecutionError
from repro.sql.schema import Table
from repro.sql.types import SqlValue, coerce


class TableData:
    """Rows for a single table."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self.rows: list[tuple[SqlValue, ...]] = []
        self._pk_index: dict[SqlValue, int] = {}
        pk = table.primary_key
        self._pk_position = table.columns.index(pk) if pk else None

    def insert(self, values: Sequence[SqlValue]) -> None:
        """Insert one row given values in declaration order."""
        if len(values) != len(self.table.columns):
            raise ExecutionError(
                f"table {self.table.name!r} expects {len(self.table.columns)} "
                f"values, got {len(values)}"
            )
        row = tuple(
            coerce(value, column.dtype)
            for value, column in zip(values, self.table.columns)
        )
        if self._pk_position is not None:
            key = row[self._pk_position]
            if key is not None and key in self._pk_index:
                raise ExecutionError(
                    f"duplicate primary key {key!r} in table {self.table.name!r}"
                )
            if key is not None:
                self._pk_index[key] = len(self.rows)
        self.rows.append(row)

    def insert_named(self, values: dict[str, SqlValue]) -> None:
        """Insert a row given a column-name → value mapping.

        Unnamed columns default to NULL.
        """
        ordered: list[SqlValue] = []
        lowered = {name.lower(): value for name, value in values.items()}
        known = {column.key for column in self.table.columns}
        for name in lowered:
            if name not in known:
                raise CatalogError(
                    f"table {self.table.name!r} has no column {name!r}"
                )
        for column in self.table.columns:
            ordered.append(lowered.get(column.key))
        self.insert(ordered)

    def replace_rows(self, rows: Iterable[tuple[SqlValue, ...]]) -> None:
        """Replace all rows (used by UPDATE/DELETE); rebuilds the PK index."""
        self.rows = list(rows)
        self._pk_index = {}
        if self._pk_position is not None:
            for index, row in enumerate(self.rows):
                key = row[self._pk_position]
                if key is not None:
                    if key in self._pk_index:
                        raise ExecutionError(
                            f"duplicate primary key {key!r} in table "
                            f"{self.table.name!r}"
                        )
                    self._pk_index[key] = index

    def column_index(self, name: str) -> int:
        """Position of a column in stored rows."""
        for index, column in enumerate(self.table.columns):
            if column.key == name.lower():
                return index
        raise CatalogError(f"table {self.table.name!r} has no column {name!r}")

    def __len__(self) -> int:
        return len(self.rows)
