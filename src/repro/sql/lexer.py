"""Hand-written lexer for the SQL dialect.

The lexer is a single forward pass over the input producing
:class:`~repro.sql.tokens.Token` objects. Identifiers may be bare
(``singer``), quoted with double quotes (``"Song Name"``) or backticks.
String literals use single quotes with ``''`` as the escape for a literal
quote, following standard SQL.
"""

from __future__ import annotations

from repro.errors import LexError
from repro.sql.tokens import KEYWORDS, OPERATORS, PUNCTUATION, Token, TokenType

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_BODY = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_WHITESPACE = frozenset(" \t\r\n")


class Lexer:
    """Tokenizes SQL text.

    Example:
        >>> [t.value for t in Lexer("SELECT 1").tokens()][:2]
        ['SELECT', '1']
    """

    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0
        self._length = len(text)

    def tokens(self) -> list[Token]:
        """Lex the whole input and return tokens ending with an EOF token."""
        result: list[Token] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.type is TokenType.EOF:
                return result

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= self._length:
            return ""
        return self._text[index]

    def _skip_trivia(self) -> None:
        """Skip whitespace and ``--`` line comments and ``/* */`` blocks."""
        while self._pos < self._length:
            char = self._text[self._pos]
            if char in _WHITESPACE:
                self._pos += 1
            elif char == "-" and self._peek(1) == "-":
                while self._pos < self._length and self._text[self._pos] != "\n":
                    self._pos += 1
            elif char == "/" and self._peek(1) == "*":
                end = self._text.find("*/", self._pos + 2)
                if end == -1:
                    raise LexError("unterminated block comment", self._pos)
                self._pos = end + 2
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        if self._pos >= self._length:
            return Token(TokenType.EOF, "", self._pos)

        start = self._pos
        char = self._text[start]

        if char in _IDENT_START:
            return self._lex_word(start)
        if char in _DIGITS or (char == "." and self._peek(1) in _DIGITS):
            return self._lex_number(start)
        if char == "'":
            return self._lex_string(start)
        if char in ('"', "`"):
            return self._lex_quoted_identifier(start, char)

        for op in OPERATORS:
            if self._text.startswith(op, start):
                self._pos = start + len(op)
                return Token(TokenType.OPERATOR, op, start)
        if char in PUNCTUATION:
            self._pos = start + 1
            return Token(TokenType.PUNCTUATION, char, start)

        raise LexError(f"unexpected character {char!r}", start)

    def _lex_word(self, start: int) -> Token:
        end = start
        while end < self._length and self._text[end] in _IDENT_BODY:
            end += 1
        self._pos = end
        word = self._text[start:end]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, start)
        return Token(TokenType.IDENTIFIER, word, start)

    def _lex_number(self, start: int) -> Token:
        end = start
        seen_dot = False
        seen_exp = False
        while end < self._length:
            char = self._text[end]
            if char in _DIGITS:
                end += 1
            elif char == "." and not seen_dot and not seen_exp:
                seen_dot = True
                end += 1
            elif char in "eE" and not seen_exp and end > start:
                nxt = self._text[end + 1 : end + 2]
                if nxt in _DIGITS or (
                    nxt in "+-" and self._text[end + 2 : end + 3] in _DIGITS
                ):
                    seen_exp = True
                    end += 2 if nxt in "+-" else 1
                else:
                    break
            else:
                break
        self._pos = end
        text = self._text[start:end]
        if seen_dot or seen_exp:
            return Token(TokenType.FLOAT, text, start)
        return Token(TokenType.INTEGER, text, start)

    def _lex_string(self, start: int) -> Token:
        parts: list[str] = []
        pos = start + 1
        while True:
            if pos >= self._length:
                raise LexError("unterminated string literal", start)
            char = self._text[pos]
            if char == "'":
                if self._text[pos + 1 : pos + 2] == "'":
                    parts.append("'")
                    pos += 2
                    continue
                pos += 1
                break
            parts.append(char)
            pos += 1
        self._pos = pos
        return Token(TokenType.STRING, "".join(parts), start)

    def _lex_quoted_identifier(self, start: int, quote: str) -> Token:
        end = self._text.find(quote, start + 1)
        if end == -1:
            raise LexError("unterminated quoted identifier", start)
        self._pos = end + 1
        return Token(TokenType.IDENTIFIER, self._text[start + 1 : end], start)


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper: lex ``text`` into a token list (EOF-terminated)."""
    return Lexer(text).tokens()
