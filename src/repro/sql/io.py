"""Database serialization: dump/load a whole database as JSON.

Lets downstream users persist generated benchmarks or load their own data
without writing INSERT scripts::

    save_database(db, "mydb.json")
    db2 = load_database("mydb.json")
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import DatasetError
from repro.sql.engine import Database
from repro.sql.schema import Column, DatabaseSchema, ForeignKey, Table
from repro.sql.types import DataType

FORMAT_VERSION = 1


def database_to_dict(database: Database) -> dict:
    """Serialize schema + rows into a plain dict."""
    tables = []
    for table in database.schema.tables:
        tables.append(
            {
                "name": table.name,
                "nl_name": table.nl_name,
                "synonyms": list(table.synonyms),
                "columns": [
                    {
                        "name": column.name,
                        "type": column.dtype.value,
                        "nl_name": column.nl_name,
                        "synonyms": list(column.synonyms),
                        "primary_key": column.primary_key,
                    }
                    for column in table.columns
                ],
                "foreign_keys": [
                    {
                        "column": fk.column,
                        "ref_table": fk.ref_table,
                        "ref_column": fk.ref_column,
                    }
                    for fk in table.foreign_keys
                ],
                "rows": [list(row) for row in database.data(table.name).rows],
            }
        )
    return {
        "format_version": FORMAT_VERSION,
        "name": database.schema.name,
        "tables": tables,
    }


def database_from_dict(data: dict) -> Database:
    """Rebuild a database from :func:`database_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise DatasetError(f"unsupported database format version {version!r}")
    tables = []
    for spec in data["tables"]:
        columns = [
            Column(
                name=col["name"],
                dtype=DataType(col["type"]),
                nl_name=col.get("nl_name", ""),
                synonyms=tuple(col.get("synonyms", ())),
                primary_key=col.get("primary_key", False),
            )
            for col in spec["columns"]
        ]
        foreign_keys = [
            ForeignKey(fk["column"], fk["ref_table"], fk["ref_column"])
            for fk in spec.get("foreign_keys", ())
        ]
        tables.append(
            Table(
                name=spec["name"],
                columns=columns,
                nl_name=spec.get("nl_name", ""),
                synonyms=tuple(spec.get("synonyms", ())),
                foreign_keys=foreign_keys,
            )
        )
    database = Database(DatabaseSchema(data["name"], tables))
    for spec in data["tables"]:
        database.load_rows(spec["name"], [tuple(row) for row in spec["rows"]])
    return database


def save_database(database: Database, path: Union[str, Path]) -> None:
    """Write a database to a JSON file."""
    with open(path, "w") as handle:
        json.dump(database_to_dict(database), handle)


def load_database(path: Union[str, Path]) -> Database:
    """Read a database back from a JSON file."""
    with open(path) as handle:
        return database_from_dict(json.load(handle))
