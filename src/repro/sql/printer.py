"""Render AST nodes back to canonical SQL text.

The printer produces a single-line canonical form: keywords upper-case,
single spaces, identifiers as stored. ``parse(print(ast)) == ast`` holds for
all supported nodes (round-trip property, tested with hypothesis).
"""

from __future__ import annotations

from repro.sql import ast

_NEEDS_QUOTES = frozenset(" -+/*().,;'\"`")


def format_identifier(name: str) -> str:
    """Quote an identifier when it contains characters the lexer would split."""
    if not name:
        return '""'
    if any(ch in _NEEDS_QUOTES for ch in name):
        return f'"{name}"'
    if not (name[0].isalpha() or name[0] == "_"):
        return f'"{name}"'
    return name


def format_literal(value: object) -> str:
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        # repr keeps round-trip precision; strip a trailing ".0" is NOT done
        # so the literal lexes back as a FLOAT.
        return repr(value)
    return str(value)



def _operand(expr: ast.Expression) -> str:
    """Render an expression used as a predicate operand.

    Predicate-class nodes (LIKE/BETWEEN/IN/IS NULL, comparisons, logical
    ops) are not associative in the grammar, so they must be parenthesized
    when nested as operands — e.g. ``(a IS NULL) IS NULL``.
    """
    text = print_expression(expr)
    needs_parens = isinstance(
        expr,
        (ast.Like, ast.Between, ast.InList, ast.InSubquery, ast.IsNull, ast.Exists),
    )
    if isinstance(expr, ast.BinaryOp) and (
        expr.op.is_comparison or expr.op.is_logical
    ):
        needs_parens = True
    if isinstance(expr, ast.UnaryOp) and expr.op is ast.UnaryOperator.NOT:
        needs_parens = True
    if needs_parens:
        return f"({text})"
    return text


def print_expression(expr: ast.Expression) -> str:
    """Render an expression subtree."""
    if isinstance(expr, ast.Literal):
        return format_literal(expr.value)
    if isinstance(expr, ast.ColumnRef):
        if expr.table:
            return f"{format_identifier(expr.table)}.{format_identifier(expr.column)}"
        return format_identifier(expr.column)
    if isinstance(expr, ast.Star):
        if expr.table:
            return f"{format_identifier(expr.table)}.*"
        return "*"
    if isinstance(expr, ast.BinaryOp):
        left = _maybe_paren(expr.left, expr.op, is_right=False)
        right = _maybe_paren(expr.right, expr.op, is_right=True)
        return f"{left} {expr.op.value} {right}"
    if isinstance(expr, ast.UnaryOp):
        operand = print_expression(expr.operand)
        if isinstance(expr.operand, (ast.BinaryOp, ast.Between, ast.Like)):
            operand = f"({operand})"
        if expr.op is ast.UnaryOperator.NOT:
            return f"NOT {operand}"
        return f"{expr.op.value}{operand}"
    if isinstance(expr, ast.FunctionCall):
        args = ", ".join(print_expression(a) for a in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, ast.Like):
        not_part = "NOT " if expr.negated else ""
        return (
            f"{_operand(expr.operand)} {not_part}LIKE "
            f"{_operand(expr.pattern)}"
        )
    if isinstance(expr, ast.Between):
        not_part = "NOT " if expr.negated else ""
        return (
            f"{_operand(expr.operand)} {not_part}BETWEEN "
            f"{_operand(expr.low)} AND {_operand(expr.high)}"
        )
    if isinstance(expr, ast.InList):
        not_part = "NOT " if expr.negated else ""
        items = ", ".join(print_expression(i) for i in expr.items)
        return f"{_operand(expr.operand)} {not_part}IN ({items})"
    if isinstance(expr, ast.InSubquery):
        not_part = "NOT " if expr.negated else ""
        return (
            f"{_operand(expr.operand)} {not_part}IN "
            f"({print_query(expr.subquery)})"
        )
    if isinstance(expr, ast.Exists):
        not_part = "NOT " if expr.negated else ""
        return f"{not_part}EXISTS ({print_query(expr.subquery)})"
    if isinstance(expr, ast.ScalarSubquery):
        return f"({print_query(expr.subquery)})"
    if isinstance(expr, ast.IsNull):
        not_part = "NOT " if expr.negated else ""
        return f"{_operand(expr.operand)} IS {not_part}NULL"
    if isinstance(expr, ast.CaseWhen):
        parts = ["CASE"]
        for cond, value in expr.branches:
            parts.append(f"WHEN {print_expression(cond)} THEN {print_expression(value)}")
        if expr.default is not None:
            parts.append(f"ELSE {print_expression(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    raise TypeError(f"cannot print expression node {type(expr).__name__}")


_PRECEDENCE = {
    ast.BinaryOperator.OR: 1,
    ast.BinaryOperator.AND: 2,
    ast.BinaryOperator.EQ: 3,
    ast.BinaryOperator.NE: 3,
    ast.BinaryOperator.LT: 3,
    ast.BinaryOperator.LE: 3,
    ast.BinaryOperator.GT: 3,
    ast.BinaryOperator.GE: 3,
    ast.BinaryOperator.ADD: 4,
    ast.BinaryOperator.SUB: 4,
    ast.BinaryOperator.CONCAT: 4,
    ast.BinaryOperator.MUL: 5,
    ast.BinaryOperator.DIV: 5,
    ast.BinaryOperator.MOD: 5,
}


def _maybe_paren(
    child: ast.Expression, parent_op: ast.BinaryOperator, is_right: bool
) -> str:
    text = print_expression(child)
    if isinstance(child, ast.BinaryOp):
        if _PRECEDENCE[child.op] < _PRECEDENCE[parent_op]:
            return f"({text})"
        if _PRECEDENCE[child.op] == _PRECEDENCE[parent_op]:
            # Comparisons are non-associative in the grammar — always
            # parenthesize a comparison nested under a comparison.
            if parent_op.is_comparison:
                return f"({text})"
            # All other binary operators parse left-associatively, so a
            # right child of equal precedence needs parentheses to keep
            # its shape ("1 + (2 + 3)").
            if is_right:
                return f"({text})"
    if isinstance(child, (ast.Like, ast.Between, ast.InList, ast.InSubquery, ast.IsNull)):
        if parent_op.is_logical:
            return text
        return f"({text})"
    return text


def print_table_expression(source: ast.TableExpression) -> str:
    """Render a FROM-clause tree."""
    if isinstance(source, ast.TableRef):
        text = format_identifier(source.name)
        if source.alias:
            text += f" AS {format_identifier(source.alias)}"
        return text
    if isinstance(source, ast.Join):
        left = print_table_expression(source.left)
        right = print_table_expression(source.right)
        if isinstance(source.right, ast.Join):
            right = f"({right})"
        if source.kind is ast.JoinKind.CROSS or source.condition is None:
            return f"{left} {source.kind.value} {right}"
        return f"{left} {source.kind.value} {right} ON {print_expression(source.condition)}"
    if isinstance(source, ast.SubquerySource):
        return f"({print_query(source.subquery)}) AS {format_identifier(source.alias)}"
    raise TypeError(f"cannot print table expression {type(source).__name__}")


def print_select(select: ast.Select) -> str:
    """Render a single SELECT block."""
    parts = ["SELECT"]
    if select.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_print_select_item(item) for item in select.items))
    if select.source is not None:
        parts.append("FROM")
        parts.append(print_table_expression(select.source))
    if select.where is not None:
        parts.append("WHERE")
        parts.append(print_expression(select.where))
    if select.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(print_expression(e) for e in select.group_by))
    if select.having is not None:
        parts.append("HAVING")
        parts.append(print_expression(select.having))
    if select.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_print_order_item(o) for o in select.order_by))
    if select.limit is not None:
        parts.append(f"LIMIT {select.limit}")
        if select.offset is not None:
            parts.append(f"OFFSET {select.offset}")
    return " ".join(parts)


def _print_select_item(item: ast.SelectItem) -> str:
    text = print_expression(item.expression)
    if item.alias:
        return f"{text} AS {format_identifier(item.alias)}"
    return text


def _print_order_item(item: ast.OrderItem) -> str:
    text = print_expression(item.expression)
    if item.order is ast.SortOrder.DESC:
        return f"{text} DESC"
    return f"{text} ASC"


def print_query(query: ast.Query) -> str:
    """Render a SELECT or set-operation query."""
    if isinstance(query, ast.Select):
        return print_select(query)
    if isinstance(query, ast.SetOperation):
        left = print_query(query.left)
        right = print_query(query.right)
        text = f"{left} {query.op.value} {right}"
        if query.order_by:
            text += " ORDER BY " + ", ".join(
                _print_order_item(o) for o in query.order_by
            )
        if query.limit is not None:
            text += f" LIMIT {query.limit}"
        return text
    raise TypeError(f"cannot print query node {type(query).__name__}")


def print_statement(stmt: ast.Statement) -> str:
    """Render any supported statement."""
    if isinstance(stmt, (ast.Select, ast.SetOperation)):
        return print_query(stmt)
    if isinstance(stmt, ast.CreateTable):
        pieces = []
        for col in stmt.columns:
            piece = f"{format_identifier(col.name)} {col.type_name}"
            if col.primary_key:
                piece += " PRIMARY KEY"
            pieces.append(piece)
        for fk in stmt.foreign_keys:
            pieces.append(
                f"FOREIGN KEY ({format_identifier(fk.column)}) REFERENCES "
                f"{format_identifier(fk.ref_table)}({format_identifier(fk.ref_column)})"
            )
        return f"CREATE TABLE {format_identifier(stmt.name)} ({', '.join(pieces)})"
    if isinstance(stmt, ast.Insert):
        cols = ""
        if stmt.columns:
            cols = " (" + ", ".join(format_identifier(c) for c in stmt.columns) + ")"
        rows = ", ".join(
            "(" + ", ".join(print_expression(v) for v in row) + ")"
            for row in stmt.rows
        )
        return f"INSERT INTO {format_identifier(stmt.table)}{cols} VALUES {rows}"
    if isinstance(stmt, ast.Update):
        assignments = ", ".join(
            f"{format_identifier(col)} = {print_expression(value)}"
            for col, value in stmt.assignments
        )
        text = f"UPDATE {format_identifier(stmt.table)} SET {assignments}"
        if stmt.where is not None:
            text += f" WHERE {print_expression(stmt.where)}"
        return text
    if isinstance(stmt, ast.Delete):
        text = f"DELETE FROM {format_identifier(stmt.table)}"
        if stmt.where is not None:
            text += f" WHERE {print_expression(stmt.where)}"
        return text
    if isinstance(stmt, ast.DropTable):
        if_exists = "IF EXISTS " if stmt.if_exists else ""
        return f"DROP TABLE {if_exists}{format_identifier(stmt.name)}"
    raise TypeError(f"cannot print statement {type(stmt).__name__}")
