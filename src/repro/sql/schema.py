"""Schema catalog: columns, tables, foreign keys, and databases.

Beyond the engine's needs, schema objects carry the *natural language*
annotations the NL2SQL stack uses: a human-readable name and a synonym list
per table/column (SPIDER ships the same information as "column names
(original)" vs "column names").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import CatalogError
from repro.sql.types import DataType


@dataclass
class Column:
    """A column definition with NL annotations.

    Attributes:
        name: The SQL identifier (e.g. ``Song_release_year``).
        dtype: Declared type.
        nl_name: Human-readable name (e.g. ``song release year``).
        synonyms: Additional phrases users may use for this column.
        primary_key: Whether this column is the table's primary key.
    """

    name: str
    dtype: DataType
    nl_name: str = ""
    synonyms: tuple[str, ...] = ()
    primary_key: bool = False

    def __post_init__(self) -> None:
        if not self.nl_name:
            self.nl_name = self.name.replace("_", " ").lower()

    @property
    def key(self) -> str:
        return self.name.lower()


@dataclass
class ForeignKey:
    """``table.column`` references ``ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str


@dataclass
class Table:
    """A table definition with NL annotations and foreign keys."""

    name: str
    columns: list[Column]
    nl_name: str = ""
    synonyms: tuple[str, ...] = ()
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.nl_name:
            self.nl_name = self.name.replace("_", " ").lower()
        self._by_key = {column.key: column for column in self.columns}
        if len(self._by_key) != len(self.columns):
            raise CatalogError(f"duplicate column names in table {self.name!r}")

    def column(self, name: str) -> Column:
        """Look up a column by (case-insensitive) name."""
        try:
            return self._by_key[name.lower()]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_key

    @property
    def primary_key(self) -> Optional[Column]:
        for column in self.columns:
            if column.primary_key:
                return column
        return None

    @property
    def key(self) -> str:
        return self.name.lower()


class DatabaseSchema:
    """A named collection of tables with lookup helpers."""

    def __init__(self, name: str, tables: Iterable[Table]) -> None:
        self.name = name
        self.tables = list(tables)
        self._by_key = {table.key: table for table in self.tables}
        if len(self._by_key) != len(self.tables):
            raise CatalogError(f"duplicate table names in database {name!r}")

    def table(self, name: str) -> Table:
        """Look up a table by (case-insensitive) name."""
        try:
            return self._by_key[name.lower()]
        except KeyError:
            raise CatalogError(
                f"database {self.name!r} has no table {name!r}"
            ) from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._by_key

    def add_table(self, table: Table) -> None:
        if table.key in self._by_key:
            raise CatalogError(f"table {table.name!r} already exists")
        self.tables.append(table)
        self._by_key[table.key] = table

    def drop_table(self, name: str) -> None:
        table = self.table(name)
        self.tables.remove(table)
        del self._by_key[table.key]

    def resolve_column(self, column_name: str) -> list[tuple[Table, Column]]:
        """Return every (table, column) pair whose column matches the name."""
        matches = []
        for table in self.tables:
            if table.has_column(column_name):
                matches.append((table, table.column(column_name)))
        return matches

    def join_path(self, left: str, right: str) -> Optional[ForeignKey]:
        """Find a direct FK linking ``left`` to ``right`` (either direction).

        Returns the FK as declared on whichever table declares it; callers
        inspect ``ref_table`` to orient the join condition.
        """
        left_table = self.table(left)
        right_table = self.table(right)
        for fk in left_table.foreign_keys:
            if fk.ref_table.lower() == right_table.key:
                return fk
        for fk in right_table.foreign_keys:
            if fk.ref_table.lower() == left_table.key:
                return fk
        return None

    def ddl(self) -> str:
        """Render the schema as CREATE TABLE statements (for prompts)."""
        statements = []
        for table in self.tables:
            pieces = []
            for column in table.columns:
                piece = f"{column.name} {column.dtype.value}"
                if column.primary_key:
                    piece += " PRIMARY KEY"
                pieces.append(piece)
            for fk in table.foreign_keys:
                pieces.append(
                    f"FOREIGN KEY ({fk.column}) REFERENCES "
                    f"{fk.ref_table}({fk.ref_column})"
                )
            body = ",\n  ".join(pieces)
            statements.append(f"CREATE TABLE {table.name} (\n  {body}\n);")
        return "\n".join(statements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DatabaseSchema({self.name!r}, {len(self.tables)} tables)"
