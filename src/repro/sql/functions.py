"""Scalar and aggregate function implementations.

Scalar functions receive already-evaluated arguments and return a value.
Aggregates are accumulator classes fed one value per row.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ExecutionError
from repro.sql.types import SqlValue, sql_compare


def _require_str(value: SqlValue, fn: str) -> str:
    if not isinstance(value, str):
        raise ExecutionError(f"{fn} expects a string argument, got {value!r}")
    return value


def _numeric(value: SqlValue, fn: str) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            pass
    raise ExecutionError(f"{fn} expects a numeric argument, got {value!r}")


def _fn_abs(args: list[SqlValue]) -> SqlValue:
    if args[0] is None:
        return None
    value = args[0]
    if isinstance(value, int) and not isinstance(value, bool):
        return abs(value)
    return abs(_numeric(value, "ABS"))


def _fn_round(args: list[SqlValue]) -> SqlValue:
    if args[0] is None:
        return None
    digits = 0
    if len(args) > 1:
        if args[1] is None:
            return None
        digits = int(_numeric(args[1], "ROUND"))
    return round(_numeric(args[0], "ROUND"), digits)


def _fn_lower(args: list[SqlValue]) -> SqlValue:
    if args[0] is None:
        return None
    return _require_str(args[0], "LOWER").lower()


def _fn_upper(args: list[SqlValue]) -> SqlValue:
    if args[0] is None:
        return None
    return _require_str(args[0], "UPPER").upper()


def _fn_length(args: list[SqlValue]) -> SqlValue:
    if args[0] is None:
        return None
    return len(str(args[0]))


def _fn_substr(args: list[SqlValue]) -> SqlValue:
    if args[0] is None:
        return None
    text = str(args[0])
    start = int(_numeric(args[1], "SUBSTR")) if len(args) > 1 else 1
    # SQL SUBSTR is 1-based
    index = max(start - 1, 0)
    if len(args) > 2:
        if args[2] is None:
            return None
        length = int(_numeric(args[2], "SUBSTR"))
        return text[index : index + max(length, 0)]
    return text[index:]


def _fn_trim(args: list[SqlValue]) -> SqlValue:
    if args[0] is None:
        return None
    return str(args[0]).strip()


def _fn_coalesce(args: list[SqlValue]) -> SqlValue:
    for value in args:
        if value is not None:
            return value
    return None


def _fn_nullif(args: list[SqlValue]) -> SqlValue:
    if len(args) != 2:
        raise ExecutionError("NULLIF expects exactly 2 arguments")
    if sql_compare(args[0], args[1]) == 0:
        return None
    return args[0]


def _fn_year(args: list[SqlValue]) -> SqlValue:
    """Extract the year from an ISO date/datetime string (or pass integers)."""
    value = args[0]
    if value is None:
        return None
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    text = str(value)
    if len(text) >= 4 and text[:4].isdigit():
        return int(text[:4])
    raise ExecutionError(f"YEAR expects an ISO date, got {value!r}")


def _fn_month(args: list[SqlValue]) -> SqlValue:
    value = args[0]
    if value is None:
        return None
    text = str(value)
    if len(text) >= 7 and text[5:7].isdigit():
        return int(text[5:7])
    raise ExecutionError(f"MONTH expects an ISO date, got {value!r}")


SCALAR_FUNCTIONS: dict[str, Callable[[list[SqlValue]], SqlValue]] = {
    "ABS": _fn_abs,
    "ROUND": _fn_round,
    "LOWER": _fn_lower,
    "UPPER": _fn_upper,
    "LENGTH": _fn_length,
    "SUBSTR": _fn_substr,
    "SUBSTRING": _fn_substr,
    "TRIM": _fn_trim,
    "COALESCE": _fn_coalesce,
    "IFNULL": _fn_coalesce,
    "NULLIF": _fn_nullif,
    "YEAR": _fn_year,
    "MONTH": _fn_month,
}


class Aggregate:
    """Base accumulator. Feed values with :meth:`add`, read :meth:`result`."""

    def add(self, value: SqlValue) -> None:
        raise NotImplementedError

    def result(self) -> SqlValue:
        raise NotImplementedError


class CountAgg(Aggregate):
    """COUNT(expr) — counts non-NULL values. COUNT(*) feeds a sentinel."""

    def __init__(self, distinct: bool = False) -> None:
        self._count = 0
        self._distinct = distinct
        self._seen: set = set()

    def add(self, value: SqlValue) -> None:
        if value is None:
            return
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._count += 1

    def result(self) -> SqlValue:
        return self._count


class SumAgg(Aggregate):
    def __init__(self, distinct: bool = False) -> None:
        self._total: Optional[float] = None
        self._all_int = True
        self._distinct = distinct
        self._seen: set = set()

    def add(self, value: SqlValue) -> None:
        if value is None:
            return
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        number = _numeric(value, "SUM")
        if not (isinstance(value, int) and not isinstance(value, bool)):
            self._all_int = False
        self._total = number if self._total is None else self._total + number

    def result(self) -> SqlValue:
        if self._total is None:
            return None
        if self._all_int:
            return int(self._total)
        return self._total


class AvgAgg(Aggregate):
    def __init__(self, distinct: bool = False) -> None:
        self._total = 0.0
        self._count = 0
        self._distinct = distinct
        self._seen: set = set()

    def add(self, value: SqlValue) -> None:
        if value is None:
            return
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._total += _numeric(value, "AVG")
        self._count += 1

    def result(self) -> SqlValue:
        if self._count == 0:
            return None
        return self._total / self._count


class MinAgg(Aggregate):
    def __init__(self, distinct: bool = False) -> None:
        self._best: SqlValue = None

    def add(self, value: SqlValue) -> None:
        if value is None:
            return
        if self._best is None or sql_compare(value, self._best) == -1:
            self._best = value

    def result(self) -> SqlValue:
        return self._best


class MaxAgg(Aggregate):
    def __init__(self, distinct: bool = False) -> None:
        self._best: SqlValue = None

    def add(self, value: SqlValue) -> None:
        if value is None:
            return
        if self._best is None or sql_compare(value, self._best) == 1:
            self._best = value

    def result(self) -> SqlValue:
        return self._best


AGGREGATE_FACTORIES: dict[str, Callable[[bool], Aggregate]] = {
    "COUNT": lambda distinct: CountAgg(distinct),
    "SUM": lambda distinct: SumAgg(distinct),
    "AVG": lambda distinct: AvgAgg(distinct),
    "MIN": lambda distinct: MinAgg(distinct),
    "MAX": lambda distinct: MaxAgg(distinct),
}
