"""Token definitions for the SQL lexer.

The dialect is the subset of SQL needed to execute SPIDER-style analytic
queries plus the DDL/DML required to build databases from scripts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Lexical categories produced by :class:`repro.sql.lexer.Lexer`."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


#: Reserved words recognized by the lexer (upper-cased canonical form).
KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "ASC",
        "DESC",
        "LIMIT",
        "OFFSET",
        "JOIN",
        "INNER",
        "LEFT",
        "RIGHT",
        "OUTER",
        "CROSS",
        "ON",
        "AS",
        "AND",
        "OR",
        "NOT",
        "IN",
        "IS",
        "NULL",
        "LIKE",
        "BETWEEN",
        "EXISTS",
        "UNION",
        "INTERSECT",
        "EXCEPT",
        "ALL",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "TRUE",
        "FALSE",
        "CREATE",
        "TABLE",
        "PRIMARY",
        "FOREIGN",
        "KEY",
        "REFERENCES",
        "INSERT",
        "INTO",
        "VALUES",
        "UPDATE",
        "SET",
        "DELETE",
        "DROP",
        "INTEGER",
        "INT",
        "REAL",
        "FLOAT",
        "TEXT",
        "VARCHAR",
        "DATE",
        "BOOLEAN",
        "BOOL",
    }
)

#: Multi-character operators, longest first so the lexer can greedily match.
OPERATORS = ("<>", "!=", ">=", "<=", "=", "<", ">", "+", "-", "*", "/", "%", "||")

PUNCTUATION = ("(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        type: Lexical category.
        value: Canonical text (keywords upper-cased, identifiers as written,
            string literals with quotes stripped).
        position: Byte offset of the token's first character in the input.
    """

    type: TokenType
    value: str
    position: int

    def is_keyword(self, *words: str) -> bool:
        """Return True if this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}@{self.position})"
