"""SQL value types, coercion, and three-valued comparison semantics.

Values are represented with native Python objects: ``None`` (NULL), ``int``,
``float``, ``str``, ``bool``. Dates are ISO-8601 strings (``YYYY-MM-DD`` or
``YYYY-MM-DD HH:MM:SS``), which order correctly under string comparison —
the same convention SQLite uses for TEXT dates.
"""

from __future__ import annotations

import enum
from typing import Optional, Union

from repro.errors import TypeMismatchError

SqlValue = Union[int, float, str, bool, None]


class DataType(enum.Enum):
    """Declared column types."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    DATE = "DATE"
    BOOLEAN = "BOOLEAN"

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        """Map a SQL type keyword (e.g. VARCHAR, INT) to a DataType."""
        upper = name.upper()
        mapping = {
            "INTEGER": cls.INTEGER,
            "INT": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "REAL": cls.REAL,
            "FLOAT": cls.REAL,
            "DOUBLE": cls.REAL,
            "NUMERIC": cls.REAL,
            "DECIMAL": cls.REAL,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "DATE": cls.DATE,
            "DATETIME": cls.DATE,
            "TIMESTAMP": cls.DATE,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
        }
        if upper not in mapping:
            raise TypeMismatchError(f"unknown SQL type {name!r}")
        return mapping[upper]

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INTEGER, DataType.REAL)


def coerce(value: SqlValue, dtype: DataType) -> SqlValue:
    """Coerce ``value`` into the Python representation for ``dtype``.

    NULL passes through every type. Raises
    :class:`~repro.errors.TypeMismatchError` for impossible coercions.
    """
    if value is None:
        return None
    if dtype is DataType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError as exc:
                raise TypeMismatchError(
                    f"cannot store {value!r} in an INTEGER column"
                ) from exc
        raise TypeMismatchError(f"cannot store {value!r} in an INTEGER column")
    if dtype is DataType.REAL:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError as exc:
                raise TypeMismatchError(
                    f"cannot store {value!r} in a REAL column"
                ) from exc
        raise TypeMismatchError(f"cannot store {value!r} in a REAL column")
    if dtype in (DataType.TEXT, DataType.DATE):
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "true" if value else "false"
        return str(value)
    if dtype is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int):
            return bool(value)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "t", "1", "yes"):
                return True
            if lowered in ("false", "f", "0", "no"):
                return False
            raise TypeMismatchError(f"cannot store {value!r} in a BOOLEAN column")
        raise TypeMismatchError(f"cannot store {value!r} in a BOOLEAN column")
    raise TypeMismatchError(f"unsupported data type {dtype}")  # pragma: no cover


def sql_compare(left: SqlValue, right: SqlValue) -> Optional[int]:
    """Three-valued SQL comparison.

    Returns -1/0/+1, or ``None`` when either side is NULL (unknown).
    Numeric values compare numerically (int vs float allowed); booleans
    compare as integers; strings compare lexicographically. Numbers given as
    numeric-looking strings are compared numerically against numbers, which
    smooths over generated data that stores years as text.
    """
    if left is None or right is None:
        return None
    left_n = _as_number(left)
    right_n = _as_number(right)
    if left_n is not None and right_n is not None:
        if left_n < right_n:
            return -1
        if left_n > right_n:
            return 1
        return 0
    left_s = str(left) if not isinstance(left, str) else left
    right_s = str(right) if not isinstance(right, str) else right
    if left_s < right_s:
        return -1
    if left_s > right_s:
        return 1
    return 0


def _as_number(value: SqlValue) -> Optional[float]:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        stripped = value.strip()
        if not stripped:
            return None
        try:
            return float(stripped)
        except ValueError:
            return None
    return None


def sort_key(value: SqlValue):
    """Total-order sort key: NULLs first, then numbers, then strings.

    Mirrors SQLite's ordering across storage classes, which keeps ORDER BY
    deterministic on mixed-type columns.
    """
    if value is None:
        return (0, 0.0, "")
    number = _as_number(value) if not isinstance(value, str) else None
    if number is not None:
        return (1, number, "")
    if isinstance(value, str):
        return (2, 0.0, value)
    return (2, 0.0, str(value))  # pragma: no cover - defensive


def values_equal(left: SqlValue, right: SqlValue, float_tol: float = 1e-6) -> bool:
    """NULL-aware equality used by result comparison (NULL == NULL here).

    Unlike :func:`sql_compare`, this is for comparing *result sets*, where
    two NULL cells should count as equal.
    """
    if left is None and right is None:
        return True
    if left is None or right is None:
        return False
    left_n = _as_number(left) if isinstance(left, (int, float, bool)) else None
    right_n = _as_number(right) if isinstance(right, (int, float, bool)) else None
    if left_n is not None and right_n is not None:
        return abs(left_n - right_n) <= float_tol * max(1.0, abs(left_n), abs(right_n))
    return str(left) == str(right)
