"""Recursive-descent parser for the SQL dialect.

Entry points:

* :func:`parse_statement` — any supported statement.
* :func:`parse_query` — SELECT or set-operation query (the common case).
* :func:`parse_expression` — a standalone expression (used by the editor).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenType

_COMPARISON_OPS = {
    "=": ast.BinaryOperator.EQ,
    "!=": ast.BinaryOperator.NE,
    "<>": ast.BinaryOperator.NE,
    "<": ast.BinaryOperator.LT,
    "<=": ast.BinaryOperator.LE,
    ">": ast.BinaryOperator.GT,
    ">=": ast.BinaryOperator.GE,
}

_ADDITIVE_OPS = {
    "+": ast.BinaryOperator.ADD,
    "-": ast.BinaryOperator.SUB,
    "||": ast.BinaryOperator.CONCAT,
}

_MULTIPLICATIVE_OPS = {
    "*": ast.BinaryOperator.MUL,
    "/": ast.BinaryOperator.DIV,
    "%": ast.BinaryOperator.MOD,
}


class Parser:
    """Parses a token stream into AST nodes."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = tokenize(text)
        self._index = 0

    # -- token helpers ------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _check_keyword(self, *words: str) -> bool:
        return self._current.is_keyword(*words)

    def _accept_keyword(self, *words: str) -> bool:
        if self._check_keyword(*words):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> Token:
        if not self._check_keyword(word):
            raise ParseError(
                f"expected {word}, found {self._current.value!r} "
                f"at offset {self._current.position}"
            )
        return self._advance()

    def _accept_punct(self, value: str) -> bool:
        token = self._current
        if token.type is TokenType.PUNCTUATION and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._accept_punct(value):
            raise ParseError(
                f"expected {value!r}, found {self._current.value!r} "
                f"at offset {self._current.position}"
            )

    def _expect_identifier(self) -> str:
        token = self._current
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return token.value
        # Non-reserved use of soft keywords as identifiers is common in
        # generated schemas (e.g. a column literally named "date").
        if token.type is TokenType.KEYWORD and token.value in _SOFT_KEYWORDS:
            self._advance()
            return token.value.lower()
        raise ParseError(
            f"expected identifier, found {token.value!r} at offset {token.position}"
        )

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        """Parse exactly one statement and require end of input."""
        stmt = self._statement()
        self._accept_punct(";")
        if self._current.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input at offset {self._current.position}: "
                f"{self._current.value!r}"
            )
        return stmt

    def _statement(self) -> ast.Statement:
        if self._check_keyword("SELECT") or (
            self._current.type is TokenType.PUNCTUATION and self._current.value == "("
        ):
            return self._query()
        if self._check_keyword("CREATE"):
            return self._create_table()
        if self._check_keyword("INSERT"):
            return self._insert()
        if self._check_keyword("UPDATE"):
            return self._update()
        if self._check_keyword("DELETE"):
            return self._delete()
        if self._check_keyword("DROP"):
            return self._drop_table()
        raise ParseError(
            f"expected a statement, found {self._current.value!r} "
            f"at offset {self._current.position}"
        )

    # -- queries ------------------------------------------------------------

    def parse_query(self) -> ast.Query:
        """Parse a SELECT / set-operation query and require end of input."""
        query = self._query()
        self._accept_punct(";")
        if self._current.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input at offset {self._current.position}: "
                f"{self._current.value!r}"
            )
        return query

    def _query(self) -> ast.Query:
        left: ast.Query = self._select_core()
        while self._check_keyword("UNION", "INTERSECT", "EXCEPT"):
            word = self._advance().value
            if word == "UNION" and self._accept_keyword("ALL"):
                op = ast.SetOperator.UNION_ALL
            else:
                op = ast.SetOperator[word]
            right = self._select_core()
            operation = ast.SetOperation(op=op, left=left, right=right)
            # A trailing ORDER BY / LIMIT binds to the whole compound query
            # (standard semantics); the right SELECT consumed it greedily,
            # so hoist it.
            if right.order_by:
                operation.order_by = right.order_by
                right.order_by = []
            if right.limit is not None:
                operation.limit = right.limit
                right.limit = None
            left = operation
        if isinstance(left, ast.SetOperation):
            if self._accept_keyword("ORDER"):
                self._expect_keyword("BY")
                left.order_by = self._order_items()
            if self._accept_keyword("LIMIT"):
                left.limit = self._integer_literal()
        return left

    def _select_core(self) -> ast.Select:
        if self._accept_punct("("):
            query = self._query()
            self._expect_punct(")")
            if not isinstance(query, ast.Select):
                raise ParseError("parenthesized set operations are not supported")
            return query
        self._expect_keyword("SELECT")
        select = ast.Select(items=[])
        select.distinct = self._accept_keyword("DISTINCT")
        self._accept_keyword("ALL")
        select.items = self._select_items()
        if self._accept_keyword("FROM"):
            select.source = self._table_expression()
        if self._accept_keyword("WHERE"):
            select.where = self._expression()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            select.group_by = self._expression_list()
        if self._accept_keyword("HAVING"):
            select.having = self._expression()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            select.order_by = self._order_items()
        if self._accept_keyword("LIMIT"):
            select.limit = self._integer_literal()
            if self._accept_keyword("OFFSET"):
                select.offset = self._integer_literal()
        return select

    def _select_items(self) -> list[ast.SelectItem]:
        items = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> ast.SelectItem:
        expr = self._expression()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.SelectItem(expression=expr, alias=alias)

    def _order_items(self) -> list[ast.OrderItem]:
        items = [self._order_item()]
        while self._accept_punct(","):
            items.append(self._order_item())
        return items

    def _order_item(self) -> ast.OrderItem:
        expr = self._expression()
        order = ast.SortOrder.ASC
        if self._accept_keyword("DESC"):
            order = ast.SortOrder.DESC
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expression=expr, order=order)

    def _integer_literal(self) -> int:
        token = self._current
        if token.type is not TokenType.INTEGER:
            raise ParseError(
                f"expected integer, found {token.value!r} at offset {token.position}"
            )
        self._advance()
        return int(token.value)

    def _expression_list(self) -> list[ast.Expression]:
        exprs = [self._expression()]
        while self._accept_punct(","):
            exprs.append(self._expression())
        return exprs

    # -- FROM clause --------------------------------------------------------

    def _table_expression(self) -> ast.TableExpression:
        left = self._table_primary()
        while True:
            if self._accept_punct(","):
                right = self._table_primary()
                left = ast.Join(kind=ast.JoinKind.CROSS, left=left, right=right)
                continue
            kind = self._join_kind()
            if kind is None:
                return left
            right = self._table_primary()
            condition: Optional[ast.Expression] = None
            if kind is not ast.JoinKind.CROSS:
                self._expect_keyword("ON")
                condition = self._expression()
            left = ast.Join(kind=kind, left=left, right=right, condition=condition)

    def _join_kind(self) -> Optional[ast.JoinKind]:
        if self._accept_keyword("JOIN"):
            return ast.JoinKind.INNER
        if self._check_keyword("INNER") and self._peek().is_keyword("JOIN"):
            self._advance()
            self._advance()
            return ast.JoinKind.INNER
        if self._check_keyword("LEFT"):
            self._advance()
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return ast.JoinKind.LEFT
        if self._check_keyword("CROSS") and self._peek().is_keyword("JOIN"):
            self._advance()
            self._advance()
            return ast.JoinKind.CROSS
        return None

    def _table_primary(self) -> ast.TableExpression:
        if self._accept_punct("("):
            if self._check_keyword("SELECT"):
                subquery = self._query()
                self._expect_punct(")")
                if not isinstance(subquery, ast.Select):
                    raise ParseError("set operations in FROM are not supported")
                self._accept_keyword("AS")
                alias = self._expect_identifier()
                return ast.SubquerySource(subquery=subquery, alias=alias)
            inner = self._table_expression()
            self._expect_punct(")")
            return inner
        name = self._expect_identifier()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.TableRef(name=name, alias=alias)

    # -- expressions --------------------------------------------------------

    def parse_expression(self) -> ast.Expression:
        """Parse a standalone expression and require end of input."""
        expr = self._expression()
        if self._current.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input at offset {self._current.position}"
            )
        return expr

    def _expression(self) -> ast.Expression:
        return self._or_expr()

    def _or_expr(self) -> ast.Expression:
        left = self._and_expr()
        while self._accept_keyword("OR"):
            right = self._and_expr()
            left = ast.BinaryOp(ast.BinaryOperator.OR, left, right)
        return left

    def _and_expr(self) -> ast.Expression:
        left = self._not_expr()
        while self._accept_keyword("AND"):
            right = self._not_expr()
            left = ast.BinaryOp(ast.BinaryOperator.AND, left, right)
        return left

    def _not_expr(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp(ast.UnaryOperator.NOT, self._not_expr())
        return self._predicate()

    def _predicate(self) -> ast.Expression:
        left = self._additive()
        if self._current.type is TokenType.OPERATOR and (
            self._current.value in _COMPARISON_OPS
        ):
            op = _COMPARISON_OPS[self._advance().value]
            right = self._additive()
            return ast.BinaryOp(op, left, right)

        negated = False
        if self._check_keyword("NOT") and self._peek().is_keyword(
            "LIKE", "IN", "BETWEEN"
        ):
            self._advance()
            negated = True

        if self._accept_keyword("LIKE"):
            pattern = self._additive()
            return ast.Like(operand=left, pattern=pattern, negated=negated)
        if self._accept_keyword("BETWEEN"):
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return ast.Between(operand=left, low=low, high=high, negated=negated)
        if self._accept_keyword("IN"):
            self._expect_punct("(")
            if self._check_keyword("SELECT"):
                subquery = self._query()
                self._expect_punct(")")
                if not isinstance(subquery, ast.Select):
                    raise ParseError("set operations inside IN are not supported")
                return ast.InSubquery(operand=left, subquery=subquery, negated=negated)
            items = self._expression_list()
            self._expect_punct(")")
            return ast.InList(operand=left, items=items, negated=negated)
        if self._accept_keyword("IS"):
            is_negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNull(operand=left, negated=is_negated)
        if negated:
            raise ParseError("dangling NOT in predicate")
        return left

    def _additive(self) -> ast.Expression:
        left = self._multiplicative()
        while (
            self._current.type is TokenType.OPERATOR
            and self._current.value in _ADDITIVE_OPS
        ):
            op = _ADDITIVE_OPS[self._advance().value]
            right = self._multiplicative()
            left = ast.BinaryOp(op, left, right)
        return left

    def _multiplicative(self) -> ast.Expression:
        left = self._unary()
        while (
            self._current.type is TokenType.OPERATOR
            and self._current.value in _MULTIPLICATIVE_OPS
        ):
            op = _MULTIPLICATIVE_OPS[self._advance().value]
            right = self._unary()
            left = ast.BinaryOp(op, left, right)
        return left

    def _unary(self) -> ast.Expression:
        if self._current.type is TokenType.OPERATOR and self._current.value == "-":
            self._advance()
            return ast.UnaryOp(ast.UnaryOperator.NEG, self._unary())
        if self._current.type is TokenType.OPERATOR and self._current.value == "+":
            self._advance()
            return ast.UnaryOp(ast.UnaryOperator.POS, self._unary())
        return self._primary()

    def _primary(self) -> ast.Expression:
        token = self._current

        if token.type is TokenType.INTEGER:
            self._advance()
            return ast.Literal(int(token.value))
        if token.type is TokenType.FLOAT:
            self._advance()
            return ast.Literal(float(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            subquery = self._query()
            self._expect_punct(")")
            if not isinstance(subquery, ast.Select):
                raise ParseError("set operations inside EXISTS are not supported")
            return ast.Exists(subquery=subquery)
        if token.is_keyword("CASE"):
            return self._case_when()
        if token.type is TokenType.PUNCTUATION and token.value == "(":
            self._advance()
            if self._check_keyword("SELECT"):
                subquery = self._query()
                self._expect_punct(")")
                if not isinstance(subquery, ast.Select):
                    raise ParseError("set operations as scalars are not supported")
                return ast.ScalarSubquery(subquery=subquery)
            expr = self._expression()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.Star()
        if token.type is TokenType.IDENTIFIER or (
            token.type is TokenType.KEYWORD and token.value in _SOFT_KEYWORDS
        ):
            return self._identifier_expression()
        raise ParseError(
            f"unexpected token {token.value!r} at offset {token.position}"
        )

    def _case_when(self) -> ast.Expression:
        self._expect_keyword("CASE")
        branches: list[tuple[ast.Expression, ast.Expression]] = []
        while self._accept_keyword("WHEN"):
            cond = self._expression()
            self._expect_keyword("THEN")
            value = self._expression()
            branches.append((cond, value))
        if not branches:
            raise ParseError("CASE requires at least one WHEN branch")
        default: Optional[ast.Expression] = None
        if self._accept_keyword("ELSE"):
            default = self._expression()
        self._expect_keyword("END")
        return ast.CaseWhen(branches=branches, default=default)

    def _identifier_expression(self) -> ast.Expression:
        name = self._expect_identifier()
        if self._accept_punct("("):
            return self._function_call(name)
        if self._accept_punct("."):
            if self._current.type is TokenType.OPERATOR and self._current.value == "*":
                self._advance()
                return ast.Star(table=name)
            column = self._expect_identifier()
            return ast.ColumnRef(column=column, table=name)
        return ast.ColumnRef(column=name)

    def _function_call(self, name: str) -> ast.Expression:
        distinct = False
        args: list[ast.Expression] = []
        if not self._accept_punct(")"):
            distinct = self._accept_keyword("DISTINCT")
            if self._current.type is TokenType.OPERATOR and self._current.value == "*":
                self._advance()
                args.append(ast.Star())
            else:
                args.append(self._expression())
            while self._accept_punct(","):
                args.append(self._expression())
            self._expect_punct(")")
        return ast.FunctionCall(name=name, args=args, distinct=distinct)

    # -- DDL / DML ----------------------------------------------------------

    def _create_table(self) -> ast.CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        name = self._expect_identifier()
        self._expect_punct("(")
        columns: list[ast.ColumnDef] = []
        foreign_keys: list[ast.ForeignKeyDef] = []
        while True:
            if self._check_keyword("PRIMARY"):
                self._advance()
                self._expect_keyword("KEY")
                self._expect_punct("(")
                pk_col = self._expect_identifier()
                self._expect_punct(")")
                for col in columns:
                    if col.name.lower() == pk_col.lower():
                        col.primary_key = True
                        break
            elif self._check_keyword("FOREIGN"):
                self._advance()
                self._expect_keyword("KEY")
                self._expect_punct("(")
                fk_col = self._expect_identifier()
                self._expect_punct(")")
                self._expect_keyword("REFERENCES")
                ref_table = self._expect_identifier()
                self._expect_punct("(")
                ref_col = self._expect_identifier()
                self._expect_punct(")")
                foreign_keys.append(ast.ForeignKeyDef(fk_col, ref_table, ref_col))
            else:
                columns.append(self._column_def())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return ast.CreateTable(name=name, columns=columns, foreign_keys=foreign_keys)

    def _column_def(self) -> ast.ColumnDef:
        name = self._expect_identifier()
        token = self._current
        if token.type is TokenType.KEYWORD and token.value in _TYPE_KEYWORDS:
            self._advance()
            type_name = token.value
        elif token.type is TokenType.IDENTIFIER:
            self._advance()
            type_name = token.value.upper()
        else:
            raise ParseError(
                f"expected column type, found {token.value!r} "
                f"at offset {token.position}"
            )
        # optional (length) such as VARCHAR(255)
        if self._accept_punct("("):
            self._integer_literal()
            self._expect_punct(")")
        primary = False
        if self._accept_keyword("PRIMARY"):
            self._expect_keyword("KEY")
            primary = True
        return ast.ColumnDef(name=name, type_name=type_name, primary_key=primary)

    def _insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier()
        columns: list[str] = []
        if self._accept_punct("("):
            columns.append(self._expect_identifier())
            while self._accept_punct(","):
                columns.append(self._expect_identifier())
            self._expect_punct(")")
        self._expect_keyword("VALUES")
        rows: list[list[ast.Expression]] = []
        while True:
            self._expect_punct("(")
            rows.append(self._expression_list())
            self._expect_punct(")")
            if not self._accept_punct(","):
                break
        return ast.Insert(table=table, columns=columns, rows=rows)

    def _update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_identifier()
        self._expect_keyword("SET")
        assignments: list[tuple[str, ast.Expression]] = []
        while True:
            column = self._expect_identifier()
            if not (
                self._current.type is TokenType.OPERATOR
                and self._current.value == "="
            ):
                raise ParseError("expected = in UPDATE assignment")
            self._advance()
            assignments.append((column, self._expression()))
            if not self._accept_punct(","):
                break
        where = self._expression() if self._accept_keyword("WHERE") else None
        return ast.Update(table=table, assignments=assignments, where=where)

    def _delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier()
        where = self._expression() if self._accept_keyword("WHERE") else None
        return ast.Delete(table=table, where=where)

    def _drop_table(self) -> ast.DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        if_exists = False
        if self._check_keyword("IS"):
            raise ParseError("malformed DROP TABLE")
        if self._current.type is TokenType.IDENTIFIER and (
            self._current.value.upper() == "IF"
        ):
            self._advance()
            if not (
                self._current.type is TokenType.KEYWORD
                and self._current.value == "EXISTS"
            ):
                raise ParseError("expected EXISTS after IF in DROP TABLE")
            self._advance()
            if_exists = True
        name = self._expect_identifier()
        return ast.DropTable(name=name, if_exists=if_exists)


#: Keywords that may double as identifiers in schemas (column named "date").
_SOFT_KEYWORDS = frozenset(
    {"DATE", "TEXT", "INTEGER", "INT", "REAL", "FLOAT", "BOOLEAN", "BOOL", "KEY", "ALL", "SET"}
)

_TYPE_KEYWORDS = frozenset(
    {"INTEGER", "INT", "REAL", "FLOAT", "TEXT", "VARCHAR", "DATE", "BOOLEAN", "BOOL"}
)


def parse_statement(text: str) -> ast.Statement:
    """Parse one SQL statement."""
    return _counted_parse(lambda: Parser(text).parse_statement())


def parse_query(text: str) -> ast.Query:
    """Parse a SELECT (or set-operation) query."""
    return _counted_parse(lambda: Parser(text).parse_query())


def _counted_parse(parse):
    from repro import obs

    if not obs.is_enabled():
        return parse()
    obs.count("sql.parse.calls")
    try:
        return parse()
    except ParseError:
        obs.count("sql.parse.failures")
        raise


def parse_expression(text: str) -> ast.Expression:
    """Parse a standalone SQL expression."""
    return Parser(text).parse_expression()
