"""Typed edit operations on SELECT ASTs.

FISQL's feedback editor translates user feedback into these operations and
applies them to the previous turn's SQL. Each operation is pure: ``apply``
deep-copies the input and returns a new AST. Operations raise
:class:`~repro.errors.EditError` when they cannot anchor to the query (e.g.
replacing a column that is not present) — the session layer surfaces that as
"could not interpret the feedback".
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import EditError
from repro.sql import ast
from repro.sql.analysis import conjuncts, join_conjuncts
from repro.sql.printer import print_expression


class EditOperation:
    """Base class for edit operations."""

    #: Paper feedback type this operation realizes: add / remove / edit.
    feedback_type = "edit"

    def apply(self, query: ast.Select) -> ast.Select:
        """Return a new query with the edit applied."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable description (used in demonstrations/logs)."""
        raise NotImplementedError


def _clone(query: ast.Select) -> ast.Select:
    return copy.deepcopy(query)


def _replace_column_in(expr: ast.Expression, old: str, new: str) -> int:
    """In-place column rename inside an expression tree; returns hit count."""
    hits = 0
    for node in ast.walk_expressions(expr):
        if isinstance(node, ast.ColumnRef) and node.column.lower() == old.lower():
            node.column = new
            hits += 1
    return hits


@dataclass
class ReplaceColumn(EditOperation):
    """Rename ``old`` to ``new`` — in the select list only, or everywhere."""

    old: str
    new: str
    everywhere: bool = False
    new_table: Optional[str] = None

    def apply(self, query: ast.Select) -> ast.Select:
        out = _clone(query)
        hits = 0
        for item in out.items:
            hits += _replace_column_in(item.expression, self.old, self.new)
        if self.everywhere:
            for expr in _clause_expressions(out):
                hits += _replace_column_in(expr, self.old, self.new)
        if hits == 0:
            raise EditError(
                f"column {self.old!r} does not appear in the query"
            )
        if self.new_table is not None:
            for item in out.items:
                for node in ast.walk_expressions(item.expression):
                    if (
                        isinstance(node, ast.ColumnRef)
                        and node.column.lower() == self.new.lower()
                    ):
                        node.table = self.new_table
        return out

    def describe(self) -> str:
        return f"replace column {self.old} with {self.new}"


def _clause_expressions(query: ast.Select) -> list[ast.Expression]:
    exprs: list[ast.Expression] = []
    if query.where is not None:
        exprs.append(query.where)
    exprs.extend(query.group_by)
    if query.having is not None:
        exprs.append(query.having)
    exprs.extend(order.expression for order in query.order_by)
    return exprs


def _all_expressions(query: ast.Select) -> list[ast.Expression]:
    exprs = [item.expression for item in query.items]
    exprs.extend(_clause_expressions(query))
    return exprs


@dataclass
class ReplaceLiteral(EditOperation):
    """Replace literal ``old`` with ``new`` wherever it occurs.

    Matching on strings is case-insensitive and also substring-aware for
    date literals (feedback "we are in 2024" edits '2023-01-01').
    """

    old: object
    new: object

    def apply(self, query: ast.Select) -> ast.Select:
        out = _clone(query)
        hits = 0
        for expr in _all_expressions(out):
            for node in ast.walk_expressions(expr):
                if isinstance(node, ast.Literal) and self._matches(node.value):
                    node.value = self._rewrite(node.value)
                    hits += 1
        if hits == 0:
            raise EditError(f"literal {self.old!r} does not appear in the query")
        return out

    def _matches(self, value: object) -> bool:
        if value is None:
            return self.old is None
        if isinstance(value, str) and isinstance(self.old, str):
            if value.lower() == self.old.lower():
                return True
            return self.old.lower() in value.lower()
        if isinstance(value, str) and not isinstance(self.old, str):
            return str(self.old) in value
        return value == self.old

    def _rewrite(self, value: object) -> object:
        if isinstance(value, str):
            old_text = str(self.old)
            new_text = str(self.new)
            if value.lower() == old_text.lower():
                return new_text if isinstance(self.new, str) else self.new
            # substring replacement, case-insensitive location
            lowered = value.lower()
            index = lowered.find(old_text.lower())
            if index >= 0:
                return value[:index] + new_text + value[index + len(old_text):]
            return value
        return self.new

    def describe(self) -> str:
        return f"replace value {self.old!r} with {self.new!r}"


@dataclass
class ReplaceAggregate(EditOperation):
    """Swap the aggregate function (and optionally its argument/DISTINCT)."""

    new_function: str
    new_argument: Optional[ast.Expression] = None
    old_function: Optional[str] = None
    distinct: Optional[bool] = None

    def apply(self, query: ast.Select) -> ast.Select:
        out = _clone(query)
        hits = 0
        for item in out.items:
            for node in ast.walk_expressions(item.expression):
                if not ast.is_aggregate_call(node):
                    continue
                if (
                    self.old_function is not None
                    and node.name != self.old_function.upper()
                ):
                    continue
                node.name = self.new_function.upper()
                if self.new_argument is not None:
                    node.args = [copy.deepcopy(self.new_argument)]
                if self.distinct is not None:
                    if not node.args or isinstance(node.args[0], ast.Star):
                        raise EditError(
                            "cannot apply DISTINCT to a COUNT(*) without "
                            "a column argument"
                        )
                    node.distinct = self.distinct
                hits += 1
        if hits == 0:
            raise EditError("no matching aggregate call to replace")
        return out

    def describe(self) -> str:
        extra = " DISTINCT" if self.distinct else ""
        return f"use aggregate {self.new_function.upper()}{extra}"


@dataclass
class ReplaceQuery(EditOperation):
    """Swap in an entirely new query (used for structural rebuilds)."""

    new_query: ast.Select

    def apply(self, query: ast.Select) -> ast.Select:
        return copy.deepcopy(self.new_query)

    def describe(self) -> str:
        return "rebuild the query"


@dataclass
class AddSelectItem(EditOperation):
    feedback_type = "add"

    expression: ast.Expression
    alias: Optional[str] = None

    def apply(self, query: ast.Select) -> ast.Select:
        out = _clone(query)
        key = print_expression(self.expression).lower()
        for item in out.items:
            if print_expression(item.expression).lower() == key:
                raise EditError("expression already in the select list")
        out.items.append(
            ast.SelectItem(expression=copy.deepcopy(self.expression), alias=self.alias)
        )
        return out

    def describe(self) -> str:
        return f"also select {print_expression(self.expression)}"


@dataclass
class RemoveSelectItem(EditOperation):
    feedback_type = "remove"

    column: str

    def apply(self, query: ast.Select) -> ast.Select:
        out = _clone(query)
        if len(out.items) <= 1:
            raise EditError("cannot remove the only select item")
        kept = []
        removed = 0
        for item in out.items:
            if self._mentions(item.expression):
                removed += 1
            else:
                kept.append(item)
        if removed == 0:
            raise EditError(f"{self.column!r} is not in the select list")
        if not kept:
            raise EditError("removal would empty the select list")
        out.items = kept
        return out

    def _mentions(self, expr: ast.Expression) -> bool:
        for node in ast.walk_expressions(expr):
            if (
                isinstance(node, ast.ColumnRef)
                and node.column.lower() == self.column.lower()
            ):
                return True
        return False

    def describe(self) -> str:
        return f"do not select {self.column}"


@dataclass
class AddWhereConjunct(EditOperation):
    feedback_type = "add"

    condition: ast.Expression

    def apply(self, query: ast.Select) -> ast.Select:
        out = _clone(query)
        new_condition = copy.deepcopy(self.condition)
        key = print_expression(new_condition).lower()
        for existing in conjuncts(out.where):
            if print_expression(existing).lower() == key:
                raise EditError("condition already present")
        if out.where is None:
            out.where = new_condition
        else:
            out.where = ast.BinaryOp(
                ast.BinaryOperator.AND, out.where, new_condition
            )
        return out

    def describe(self) -> str:
        return f"add condition {print_expression(self.condition)}"


@dataclass
class RemoveWhereConjunct(EditOperation):
    feedback_type = "remove"

    matcher: Callable[[ast.Expression], bool]
    description: str = "remove a condition"

    def apply(self, query: ast.Select) -> ast.Select:
        out = _clone(query)
        parts = conjuncts(out.where)
        kept = [part for part in parts if not self.matcher(part)]
        if len(kept) == len(parts):
            raise EditError("no matching condition to remove")
        out.where = join_conjuncts(kept)
        return out

    def describe(self) -> str:
        return self.description


@dataclass
class ReplaceWhereConjunct(EditOperation):
    """Replace the conjunct(s) selected by ``matcher`` with ``condition``."""

    matcher: Callable[[ast.Expression], bool]
    condition: ast.Expression

    def apply(self, query: ast.Select) -> ast.Select:
        out = _clone(query)
        parts = conjuncts(out.where)
        replaced = False
        new_parts: list[ast.Expression] = []
        for part in parts:
            if not replaced and self.matcher(part):
                new_parts.append(copy.deepcopy(self.condition))
                replaced = True
            else:
                new_parts.append(part)
        if not replaced:
            raise EditError("no matching condition to replace")
        out.where = join_conjuncts(new_parts)
        return out

    def describe(self) -> str:
        return f"condition should be {print_expression(self.condition)}"


@dataclass
class SetOrderBy(EditOperation):
    items: list[ast.OrderItem] = field(default_factory=list)

    @property
    def feedback_type(self) -> str:  # type: ignore[override]
        return "add" if self.items else "remove"

    def apply(self, query: ast.Select) -> ast.Select:
        out = _clone(query)
        out.order_by = copy.deepcopy(self.items)
        return out

    def describe(self) -> str:
        if not self.items:
            return "remove the ordering"
        rendered = ", ".join(
            f"{print_expression(i.expression)} {i.order.value.lower()}"
            for i in self.items
        )
        return f"order by {rendered}"


@dataclass
class SetLimit(EditOperation):
    limit: Optional[int] = None

    @property
    def feedback_type(self) -> str:  # type: ignore[override]
        return "remove" if self.limit is None else "edit"

    def apply(self, query: ast.Select) -> ast.Select:
        out = _clone(query)
        out.limit = self.limit
        return out

    def describe(self) -> str:
        if self.limit is None:
            return "remove the limit"
        return f"limit to {self.limit} rows"


@dataclass
class SetDistinct(EditOperation):
    distinct: bool = True

    @property
    def feedback_type(self) -> str:  # type: ignore[override]
        return "add" if self.distinct else "remove"

    def apply(self, query: ast.Select) -> ast.Select:
        out = _clone(query)
        if out.distinct == self.distinct:
            raise EditError("DISTINCT already in the requested state")
        out.distinct = self.distinct
        return out

    def describe(self) -> str:
        return "select distinct values" if self.distinct else "keep duplicates"


@dataclass
class ReplaceTable(EditOperation):
    """Point the query at a different base table (single-table FROM)."""

    old: str
    new: str

    def apply(self, query: ast.Select) -> ast.Select:
        out = _clone(query)
        hits = 0
        sources: list[ast.TableExpression] = (
            [out.source] if out.source is not None else []
        )
        while sources:
            source = sources.pop()
            if isinstance(source, ast.TableRef):
                if source.name.lower() == self.old.lower():
                    source.name = self.new
                    hits += 1
            elif isinstance(source, ast.Join):
                sources.extend((source.left, source.right))
        if hits == 0:
            raise EditError(f"table {self.old!r} not in the FROM clause")
        return out

    def describe(self) -> str:
        return f"use table {self.new} instead of {self.old}"


@dataclass
class AddJoin(EditOperation):
    feedback_type = "add"

    table: str
    condition: ast.Expression
    alias: Optional[str] = None

    def apply(self, query: ast.Select) -> ast.Select:
        out = _clone(query)
        if out.source is None:
            raise EditError("query has no FROM clause to join onto")
        out.source = ast.Join(
            kind=ast.JoinKind.INNER,
            left=out.source,
            right=ast.TableRef(name=self.table, alias=self.alias),
            condition=copy.deepcopy(self.condition),
        )
        return out

    def describe(self) -> str:
        return f"join table {self.table} on {print_expression(self.condition)}"


@dataclass
class CompositeEdit(EditOperation):
    """Apply several edits in sequence (used for multi-part feedback)."""

    operations: list[EditOperation]

    @property
    def feedback_type(self) -> str:  # type: ignore[override]
        if not self.operations:
            return "edit"
        return self.operations[0].feedback_type

    def apply(self, query: ast.Select) -> ast.Select:
        out = query
        for operation in self.operations:
            out = operation.apply(out)
        return out

    def describe(self) -> str:
        return "; ".join(op.describe() for op in self.operations)
