"""Structural analysis of queries: clause inventories, usage, and diffs.

The diff machinery compares a *gold* query to a *predicted* query and emits
typed :class:`QueryDelta` records. The FISQL user simulator verbalizes these
deltas as natural-language feedback; the evaluation code uses them to count
how many distinct errors a prediction contains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sql import ast
from repro.sql.printer import print_expression, print_select


def conjuncts(expr: Optional[ast.Expression]) -> list[ast.Expression]:
    """Flatten a WHERE/HAVING tree into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op is ast.BinaryOperator.AND:
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def join_conjuncts(parts: list[ast.Expression]) -> Optional[ast.Expression]:
    """Rebuild an AND tree from conjuncts (None for an empty list)."""
    if not parts:
        return None
    result = parts[0]
    for part in parts[1:]:
        result = ast.BinaryOp(ast.BinaryOperator.AND, result, part)
    return result


def tables_used(query: ast.Query) -> set[str]:
    """Lower-cased base-table names referenced anywhere in the query."""
    tables: set[str] = set()
    for select in ast.walk_queries(query):
        sources = [select.source] if select.source is not None else []
        while sources:
            source = sources.pop()
            if isinstance(source, ast.TableRef):
                tables.add(source.name.lower())
            elif isinstance(source, ast.Join):
                sources.extend((source.left, source.right))
            elif isinstance(source, ast.SubquerySource):
                pass  # nested query covered by walk_queries
    return tables


def columns_used(query: ast.Query) -> set[str]:
    """Lower-cased column names referenced anywhere in the query."""
    columns: set[str] = set()
    for select in ast.walk_queries(query):
        for expr in _select_expressions(select):
            for node in ast.walk_expressions(expr):
                if isinstance(node, ast.ColumnRef):
                    columns.add(node.column.lower())
    return columns


def aggregates_used(select: ast.Select) -> list[ast.FunctionCall]:
    """Aggregate calls in the select list / HAVING / ORDER BY."""
    found = []
    for expr in _select_expressions(select):
        for node in ast.walk_expressions(expr):
            if ast.is_aggregate_call(node):
                found.append(node)
    return found


def _select_expressions(select: ast.Select) -> list[ast.Expression]:
    exprs: list[ast.Expression] = [item.expression for item in select.items]
    if select.where is not None:
        exprs.append(select.where)
    exprs.extend(select.group_by)
    if select.having is not None:
        exprs.append(select.having)
    exprs.extend(order.expression for order in select.order_by)
    return exprs


def literals_used(query: ast.Query) -> list[ast.Literal]:
    """Every literal in the query, in walk order."""
    found = []
    for select in ast.walk_queries(query):
        for expr in _select_expressions(select):
            for node in ast.walk_expressions(expr):
                if isinstance(node, ast.Literal):
                    found.append(node)
    return found


# ---------------------------------------------------------------------------
# Clause spans (for highlight grounding)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClauseSpan:
    """A clause's character range within the canonical printed SQL."""

    clause: str
    start: int
    end: int

    def slice(self, text: str) -> str:
        return text[self.start : self.end]


def clause_spans(select: ast.Select) -> dict[str, ClauseSpan]:
    """Character spans of each clause in ``print_select(select)``.

    Keys: ``select``, ``from``, ``where``, ``group``, ``having``, ``order``,
    ``limit`` (present only when the clause exists).
    """
    text = print_select(select)
    spans: dict[str, ClauseSpan] = {}
    markers = [
        ("select", "SELECT "),
        ("from", " FROM "),
        ("where", " WHERE "),
        ("group", " GROUP BY "),
        ("having", " HAVING "),
        ("order", " ORDER BY "),
        ("limit", " LIMIT "),
    ]
    positions = []
    cursor = 0
    for clause, marker in markers:
        index = text.find(marker, cursor)
        if index == -1:
            continue
        start = index if clause != "select" else 0
        positions.append((clause, start))
        cursor = index + len(marker)
    for i, (clause, start) in enumerate(positions):
        end = positions[i + 1][1] if i + 1 < len(positions) else len(text)
        spans[clause] = ClauseSpan(clause=clause, start=start, end=end)
    return spans


# ---------------------------------------------------------------------------
# Query diffing
# ---------------------------------------------------------------------------


@dataclass
class QueryDelta:
    """One structural difference between gold and predicted queries.

    Attributes:
        kind: Which part of the query differs (``select``, ``where``,
            ``group``, ``order``, ``limit``, ``distinct``, ``table``,
            ``structure``).
        action: What the *prediction* needs (``add``, ``remove``, ``edit``)
            to match gold.
        gold: The gold-side node (None for removals).
        pred: The predicted-side node (None for additions).
        detail: Short human-readable description.
    """

    kind: str
    action: str
    gold: Optional[object] = None
    pred: Optional[object] = None
    detail: str = ""


def diff_queries(gold: ast.Query, pred: ast.Query) -> list[QueryDelta]:
    """Structural differences between two queries.

    Best-effort: for SELECT-vs-SELECT, clause-by-clause. Mismatched shapes
    produce a single ``structure`` delta.
    """
    if isinstance(gold, ast.SetOperation) or isinstance(pred, ast.SetOperation):
        if (
            isinstance(gold, ast.SetOperation)
            and isinstance(pred, ast.SetOperation)
            and gold.op is pred.op
        ):
            return diff_queries(gold.left, pred.left) + diff_queries(
                gold.right, pred.right
            )
        return [
            QueryDelta(
                kind="structure",
                action="edit",
                gold=gold,
                pred=pred,
                detail="query shape differs (set operation mismatch)",
            )
        ]
    return _diff_selects(gold, pred)


def _diff_selects(gold: ast.Select, pred: ast.Select) -> list[QueryDelta]:
    deltas: list[QueryDelta] = []
    deltas.extend(_diff_select_items(gold, pred))
    deltas.extend(_diff_tables(gold, pred))
    deltas.extend(_diff_where(gold, pred))
    deltas.extend(_diff_group(gold, pred))
    deltas.extend(_diff_order(gold, pred))
    if gold.limit != pred.limit:
        if gold.limit is None:
            deltas.append(
                QueryDelta(
                    kind="limit",
                    action="remove",
                    pred=pred.limit,
                    detail=f"remove LIMIT {pred.limit}",
                )
            )
        elif pred.limit is None:
            deltas.append(
                QueryDelta(
                    kind="limit",
                    action="add",
                    gold=gold.limit,
                    detail=f"add LIMIT {gold.limit}",
                )
            )
        else:
            deltas.append(
                QueryDelta(
                    kind="limit",
                    action="edit",
                    gold=gold.limit,
                    pred=pred.limit,
                    detail=f"change LIMIT {pred.limit} to {gold.limit}",
                )
            )
    if gold.distinct != pred.distinct:
        action = "add" if gold.distinct else "remove"
        deltas.append(
            QueryDelta(
                kind="distinct",
                action=action,
                gold=gold.distinct,
                pred=pred.distinct,
                detail=f"{action} DISTINCT",
            )
        )
    return deltas


def _expr_key(expr: ast.Expression) -> str:
    # Table qualifiers are presentation detail for diffing purposes:
    # ``T2.destinationname`` and ``destinationname`` denote the same output.
    if isinstance(expr, ast.ColumnRef):
        return expr.column.lower()
    return print_expression(expr).lower()


def _diff_select_items(gold: ast.Select, pred: ast.Select) -> list[QueryDelta]:
    deltas: list[QueryDelta] = []
    gold_items = list(gold.items)
    pred_items = list(pred.items)
    gold_keys = [_expr_key(item.expression) for item in gold_items]
    pred_keys = [_expr_key(item.expression) for item in pred_items]

    unmatched_gold = [
        item for item, key in zip(gold_items, gold_keys) if key not in pred_keys
    ]
    unmatched_pred = [
        item for item, key in zip(pred_items, pred_keys) if key not in gold_keys
    ]

    # Pair up plausible edits: same aggregate different argument, same
    # column family, or positional leftovers.
    while unmatched_gold and unmatched_pred:
        gold_item = unmatched_gold.pop(0)
        pred_item = _pop_best_match(gold_item, unmatched_pred)
        deltas.append(
            QueryDelta(
                kind="select",
                action="edit",
                gold=gold_item,
                pred=pred_item,
                detail=(
                    f"select {print_expression(gold_item.expression)} "
                    f"instead of {print_expression(pred_item.expression)}"
                ),
            )
        )
    for item in unmatched_gold:
        deltas.append(
            QueryDelta(
                kind="select",
                action="add",
                gold=item,
                detail=f"also select {print_expression(item.expression)}",
            )
        )
    for item in unmatched_pred:
        deltas.append(
            QueryDelta(
                kind="select",
                action="remove",
                pred=item,
                detail=f"do not select {print_expression(item.expression)}",
            )
        )
    return deltas


def _pop_best_match(
    gold_item: ast.SelectItem, candidates: list[ast.SelectItem]
) -> ast.SelectItem:
    gold_expr = gold_item.expression
    if isinstance(gold_expr, ast.FunctionCall):
        for index, cand in enumerate(candidates):
            if isinstance(cand.expression, ast.FunctionCall):
                return candidates.pop(index)
    if isinstance(gold_expr, ast.ColumnRef):
        for index, cand in enumerate(candidates):
            if isinstance(cand.expression, ast.ColumnRef):
                return candidates.pop(index)
    return candidates.pop(0)


def _diff_tables(gold: ast.Select, pred: ast.Select) -> list[QueryDelta]:
    gold_tables = tables_used(gold)
    pred_tables = tables_used(pred)
    deltas = []
    missing = sorted(gold_tables - pred_tables)
    extra = sorted(pred_tables - gold_tables)
    while missing and extra:
        gold_t = missing.pop(0)
        pred_t = extra.pop(0)
        deltas.append(
            QueryDelta(
                kind="table",
                action="edit",
                gold=gold_t,
                pred=pred_t,
                detail=f"use table {gold_t} instead of {pred_t}",
            )
        )
    for name in missing:
        deltas.append(
            QueryDelta(
                kind="table",
                action="add",
                gold=name,
                detail=f"include table {name}",
            )
        )
    for name in extra:
        deltas.append(
            QueryDelta(
                kind="table",
                action="remove",
                pred=name,
                detail=f"drop table {name}",
            )
        )
    return deltas


def _condition_signature(expr: ast.Expression) -> Optional[tuple[str, str]]:
    """(column, op-family) signature for pairing WHERE conjuncts."""
    if isinstance(expr, ast.BinaryOp) and expr.op.is_comparison:
        if isinstance(expr.left, ast.ColumnRef):
            return (expr.left.column.lower(), "cmp")
    if isinstance(expr, ast.Like) and isinstance(expr.operand, ast.ColumnRef):
        return (expr.operand.column.lower(), "like")
    if isinstance(expr, ast.Between) and isinstance(expr.operand, ast.ColumnRef):
        return (expr.operand.column.lower(), "between")
    if isinstance(expr, (ast.InList, ast.InSubquery)) and isinstance(
        expr.operand, ast.ColumnRef
    ):
        return (expr.operand.column.lower(), "in")
    if isinstance(expr, ast.IsNull) and isinstance(expr.operand, ast.ColumnRef):
        return (expr.operand.column.lower(), "null")
    return None


def _is_join_condition(expr: ast.Expression) -> bool:
    return (
        isinstance(expr, ast.BinaryOp)
        and expr.op is ast.BinaryOperator.EQ
        and isinstance(expr.left, ast.ColumnRef)
        and isinstance(expr.right, ast.ColumnRef)
    )


def _diff_where(gold: ast.Select, pred: ast.Select) -> list[QueryDelta]:
    gold_conj = [c for c in conjuncts(gold.where) if not _is_join_condition(c)]
    pred_conj = [c for c in conjuncts(pred.where) if not _is_join_condition(c)]
    gold_keys = {_expr_key(c): c for c in gold_conj}
    pred_keys = {_expr_key(c): c for c in pred_conj}

    unmatched_gold = [c for k, c in gold_keys.items() if k not in pred_keys]
    unmatched_pred = [c for k, c in pred_keys.items() if k not in gold_keys]
    deltas: list[QueryDelta] = []

    # Pair by signature first (same column & operator family → an edit).
    still_gold: list[ast.Expression] = []
    for gold_c in unmatched_gold:
        signature = _condition_signature(gold_c)
        paired = False
        if signature is not None:
            for index, pred_c in enumerate(unmatched_pred):
                if _condition_signature(pred_c) == signature:
                    deltas.append(
                        QueryDelta(
                            kind="where",
                            action="edit",
                            gold=gold_c,
                            pred=unmatched_pred.pop(index),
                            detail=(
                                f"condition should be "
                                f"{print_expression(gold_c)}"
                            ),
                        )
                    )
                    paired = True
                    break
        if not paired:
            still_gold.append(gold_c)

    # Pair remaining by same-column different-family, then leftovers.
    for gold_c in still_gold:
        signature = _condition_signature(gold_c)
        column = signature[0] if signature else None
        paired = False
        if column is not None:
            for index, pred_c in enumerate(unmatched_pred):
                pred_sig = _condition_signature(pred_c)
                if pred_sig is not None and pred_sig[0] == column:
                    deltas.append(
                        QueryDelta(
                            kind="where",
                            action="edit",
                            gold=gold_c,
                            pred=unmatched_pred.pop(index),
                            detail=(
                                f"condition should be "
                                f"{print_expression(gold_c)}"
                            ),
                        )
                    )
                    paired = True
                    break
        if not paired:
            deltas.append(
                QueryDelta(
                    kind="where",
                    action="add",
                    gold=gold_c,
                    detail=f"add condition {print_expression(gold_c)}",
                )
            )
    for pred_c in unmatched_pred:
        deltas.append(
            QueryDelta(
                kind="where",
                action="remove",
                pred=pred_c,
                detail=f"remove condition {print_expression(pred_c)}",
            )
        )
    return deltas


def _diff_group(gold: ast.Select, pred: ast.Select) -> list[QueryDelta]:
    gold_keys = {_expr_key(e): e for e in gold.group_by}
    pred_keys = {_expr_key(e): e for e in pred.group_by}
    deltas = []
    for key, expr in gold_keys.items():
        if key not in pred_keys:
            deltas.append(
                QueryDelta(
                    kind="group",
                    action="add",
                    gold=expr,
                    detail=f"group by {print_expression(expr)}",
                )
            )
    for key, expr in pred_keys.items():
        if key not in gold_keys:
            deltas.append(
                QueryDelta(
                    kind="group",
                    action="remove",
                    pred=expr,
                    detail=f"do not group by {print_expression(expr)}",
                )
            )
    return deltas


def _diff_order(gold: ast.Select, pred: ast.Select) -> list[QueryDelta]:
    def order_key(item: ast.OrderItem) -> str:
        return f"{_expr_key(item.expression)} {item.order.value}"

    gold_keys = [order_key(i) for i in gold.order_by]
    pred_keys = [order_key(i) for i in pred.order_by]
    if gold_keys == pred_keys:
        return []
    if not gold.order_by:
        return [
            QueryDelta(
                kind="order",
                action="remove",
                pred=pred.order_by,
                detail="remove the ordering",
            )
        ]
    if not pred.order_by:
        detail = "order by " + ", ".join(
            f"{print_expression(i.expression)} {i.order.value.lower()}"
            for i in gold.order_by
        )
        return [
            QueryDelta(
                kind="order", action="add", gold=gold.order_by, detail=detail
            )
        ]
    detail = "order by " + ", ".join(
        f"{print_expression(i.expression)} {i.order.value.lower()}"
        for i in gold.order_by
    )
    return [
        QueryDelta(
            kind="order",
            action="edit",
            gold=gold.order_by,
            pred=pred.order_by,
            detail=detail,
        )
    ]


def count_errors(gold: ast.Query, pred: ast.Query) -> int:
    """Number of distinct structural differences (0 = structurally equal)."""
    return len(diff_queries(gold, pred))
