"""Expression evaluation over bound rows.

The evaluator works against a :class:`RowFrame` — an ordered set of bound
columns plus one row of values — and supports correlated subqueries through
an outer-frame chain.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.errors import ExecutionError
from repro.sql import ast
from repro.sql.functions import AGGREGATE_FACTORIES, SCALAR_FUNCTIONS
from repro.sql.types import SqlValue, sql_compare

if TYPE_CHECKING:  # pragma: no cover
    from repro.sql.executor import Executor


@dataclass(frozen=True)
class BoundColumn:
    """A column made available by the FROM clause.

    Attributes:
        binding: The visible table name/alias (lower-cased).
        name: Column name (lower-cased).
    """

    binding: str
    name: str


class RowFrame:
    """One row of values aligned to a list of bound columns.

    Frames chain to an optional ``outer`` frame for correlated subqueries:
    names that do not resolve locally are looked up outward.
    """

    __slots__ = ("columns", "values", "outer")

    def __init__(
        self,
        columns: Sequence[BoundColumn],
        values: Sequence[SqlValue],
        outer: Optional["RowFrame"] = None,
    ) -> None:
        self.columns = columns
        self.values = values
        self.outer = outer

    def resolve(self, table: Optional[str], column: str) -> SqlValue:
        """Resolve a column reference to its value (raising on ambiguity)."""
        index = self.find(table, column)
        if index is not None:
            return self.values[index]
        if self.outer is not None:
            return self.outer.resolve(table, column)
        qualified = f"{table}.{column}" if table else column
        raise ExecutionError(f"unknown column {qualified!r}")

    def find(self, table: Optional[str], column: str) -> Optional[int]:
        """Locate the index of a column in this frame only (no outer chain)."""
        table_key = table.lower() if table else None
        column_key = column.lower()
        matches = [
            index
            for index, bound in enumerate(self.columns)
            if bound.name == column_key
            and (table_key is None or bound.binding == table_key)
        ]
        if not matches:
            return None
        if len(matches) > 1:
            qualified = f"{table}.{column}" if table else column
            raise ExecutionError(f"ambiguous column reference {qualified!r}")
        return matches[0]


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a SQL LIKE pattern (``%``/``_`` wildcards) to a regex."""
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE | re.DOTALL)


class Evaluator:
    """Evaluates expressions; delegates subqueries back to the executor."""

    def __init__(self, executor: "Executor") -> None:
        self._executor = executor
        self._like_cache: dict[str, re.Pattern[str]] = {}

    # -- row-level evaluation ------------------------------------------------

    def evaluate(self, expr: ast.Expression, frame: RowFrame) -> SqlValue:
        """Evaluate a scalar (non-aggregate) expression for one row."""
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Computed):
            return expr.value
        if isinstance(expr, ast.ColumnRef):
            return frame.resolve(expr.table, expr.column)
        if isinstance(expr, ast.Star):
            raise ExecutionError("'*' is only valid inside COUNT(*) or SELECT")
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr, frame)
        if isinstance(expr, ast.UnaryOp):
            return self._unary(expr, frame)
        if isinstance(expr, ast.FunctionCall):
            if expr.name in AGGREGATE_FACTORIES:
                raise ExecutionError(
                    f"aggregate {expr.name} used outside aggregation context"
                )
            return self._scalar_call(expr, frame)
        if isinstance(expr, ast.Like):
            return self._like(expr, frame)
        if isinstance(expr, ast.Between):
            return self._between(expr, frame)
        if isinstance(expr, ast.InList):
            return self._in_list(expr, frame)
        if isinstance(expr, ast.InSubquery):
            return self._in_subquery(expr, frame)
        if isinstance(expr, ast.Exists):
            rows = self._executor.execute_select(expr.subquery, outer=frame).rows
            found = bool(rows)
            return (not found) if expr.negated else found
        if isinstance(expr, ast.ScalarSubquery):
            return self._scalar_subquery(expr, frame)
        if isinstance(expr, ast.IsNull):
            value = self.evaluate(expr.operand, frame)
            is_null = value is None
            return (not is_null) if expr.negated else is_null
        if isinstance(expr, ast.CaseWhen):
            for cond, result in expr.branches:
                if self.truthy(cond, frame):
                    return self.evaluate(result, frame)
            if expr.default is not None:
                return self.evaluate(expr.default, frame)
            return None
        raise ExecutionError(f"cannot evaluate node {type(expr).__name__}")

    def truthy(self, expr: ast.Expression, frame: RowFrame) -> bool:
        """Evaluate a predicate; SQL UNKNOWN (NULL) filters as false."""
        value = self.evaluate(expr, frame)
        if value is None:
            return False
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return value != 0
        raise ExecutionError(f"predicate evaluated to non-boolean {value!r}")

    # -- helpers ---------------------------------------------------------------

    def _binary(self, expr: ast.BinaryOp, frame: RowFrame) -> SqlValue:
        op = expr.op
        if op is ast.BinaryOperator.AND:
            left = self._bool_or_none(expr.left, frame)
            if left is False:
                return False
            right = self._bool_or_none(expr.right, frame)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if op is ast.BinaryOperator.OR:
            left = self._bool_or_none(expr.left, frame)
            if left is True:
                return True
            right = self._bool_or_none(expr.right, frame)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False

        left = self.evaluate(expr.left, frame)
        right = self.evaluate(expr.right, frame)
        if op.is_comparison:
            cmp = sql_compare(left, right)
            if cmp is None:
                return None
            if op is ast.BinaryOperator.EQ:
                return cmp == 0
            if op is ast.BinaryOperator.NE:
                return cmp != 0
            if op is ast.BinaryOperator.LT:
                return cmp < 0
            if op is ast.BinaryOperator.LE:
                return cmp <= 0
            if op is ast.BinaryOperator.GT:
                return cmp > 0
            return cmp >= 0

        if left is None or right is None:
            return None
        if op is ast.BinaryOperator.CONCAT:
            return f"{left}{right}"
        left_n = _to_number(left)
        right_n = _to_number(right)
        if op is ast.BinaryOperator.ADD:
            return _narrow(left_n + right_n, left, right)
        if op is ast.BinaryOperator.SUB:
            return _narrow(left_n - right_n, left, right)
        if op is ast.BinaryOperator.MUL:
            return _narrow(left_n * right_n, left, right)
        if op is ast.BinaryOperator.DIV:
            if right_n == 0:
                return None
            return left_n / right_n
        if op is ast.BinaryOperator.MOD:
            if right_n == 0:
                return None
            return _narrow(left_n % right_n, left, right)
        raise ExecutionError(f"unsupported operator {op}")  # pragma: no cover

    def _bool_or_none(self, expr: ast.Expression, frame: RowFrame) -> Optional[bool]:
        value = self.evaluate(expr, frame)
        if value is None:
            return None
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return value != 0
        raise ExecutionError(f"logical operand is non-boolean: {value!r}")

    def _unary(self, expr: ast.UnaryOp, frame: RowFrame) -> SqlValue:
        if expr.op is ast.UnaryOperator.NOT:
            value = self._bool_or_none(expr.operand, frame)
            if value is None:
                return None
            return not value
        value = self.evaluate(expr.operand, frame)
        if value is None:
            return None
        number = _to_number(value)
        if expr.op is ast.UnaryOperator.NEG:
            result = -number
        else:
            result = number
        if isinstance(value, int) and not isinstance(value, bool):
            return int(result)
        return result

    def _scalar_call(self, expr: ast.FunctionCall, frame: RowFrame) -> SqlValue:
        fn = SCALAR_FUNCTIONS.get(expr.name)
        if fn is None:
            raise ExecutionError(f"unknown function {expr.name}")
        args = [self.evaluate(arg, frame) for arg in expr.args]
        return fn(args)

    def _like(self, expr: ast.Like, frame: RowFrame) -> SqlValue:
        operand = self.evaluate(expr.operand, frame)
        pattern = self.evaluate(expr.pattern, frame)
        if operand is None or pattern is None:
            return None
        if not isinstance(pattern, str):
            raise ExecutionError("LIKE pattern must be a string")
        regex = self._like_cache.get(pattern)
        if regex is None:
            regex = like_to_regex(pattern)
            self._like_cache[pattern] = regex
        matched = bool(regex.match(str(operand)))
        return (not matched) if expr.negated else matched

    def _between(self, expr: ast.Between, frame: RowFrame) -> SqlValue:
        operand = self.evaluate(expr.operand, frame)
        low = self.evaluate(expr.low, frame)
        high = self.evaluate(expr.high, frame)
        low_cmp = sql_compare(operand, low)
        high_cmp = sql_compare(operand, high)
        if low_cmp is None or high_cmp is None:
            return None
        inside = low_cmp >= 0 and high_cmp <= 0
        return (not inside) if expr.negated else inside

    def _in_list(self, expr: ast.InList, frame: RowFrame) -> SqlValue:
        operand = self.evaluate(expr.operand, frame)
        if operand is None:
            return None
        saw_null = False
        for item in expr.items:
            value = self.evaluate(item, frame)
            cmp = sql_compare(operand, value)
            if cmp is None:
                saw_null = True
            elif cmp == 0:
                return not expr.negated
        if saw_null:
            return None
        return expr.negated

    def _in_subquery(self, expr: ast.InSubquery, frame: RowFrame) -> SqlValue:
        operand = self.evaluate(expr.operand, frame)
        if operand is None:
            return None
        result = self._executor.execute_select(expr.subquery, outer=frame)
        if result.rows and len(result.rows[0]) != 1:
            raise ExecutionError("IN subquery must return a single column")
        saw_null = False
        for row in result.rows:
            cmp = sql_compare(operand, row[0])
            if cmp is None:
                saw_null = True
            elif cmp == 0:
                return not expr.negated
        if saw_null:
            return None
        return expr.negated

    def _scalar_subquery(self, expr: ast.ScalarSubquery, frame: RowFrame) -> SqlValue:
        result = self._executor.execute_select(expr.subquery, outer=frame)
        if not result.rows:
            return None
        if len(result.rows[0]) != 1:
            raise ExecutionError("scalar subquery must return a single column")
        if len(result.rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        return result.rows[0][0]


def _to_number(value: SqlValue) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            pass
    raise ExecutionError(f"expected a number, got {value!r}")


def _narrow(result: float, left: SqlValue, right: SqlValue) -> SqlValue:
    """Return int when both operands were ints and the result is integral."""
    both_int = (
        isinstance(left, int)
        and not isinstance(left, bool)
        and isinstance(right, int)
        and not isinstance(right, bool)
    )
    if both_int and float(result).is_integer():
        return int(result)
    return result


AggregateEvaluator = Callable[[ast.Expression, Sequence[RowFrame]], SqlValue]
