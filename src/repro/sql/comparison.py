"""Execution-accuracy result comparison.

The paper's metric is *correct SQL execution result*: a predicted query is
correct when its result set matches the gold query's result set. Following
the standard SPIDER execution-accuracy convention:

* comparison is order-insensitive (multiset equality) unless the gold query
  has a top-level ORDER BY, in which case row order must match;
* column *names* are ignored (only values matter);
* floats compare with a small relative tolerance;
* NULL equals NULL.
"""

from __future__ import annotations

from typing import Optional

from repro.sql import ast
from repro.sql.executor import QueryResult
from repro.sql.types import SqlValue, values_equal


def normalize_row(row: tuple[SqlValue, ...]) -> tuple:
    """Canonical form of a row for multiset comparison."""
    out = []
    for value in row:
        if isinstance(value, bool):
            out.append(int(value))
        elif isinstance(value, float) and value.is_integer():
            out.append(int(value))
        else:
            out.append(value)
    return tuple(out)


def rows_equal(
    left: tuple[SqlValue, ...], right: tuple[SqlValue, ...], float_tol: float = 1e-6
) -> bool:
    """Cell-wise row equality with NULL==NULL and float tolerance."""
    if len(left) != len(right):
        return False
    return all(
        values_equal(lv, rv, float_tol) for lv, rv in zip(left, right)
    )


def results_match(
    gold: QueryResult,
    predicted: QueryResult,
    ordered: bool = False,
    float_tol: float = 1e-6,
) -> bool:
    """Compare two result sets under execution-accuracy semantics."""
    if len(gold.rows) != len(predicted.rows):
        return False
    if gold.rows and predicted.rows and len(gold.rows[0]) != len(predicted.rows[0]):
        return False
    if ordered:
        return all(
            rows_equal(g, p, float_tol)
            for g, p in zip(gold.rows, predicted.rows)
        )
    # Multiset comparison via sorted canonical forms. Exact float values are
    # normalized first; the tolerance path falls back to greedy matching
    # only when the sorted comparison fails.
    gold_sorted = sorted(map(normalize_row, gold.rows), key=_row_sort_key)
    pred_sorted = sorted(map(normalize_row, predicted.rows), key=_row_sort_key)
    if gold_sorted == pred_sorted:
        return True
    return _greedy_match(gold.rows, predicted.rows, float_tol)


def _row_sort_key(row: tuple) -> tuple:
    return tuple(
        (value is None, isinstance(value, str), str(value)) for value in row
    )


def _greedy_match(
    gold_rows: list[tuple[SqlValue, ...]],
    pred_rows: list[tuple[SqlValue, ...]],
    float_tol: float,
) -> bool:
    remaining = list(pred_rows)
    for gold_row in gold_rows:
        for index, pred_row in enumerate(remaining):
            if rows_equal(gold_row, pred_row, float_tol):
                remaining.pop(index)
                break
        else:
            return False
    return not remaining


def query_is_ordered(query: ast.Query) -> bool:
    """True when the top level of a query imposes row order."""
    if isinstance(query, ast.Select):
        return bool(query.order_by)
    if isinstance(query, ast.SetOperation):
        return bool(query.order_by)
    return False


def execution_match(
    database,
    gold_sql: str,
    predicted_sql: str,
    float_tol: float = 1e-6,
) -> bool:
    """Execute both queries and compare results.

    A predicted query that fails to parse or execute counts as incorrect
    (returns False); a *gold* failure raises, because that indicates a bug in
    the dataset rather than in the prediction.
    """
    from repro.errors import SqlError
    from repro.sql.parser import parse_query

    gold_ast = parse_query(gold_sql)
    gold_result = database.execute_ast(gold_ast)
    try:
        predicted_ast = parse_query(predicted_sql)
        predicted_result = database.execute_ast(predicted_ast)
    except SqlError:
        return False
    ordered = query_is_ordered(gold_ast)
    return results_match(gold_result, predicted_result, ordered, float_tol)


def summarize_result(result: QueryResult, max_rows: int = 5) -> str:
    """Human-readable sketch of a result set (used in Assistant replies)."""
    if not result.rows:
        return "(no rows)"
    header = " | ".join(result.columns)
    lines = [header]
    for row in result.rows[:max_rows]:
        lines.append(" | ".join("NULL" if v is None else str(v) for v in row))
    if len(result.rows) > max_rows:
        lines.append(f"... ({len(result.rows) - max_rows} more rows)")
    return "\n".join(lines)


def result_fingerprint(result: Optional[QueryResult]) -> tuple:
    """A hashable fingerprint of a result set (order-insensitive)."""
    if result is None:
        return ("<error>",)
    rows = sorted(map(normalize_row, result.rows), key=_row_sort_key)
    return tuple(rows)
