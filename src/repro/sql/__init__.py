"""From-scratch in-memory SQL engine.

Public surface::

    from repro.sql import Database, parse_query, print_query, execution_match

    db = Database.from_ddl("demo", "CREATE TABLE t (id INTEGER, name TEXT)")
    db.execute("INSERT INTO t VALUES (1, 'a')")
    print(db.query("SELECT name FROM t").rows)
"""

from repro.sql.comparison import (
    execution_match,
    query_is_ordered,
    results_match,
    summarize_result,
)
from repro.sql.engine import Database, DmlResult
from repro.sql.io import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)
from repro.sql.executor import QueryResult
from repro.sql.parser import parse_expression, parse_query, parse_statement
from repro.sql.printer import print_expression, print_query, print_statement
from repro.sql.schema import Column, DatabaseSchema, ForeignKey, Table
from repro.sql.types import DataType, SqlValue

__all__ = [
    "Column",
    "DataType",
    "Database",
    "DatabaseSchema",
    "DmlResult",
    "ForeignKey",
    "QueryResult",
    "SqlValue",
    "Table",
    "database_from_dict",
    "database_to_dict",
    "execution_match",
    "load_database",
    "save_database",
    "parse_expression",
    "parse_query",
    "parse_statement",
    "print_expression",
    "print_query",
    "print_statement",
    "query_is_ordered",
    "results_match",
    "summarize_result",
]
