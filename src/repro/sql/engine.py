"""Database facade: schema + storage + a one-call ``execute``.

Typical use::

    db = Database.from_ddl("my_db", "CREATE TABLE t (id INTEGER, name TEXT)")
    db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    result = db.execute("SELECT COUNT(*) FROM t")
    assert result.scalar() == 2
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from repro import obs
from repro.errors import CatalogError, ExecutionError
from repro.sql import ast
from repro.sql.executor import Executor, QueryResult
from repro.sql.expressions import BoundColumn, Evaluator, RowFrame
from repro.sql.parser import parse_statement
from repro.sql.schema import Column, DatabaseSchema, ForeignKey, Table
from repro.sql.storage import TableData
from repro.sql.types import DataType, SqlValue


@dataclass
class DmlResult:
    """Result of a DDL/DML statement: number of rows affected."""

    rows_affected: int


ExecuteResult = Union[QueryResult, DmlResult]


class Database:
    """An in-memory relational database."""

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self._data: dict[str, TableData] = {
            table.key: TableData(table) for table in schema.tables
        }
        self._executor = Executor(self)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_ddl(cls, name: str, ddl: str) -> "Database":
        """Build a database by running a script of CREATE TABLE statements."""
        db = cls(DatabaseSchema(name, []))
        for statement_text in _split_statements(ddl):
            db.execute(statement_text)
        return db

    # -- storage access -------------------------------------------------------

    def data(self, table_name: str) -> TableData:
        """Row storage for a table (raises CatalogError if unknown)."""
        key = table_name.lower()
        if key not in self._data:
            raise CatalogError(
                f"database {self.schema.name!r} has no table {table_name!r}"
            )
        return self._data[key]

    def load_rows(
        self, table_name: str, rows: Iterable[Sequence[SqlValue]]
    ) -> int:
        """Bulk-insert rows (values in declaration order). Returns count."""
        data = self.data(table_name)
        count = 0
        for row in rows:
            data.insert(row)
            count += 1
        return count

    def row_count(self, table_name: str) -> int:
        return len(self.data(table_name))

    # -- execution --------------------------------------------------------------

    def execute(self, sql: str) -> ExecuteResult:
        """Parse and execute one SQL statement."""
        statement = parse_statement(sql)
        return self.execute_ast(statement)

    def query(self, sql: str) -> QueryResult:
        """Execute a statement that must be a query."""
        result = self.execute(sql)
        if not isinstance(result, QueryResult):
            raise ExecutionError("statement did not produce a result set")
        return result

    def execute_ast(self, statement: ast.Statement) -> ExecuteResult:
        """Execute an already-parsed statement."""
        if not obs.is_enabled():
            return self._execute_ast(statement)
        with obs.timer("sql.execute.latency_ms"):
            try:
                result = self._execute_ast(statement)
            except Exception:
                obs.count("sql.execute.failures")
                raise
        obs.count("sql.execute.calls")
        return result

    def _execute_ast(self, statement: ast.Statement) -> ExecuteResult:
        if isinstance(statement, (ast.Select, ast.SetOperation)):
            return self._executor.execute_query(statement)
        if isinstance(statement, ast.CreateTable):
            return self._create_table(statement)
        if isinstance(statement, ast.Insert):
            return self._insert(statement)
        if isinstance(statement, ast.Update):
            return self._update(statement)
        if isinstance(statement, ast.Delete):
            return self._delete(statement)
        if isinstance(statement, ast.DropTable):
            return self._drop_table(statement)
        raise ExecutionError(
            f"unsupported statement {type(statement).__name__}"
        )  # pragma: no cover

    # -- DDL / DML ----------------------------------------------------------------

    def _create_table(self, stmt: ast.CreateTable) -> DmlResult:
        columns = [
            Column(
                name=col.name,
                dtype=DataType.from_name(col.type_name),
                primary_key=col.primary_key,
            )
            for col in stmt.columns
        ]
        foreign_keys = [
            ForeignKey(fk.column, fk.ref_table, fk.ref_column)
            for fk in stmt.foreign_keys
        ]
        table = Table(name=stmt.name, columns=columns, foreign_keys=foreign_keys)
        self.schema.add_table(table)
        self._data[table.key] = TableData(table)
        return DmlResult(rows_affected=0)

    def _insert(self, stmt: ast.Insert) -> DmlResult:
        data = self.data(stmt.table)
        evaluator = Evaluator(self._executor)
        empty = RowFrame([], ())
        count = 0
        for row_exprs in stmt.rows:
            values = [evaluator.evaluate(expr, empty) for expr in row_exprs]
            if stmt.columns:
                if len(values) != len(stmt.columns):
                    raise ExecutionError(
                        "INSERT value count does not match column list"
                    )
                data.insert_named(dict(zip(stmt.columns, values)))
            else:
                data.insert(values)
            count += 1
        return DmlResult(rows_affected=count)

    def _frame_for(self, data: TableData, row: tuple) -> RowFrame:
        columns = [
            BoundColumn(binding=data.table.key, name=col.key)
            for col in data.table.columns
        ]
        return RowFrame(columns, row)

    def _update(self, stmt: ast.Update) -> DmlResult:
        data = self.data(stmt.table)
        evaluator = Evaluator(self._executor)
        positions = {
            col.key: index for index, col in enumerate(data.table.columns)
        }
        for column, _expr in stmt.assignments:
            if column.lower() not in positions:
                raise CatalogError(
                    f"table {stmt.table!r} has no column {column!r}"
                )
        new_rows = []
        affected = 0
        for row in data.rows:
            frame = self._frame_for(data, row)
            if stmt.where is None or evaluator.truthy(stmt.where, frame):
                updated = list(row)
                for column, expr in stmt.assignments:
                    updated[positions[column.lower()]] = evaluator.evaluate(
                        expr, frame
                    )
                new_rows.append(tuple(updated))
                affected += 1
            else:
                new_rows.append(row)
        data.replace_rows(new_rows)
        return DmlResult(rows_affected=affected)

    def _delete(self, stmt: ast.Delete) -> DmlResult:
        data = self.data(stmt.table)
        evaluator = Evaluator(self._executor)
        kept = []
        affected = 0
        for row in data.rows:
            frame = self._frame_for(data, row)
            if stmt.where is None or evaluator.truthy(stmt.where, frame):
                affected += 1
            else:
                kept.append(row)
        data.replace_rows(kept)
        return DmlResult(rows_affected=affected)

    def _drop_table(self, stmt: ast.DropTable) -> DmlResult:
        key = stmt.name.lower()
        if key not in self._data:
            if stmt.if_exists:
                return DmlResult(rows_affected=0)
            raise CatalogError(
                f"database {self.schema.name!r} has no table {stmt.name!r}"
            )
        self.schema.drop_table(stmt.name)
        del self._data[key]
        return DmlResult(rows_affected=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.schema.name!r}, {len(self.schema.tables)} tables)"


def _split_statements(script: str) -> list[str]:
    """Split a SQL script on semicolons that are outside string literals."""
    statements: list[str] = []
    current: list[str] = []
    in_string = False
    index = 0
    while index < len(script):
        char = script[index]
        if in_string:
            current.append(char)
            if char == "'":
                if script[index + 1 : index + 2] == "'":
                    current.append("'")
                    index += 1
                else:
                    in_string = False
        elif char == "'":
            in_string = True
            current.append(char)
        elif char == ";":
            text = "".join(current).strip()
            if text:
                statements.append(text)
            current = []
        else:
            current.append(char)
        index += 1
    text = "".join(current).strip()
    if text:
        statements.append(text)
    return statements


def execute_query_text(database: Database, sql: str) -> QueryResult:
    """Convenience free function mirroring :meth:`Database.query`."""
    return database.query(sql)
