"""Typed abstract syntax tree for the SQL dialect.

Every node is a frozen-ish dataclass (mutable for editability by
:mod:`repro.sql.edits`, but treated as immutable elsewhere). Nodes know how
to deep-copy themselves via :func:`copy.deepcopy`; the pretty printer in
:mod:`repro.sql.printer` renders them back to SQL text.

Expression nodes implement structural equality through dataclass equality,
which the analysis/diff machinery relies on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass
class Literal(Expression):
    """A constant: integer, float, string, boolean or NULL (value=None)."""

    value: Union[int, float, str, bool, None]


@dataclass
class Computed(Expression):
    """Internal node: wraps an already-computed value during aggregation.

    Never produced by the parser and never printed; the executor uses it to
    re-enter the evaluator with partial aggregate results.
    """

    value: Union[int, float, str, bool, None]


@dataclass
class ColumnRef(Expression):
    """Reference to a column, optionally qualified by table name or alias."""

    column: str
    table: Optional[str] = None

    def key(self) -> str:
        """Lower-cased ``table.column`` key used in matching heuristics."""
        if self.table:
            return f"{self.table.lower()}.{self.column.lower()}"
        return self.column.lower()


@dataclass
class Star(Expression):
    """``*`` or ``table.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None


class BinaryOperator(enum.Enum):
    """Binary operators, with their SQL spellings."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    CONCAT = "||"
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "AND"
    OR = "OR"

    @property
    def is_comparison(self) -> bool:
        return self in _COMPARISONS

    @property
    def is_logical(self) -> bool:
        return self in (BinaryOperator.AND, BinaryOperator.OR)


_COMPARISONS = frozenset(
    {
        BinaryOperator.EQ,
        BinaryOperator.NE,
        BinaryOperator.LT,
        BinaryOperator.LE,
        BinaryOperator.GT,
        BinaryOperator.GE,
    }
)


@dataclass
class BinaryOp(Expression):
    """``left <op> right``."""

    op: BinaryOperator
    left: Expression
    right: Expression


class UnaryOperator(enum.Enum):
    NOT = "NOT"
    NEG = "-"
    POS = "+"


@dataclass
class UnaryOp(Expression):
    """``NOT expr`` or ``-expr``."""

    op: UnaryOperator
    operand: Expression


@dataclass
class FunctionCall(Expression):
    """Scalar or aggregate function call.

    ``COUNT(*)`` is represented as ``FunctionCall("COUNT", [Star()])``.
    """

    name: str
    args: list[Expression] = field(default_factory=list)
    distinct: bool = False

    def __post_init__(self) -> None:
        self.name = self.name.upper()


#: Aggregate function names the executor understands.
AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


def is_aggregate_call(expr: Expression) -> bool:
    """Return True if ``expr`` is a call to an aggregate function."""
    return isinstance(expr, FunctionCall) and expr.name in AGGREGATE_FUNCTIONS


@dataclass
class Like(Expression):
    """``operand [NOT] LIKE pattern``."""

    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclass
class Between(Expression):
    """``operand [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass
class InList(Expression):
    """``operand [NOT] IN (item, item, ...)``."""

    operand: Expression
    items: list[Expression]
    negated: bool = False


@dataclass
class InSubquery(Expression):
    """``operand [NOT] IN (SELECT ...)``."""

    operand: Expression
    subquery: "Select"
    negated: bool = False


@dataclass
class Exists(Expression):
    """``[NOT] EXISTS (SELECT ...)``."""

    subquery: "Select"
    negated: bool = False


@dataclass
class ScalarSubquery(Expression):
    """A parenthesized SELECT used as a scalar value."""

    subquery: "Select"


@dataclass
class IsNull(Expression):
    """``operand IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass
class CaseWhen(Expression):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    branches: list[tuple[Expression, Expression]]
    default: Optional[Expression] = None


# ---------------------------------------------------------------------------
# Table expressions
# ---------------------------------------------------------------------------


class TableExpression:
    """Marker base class for FROM-clause items."""

    __slots__ = ()


@dataclass
class TableRef(TableExpression):
    """A base table reference with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this table is visible as (alias if given, else name)."""
        return self.alias or self.name


class JoinKind(enum.Enum):
    INNER = "JOIN"
    LEFT = "LEFT JOIN"
    CROSS = "CROSS JOIN"


@dataclass
class Join(TableExpression):
    """``left <kind> right ON condition`` (condition is None for CROSS)."""

    kind: JoinKind
    left: TableExpression
    right: TableExpression
    condition: Optional[Expression] = None


@dataclass
class SubquerySource(TableExpression):
    """A derived table: ``(SELECT ...) AS alias``."""

    subquery: "Select"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Marker base class for statements."""

    __slots__ = ()


@dataclass
class SelectItem:
    """One element of the select list: an expression plus optional alias."""

    expression: Expression
    alias: Optional[str] = None


class SortOrder(enum.Enum):
    ASC = "ASC"
    DESC = "DESC"


@dataclass
class OrderItem:
    """One ORDER BY key."""

    expression: Expression
    order: SortOrder = SortOrder.ASC


@dataclass
class Select(Statement):
    """A single SELECT block (set operations live in :class:`SetOperation`)."""

    items: list[SelectItem]
    source: Optional[TableExpression] = None
    where: Optional[Expression] = None
    group_by: list[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


class SetOperator(enum.Enum):
    UNION = "UNION"
    UNION_ALL = "UNION ALL"
    INTERSECT = "INTERSECT"
    EXCEPT = "EXCEPT"


@dataclass
class SetOperation(Statement):
    """``left UNION/INTERSECT/EXCEPT right`` with optional trailing ORDER BY."""

    op: SetOperator
    left: Union[Select, "SetOperation"]
    right: Union[Select, "SetOperation"]
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None


#: A query is either a plain SELECT or a tree of set operations.
Query = Union[Select, SetOperation]


@dataclass
class ColumnDef:
    """Column definition inside CREATE TABLE."""

    name: str
    type_name: str
    primary_key: bool = False


@dataclass
class ForeignKeyDef:
    """``FOREIGN KEY (col) REFERENCES table(col)``."""

    column: str
    ref_table: str
    ref_column: str


@dataclass
class CreateTable(Statement):
    name: str
    columns: list[ColumnDef]
    foreign_keys: list[ForeignKeyDef] = field(default_factory=list)


@dataclass
class Insert(Statement):
    table: str
    columns: list[str]
    rows: list[list[Expression]] = field(default_factory=list)


@dataclass
class Update(Statement):
    table: str
    assignments: list[tuple[str, Expression]] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class Delete(Statement):
    table: str
    where: Optional[Expression] = None


@dataclass
class DropTable(Statement):
    name: str
    if_exists: bool = False


def walk_expressions(expr: Optional[Expression]):
    """Yield ``expr`` and every expression nested inside it (pre-order).

    Subqueries are *not* descended into; callers that need nested query
    traversal should use :func:`walk_queries`.
    """
    if expr is None:
        return
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, BinaryOp):
            stack.extend((node.right, node.left))
        elif isinstance(node, UnaryOp):
            stack.append(node.operand)
        elif isinstance(node, FunctionCall):
            stack.extend(reversed(node.args))
        elif isinstance(node, Like):
            stack.extend((node.pattern, node.operand))
        elif isinstance(node, Between):
            stack.extend((node.high, node.low, node.operand))
        elif isinstance(node, InList):
            stack.extend(reversed(node.items))
            stack.append(node.operand)
        elif isinstance(node, InSubquery):
            stack.append(node.operand)
        elif isinstance(node, IsNull):
            stack.append(node.operand)
        elif isinstance(node, CaseWhen):
            for cond, value in reversed(node.branches):
                stack.extend((value, cond))
            if node.default is not None:
                stack.append(node.default)


def walk_queries(query: Query):
    """Yield every SELECT block in ``query``, including nested subqueries."""
    stack: list[Query] = [query]
    while stack:
        node = stack.pop()
        if isinstance(node, SetOperation):
            stack.extend((node.right, node.left))
            continue
        yield node
        sources = [node.source] if node.source is not None else []
        while sources:
            src = sources.pop()
            if isinstance(src, Join):
                sources.extend((src.right, src.left))
                if src.condition is not None:
                    stack.extend(_subqueries_in(src.condition))
            elif isinstance(src, SubquerySource):
                stack.append(src.subquery)
        for item in node.items:
            stack.extend(_subqueries_in(item.expression))
        for clause in (node.where, node.having):
            stack.extend(_subqueries_in(clause))
        for expr in node.group_by:
            stack.extend(_subqueries_in(expr))
        for order in node.order_by:
            stack.extend(_subqueries_in(order.expression))


def _subqueries_in(expr: Optional[Expression]) -> list[Query]:
    found: list[Query] = []
    for node in walk_expressions(expr):
        if isinstance(node, (InSubquery, Exists)):
            found.append(node.subquery)
        elif isinstance(node, ScalarSubquery):
            found.append(node.subquery)
    return found
