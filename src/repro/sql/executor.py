"""Query executor: FROM/WHERE/GROUP BY/HAVING/ORDER BY/LIMIT and set ops.

The executor is a straightforward iterator-free implementation (materialized
row lists). It favors clarity and correctness over throughput; the engine's
benchmarks show it is comfortably fast enough for SPIDER-scale databases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import ExecutionError
from repro.sql import ast
from repro.sql.expressions import BoundColumn, Evaluator, RowFrame
from repro.sql.functions import AGGREGATE_FACTORIES
from repro.sql.printer import print_expression
from repro.sql.types import SqlValue, sort_key

if TYPE_CHECKING:  # pragma: no cover
    from repro.sql.engine import Database


@dataclass
class QueryResult:
    """Result of a query: column names plus row tuples."""

    columns: list[str]
    rows: list[tuple[SqlValue, ...]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def first(self) -> Optional[tuple[SqlValue, ...]]:
        """The first row, or None for an empty result."""
        return self.rows[0] if self.rows else None

    def scalar(self) -> SqlValue:
        """The single value of a 1x1 result (None when empty)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def to_dicts(self) -> list[dict[str, SqlValue]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


class _RowSet:
    """Intermediate bound rows produced by FROM-clause evaluation."""

    __slots__ = ("columns", "rows")

    def __init__(
        self, columns: list[BoundColumn], rows: list[tuple[SqlValue, ...]]
    ) -> None:
        self.columns = columns
        self.rows = rows


_MAX_JOIN_ROWS = 2_000_000


class Executor:
    """Executes parsed queries against a :class:`~repro.sql.engine.Database`."""

    def __init__(self, database: "Database") -> None:
        self._db = database
        self._evaluator = Evaluator(self)

    # -- public API ----------------------------------------------------------

    def execute_query(self, query: ast.Query) -> QueryResult:
        """Execute a SELECT or a set-operation tree."""
        if isinstance(query, ast.Select):
            return self.execute_select(query)
        return self._execute_set_operation(query)

    def execute_select(
        self, select: ast.Select, outer: Optional[RowFrame] = None
    ) -> QueryResult:
        """Execute one SELECT block (optionally correlated to ``outer``)."""
        rowset = self._rows_from_source(select.source, outer)
        frames = [
            RowFrame(rowset.columns, row, outer) for row in rowset.rows
        ]

        if select.where is not None:
            frames = [
                frame
                for frame in frames
                if self._evaluator.truthy(select.where, frame)
            ]

        expanded_names = self._expand_star_names(select, rowset)
        item_positions = self._item_positions(select, rowset)
        is_aggregate = bool(select.group_by) or any(
            _contains_aggregate(item.expression) for item in select.items
        )
        if select.having is not None:
            is_aggregate = True

        if is_aggregate:
            rows = self._execute_aggregate(select, rowset, frames)
        else:
            rows = self._execute_plain(select, rowset, frames)

        if select.distinct:
            rows = _distinct(rows)

        result_rows = [row for row, _context in rows]
        if select.order_by:
            result_rows = self._order_rows(
                select.order_by, rows, expanded_names, item_positions, select
            )
        if select.limit is not None:
            start = select.offset or 0
            result_rows = result_rows[start : start + select.limit]
        elif select.offset is not None:
            result_rows = result_rows[select.offset :]

        return QueryResult(columns=expanded_names, rows=result_rows)

    # -- FROM ------------------------------------------------------------------

    def _rows_from_source(
        self, source: Optional[ast.TableExpression], outer: Optional[RowFrame]
    ) -> _RowSet:
        if source is None:
            return _RowSet(columns=[], rows=[()])
        if isinstance(source, ast.TableRef):
            data = self._db.data(source.name)
            binding = source.binding.lower()
            columns = [
                BoundColumn(binding=binding, name=col.key)
                for col in data.table.columns
            ]
            return _RowSet(columns=columns, rows=list(data.rows))
        if isinstance(source, ast.SubquerySource):
            result = self.execute_select(source.subquery)
            binding = source.alias.lower()
            columns = [
                BoundColumn(binding=binding, name=name.lower())
                for name in result.columns
            ]
            return _RowSet(columns=columns, rows=list(result.rows))
        if isinstance(source, ast.Join):
            return self._execute_join(source, outer)
        raise ExecutionError(
            f"unsupported FROM item {type(source).__name__}"
        )  # pragma: no cover

    def _execute_join(self, join: ast.Join, outer: Optional[RowFrame]) -> _RowSet:
        left = self._rows_from_source(join.left, outer)
        right = self._rows_from_source(join.right, outer)
        columns = left.columns + right.columns
        if len(left.rows) * max(len(right.rows), 1) > _MAX_JOIN_ROWS:
            raise ExecutionError("join would materialize too many rows")

        rows: list[tuple[SqlValue, ...]] = []
        if join.kind is ast.JoinKind.CROSS or join.condition is None:
            for lrow in left.rows:
                for rrow in right.rows:
                    rows.append(lrow + rrow)
            return _RowSet(columns, rows)

        condition = join.condition
        equi = self._equi_join_key(condition, left, right)
        if equi is not None:
            left_idx, right_idx = equi
            index: dict[SqlValue, list[tuple[SqlValue, ...]]] = {}
            for rrow in right.rows:
                key = rrow[right_idx]
                if key is None:
                    continue
                index.setdefault(key, []).append(rrow)
            null_right = (None,) * len(right.columns)
            for lrow in left.rows:
                matches = index.get(lrow[left_idx], ()) if lrow[left_idx] is not None else ()
                if matches:
                    for rrow in matches:
                        rows.append(lrow + rrow)
                elif join.kind is ast.JoinKind.LEFT:
                    rows.append(lrow + null_right)
            return _RowSet(columns, rows)

        null_right = (None,) * len(right.columns)
        for lrow in left.rows:
            matched = False
            for rrow in right.rows:
                frame = RowFrame(columns, lrow + rrow, outer)
                if self._evaluator.truthy(condition, frame):
                    rows.append(lrow + rrow)
                    matched = True
            if not matched and join.kind is ast.JoinKind.LEFT:
                rows.append(lrow + null_right)
        return _RowSet(columns, rows)

    def _equi_join_key(
        self, condition: ast.Expression, left: _RowSet, right: _RowSet
    ) -> Optional[tuple[int, int]]:
        """Detect ``a.x = b.y`` so the join can be hash-based."""
        if not (
            isinstance(condition, ast.BinaryOp)
            and condition.op is ast.BinaryOperator.EQ
            and isinstance(condition.left, ast.ColumnRef)
            and isinstance(condition.right, ast.ColumnRef)
        ):
            return None
        left_frame = RowFrame(left.columns, (None,) * len(left.columns))
        right_frame = RowFrame(right.columns, (None,) * len(right.columns))
        ll = left_frame.find(condition.left.table, condition.left.column)
        rr = right_frame.find(condition.right.table, condition.right.column)
        if ll is not None and rr is not None:
            return (ll, rr)
        lr = left_frame.find(condition.right.table, condition.right.column)
        rl = right_frame.find(condition.left.table, condition.left.column)
        if lr is not None and rl is not None:
            return (lr, rl)
        return None

    # -- projection --------------------------------------------------------------

    def _execute_plain(
        self,
        select: ast.Select,
        rowset: _RowSet,
        frames: list[RowFrame],
    ) -> list[tuple[tuple[SqlValue, ...], Optional[RowFrame]]]:
        rows: list[tuple[tuple[SqlValue, ...], Optional[RowFrame]]] = []
        for frame in frames:
            out: list[SqlValue] = []
            for item in select.items:
                expr = item.expression
                if isinstance(expr, ast.Star):
                    out.extend(self._star_values(expr, frame, rowset))
                else:
                    out.append(self._evaluator.evaluate(expr, frame))
            rows.append((tuple(out), frame))
        return rows

    def _star_values(
        self, star: ast.Star, frame: RowFrame, rowset: _RowSet
    ) -> list[SqlValue]:
        if star.table is None:
            return list(frame.values)
        binding = star.table.lower()
        values = [
            frame.values[index]
            for index, bound in enumerate(rowset.columns)
            if bound.binding == binding
        ]
        if not values:
            raise ExecutionError(f"unknown table in {star.table}.*")
        return values

    def _expand_star_names(self, select: ast.Select, rowset: _RowSet) -> list[str]:
        names: list[str] = []
        for item in select.items:
            expr = item.expression
            if isinstance(expr, ast.Star) and item.alias is None:
                if expr.table is None:
                    names.extend(bound.name for bound in rowset.columns)
                else:
                    binding = expr.table.lower()
                    names.extend(
                        bound.name
                        for bound in rowset.columns
                        if bound.binding == binding
                    )
            else:
                names.append(self._item_name(item))
        return names

    def _item_positions(self, select: ast.Select, rowset: _RowSet) -> list[int]:
        """Row index of each select item's first output column.

        Star items expand to several output columns; later items shift right.
        """
        positions: list[int] = []
        cursor = 0
        for item in select.items:
            positions.append(cursor)
            expr = item.expression
            if isinstance(expr, ast.Star) and item.alias is None:
                if expr.table is None:
                    cursor += len(rowset.columns)
                else:
                    binding = expr.table.lower()
                    cursor += sum(
                        1 for bound in rowset.columns if bound.binding == binding
                    )
            else:
                cursor += 1
        return positions

    @staticmethod
    def _item_name(item: ast.SelectItem) -> str:
        if item.alias:
            return item.alias
        expr = item.expression
        if isinstance(expr, ast.ColumnRef):
            return expr.column
        return print_expression(expr)

    # -- aggregation -----------------------------------------------------------

    def _execute_aggregate(
        self,
        select: ast.Select,
        rowset: _RowSet,
        frames: list[RowFrame],
    ) -> list[tuple[tuple[SqlValue, ...], list[RowFrame]]]:
        groups: dict[tuple, list[RowFrame]] = {}
        if select.group_by:
            order: list[tuple] = []
            for frame in frames:
                key = tuple(
                    _hashable(self._evaluator.evaluate(expr, frame))
                    for expr in select.group_by
                )
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(frame)
            group_list = [groups[key] for key in order]
        else:
            group_list = [frames]

        rows: list[tuple[tuple[SqlValue, ...], list[RowFrame]]] = []
        for group in group_list:
            if select.having is not None:
                having_value = self._eval_in_group(select.having, group, rowset)
                if not _sql_true(having_value):
                    continue
            out = tuple(
                self._eval_in_group(item.expression, group, rowset)
                for item in select.items
            )
            rows.append((out, group))
        return rows

    def _eval_in_group(
        self,
        expr: ast.Expression,
        group: Sequence[RowFrame],
        rowset: _RowSet,
    ) -> SqlValue:
        """Evaluate an expression in aggregate context.

        Aggregate calls accumulate over the group's rows; bare columns take
        their value from the group's first row (lenient, SQLite-style).
        """
        if isinstance(expr, ast.FunctionCall) and expr.name in AGGREGATE_FACTORIES:
            factory = AGGREGATE_FACTORIES[expr.name]
            acc = factory(expr.distinct)
            if not expr.args or isinstance(expr.args[0], ast.Star):
                if expr.name != "COUNT":
                    raise ExecutionError(f"{expr.name}(*) is not valid")
                for frame in group:
                    acc.add(1)
                return acc.result()
            arg = expr.args[0]
            for frame in group:
                acc.add(self._evaluator.evaluate(arg, frame))
            return acc.result()
        if isinstance(expr, ast.BinaryOp):
            rebuilt = ast.BinaryOp(
                expr.op,
                ast.Computed(self._eval_in_group(expr.left, group, rowset)),
                ast.Computed(self._eval_in_group(expr.right, group, rowset)),
            )
            frame = group[0] if group else RowFrame(rowset.columns, ())
            return self._evaluator.evaluate(rebuilt, frame)
        if isinstance(expr, ast.UnaryOp):
            inner = self._eval_in_group(expr.operand, group, rowset)
            rebuilt = ast.UnaryOp(expr.op, ast.Computed(inner))
            frame = group[0] if group else RowFrame(rowset.columns, ())
            return self._evaluator.evaluate(rebuilt, frame)
        if not group:
            # Zero-row aggregate group: non-aggregate leaf is NULL.
            if isinstance(expr, ast.Literal):
                return expr.value
            return None
        return self._evaluator.evaluate(expr, group[0])

    # -- ordering ----------------------------------------------------------------

    def _order_rows(
        self,
        order_by: list[ast.OrderItem],
        rows: list[tuple[tuple[SqlValue, ...], object]],
        expanded_names: list[str],
        item_positions: list[int],
        select: ast.Select,
    ) -> list[tuple[SqlValue, ...]]:
        alias_index = {name.lower(): i for i, name in enumerate(expanded_names)}
        decorated = list(rows)
        for item in reversed(order_by):
            keys = [
                sort_key(
                    self._order_key(
                        item.expression,
                        row,
                        context,
                        alias_index,
                        item_positions,
                        select,
                    )
                )
                for row, context in decorated
            ]
            reverse = item.order is ast.SortOrder.DESC
            decorated = [
                rc
                for _key, rc in sorted(
                    zip(keys, decorated), key=lambda pair: pair[0], reverse=reverse
                )
            ]
        return [row for row, _context in decorated]

    def _order_key(
        self,
        expr: ast.Expression,
        row: tuple[SqlValue, ...],
        context: object,
        alias_index: dict[str, int],
        item_positions: list[int],
        select: ast.Select,
    ) -> SqlValue:
        # ORDER BY <position>
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value - 1
            if 0 <= position < len(row):
                return row[position]
            raise ExecutionError(f"ORDER BY position {expr.value} out of range")
        # ORDER BY <output alias or output column name>
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            index = alias_index.get(expr.column.lower())
            if index is not None and index < len(row):
                return row[index]
        # ORDER BY <select-list expression> (match by structure)
        for item_index, item in enumerate(select.items):
            if item.expression == expr:
                position = item_positions[item_index]
                if position < len(row):
                    return row[position]
        # Fall back to evaluating against the source frame(s).
        if isinstance(context, RowFrame):
            return self._evaluator.evaluate(expr, context)
        if isinstance(context, list) and context:
            rowset = _RowSet(context[0].columns, [])
            return self._eval_in_group(expr, context, rowset)
        if isinstance(context, list):
            return None
        raise ExecutionError(
            f"cannot resolve ORDER BY expression {print_expression(expr)!r}"
        )

    # -- set operations ------------------------------------------------------------

    def _execute_set_operation(self, op: ast.SetOperation) -> QueryResult:
        left = self.execute_query(op.left)
        right = self.execute_query(op.right)
        if left.rows and right.rows and len(left.rows[0]) != len(right.rows[0]):
            raise ExecutionError("set operation operands have different widths")

        if op.op is ast.SetOperator.UNION_ALL:
            rows = left.rows + right.rows
        elif op.op is ast.SetOperator.UNION:
            rows = _distinct_rows(left.rows + right.rows)
        elif op.op is ast.SetOperator.INTERSECT:
            right_set = {_hash_row(row) for row in right.rows}
            rows = _distinct_rows(
                [row for row in left.rows if _hash_row(row) in right_set]
            )
        else:  # EXCEPT
            right_set = {_hash_row(row) for row in right.rows}
            rows = _distinct_rows(
                [row for row in left.rows if _hash_row(row) not in right_set]
            )

        if op.order_by:
            alias_index = {name.lower(): i for i, name in enumerate(left.columns)}
            for item in reversed(op.order_by):
                def key_of(row: tuple[SqlValue, ...]):
                    expr = item.expression
                    if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                        return sort_key(row[expr.value - 1])
                    if isinstance(expr, ast.ColumnRef) and expr.table is None:
                        index = alias_index.get(expr.column.lower())
                        if index is not None:
                            return sort_key(row[index])
                    raise ExecutionError(
                        "set-operation ORDER BY must reference output columns"
                    )

                rows = sorted(
                    rows, key=key_of, reverse=item.order is ast.SortOrder.DESC
                )
        if op.limit is not None:
            rows = rows[: op.limit]
        return QueryResult(columns=left.columns, rows=rows)


def _contains_aggregate(expr: ast.Expression) -> bool:
    """True when any aggregate call appears in the expression (not subqueries)."""
    return any(ast.is_aggregate_call(node) for node in ast.walk_expressions(expr))


def _hashable(value: SqlValue) -> SqlValue:
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def _hash_row(row: tuple[SqlValue, ...]) -> tuple:
    return tuple(_hashable(v) for v in row)


def _distinct(
    rows: list[tuple[tuple[SqlValue, ...], object]]
) -> list[tuple[tuple[SqlValue, ...], object]]:
    seen: set = set()
    out = []
    for row, context in rows:
        key = _hash_row(row)
        if key in seen:
            continue
        seen.add(key)
        out.append((row, context))
    return out


def _distinct_rows(rows: list[tuple[SqlValue, ...]]) -> list[tuple[SqlValue, ...]]:
    seen: set = set()
    out = []
    for row in rows:
        key = _hash_row(row)
        if key in seen:
            continue
        seen.add(key)
        out.append(row)
    return out


def _sql_true(value: SqlValue) -> bool:
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    raise ExecutionError(f"HAVING evaluated to non-boolean {value!r}")
