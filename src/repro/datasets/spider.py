"""SPIDER-like benchmark generator.

Generates a seeded suite shaped like the SPIDER dev environment the paper
uses: ~200 databases with 5–20 tables and 5–10 columns per table, a dev
split of 1034 questions with gold SQL, plus a train split used as the RAG
demonstration pool. A configurable fraction of dev questions carry *traps*
(see :mod:`repro.datasets.traps`) that reproduce the error classes GPT-class
models make on SPIDER.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.datasets.base import Benchmark, Example
from repro.datasets.names import (
    CURRENT_YEAR,
    ENTITY_CATEGORIES,
    MODEL_DEFAULT_YEAR,
    MONTH_NAMES,
    OBJECT_ENTITIES,
    STATUS_POOLS,
    AttrSpec,
    attribute_pool,
)
from repro.datasets.populate import make_entity_name, make_value
from repro.errors import DatasetError
from repro.sql.engine import Database
from repro.sql.schema import Column, DatabaseSchema, ForeignKey, Table
from repro.sql.types import DataType


@dataclass
class GeneratedTable:
    """Bookkeeping for one generated table (schema + NL metadata)."""

    singular: str
    plural: str
    category: str
    table: Table
    attrs: list[AttrSpec] = field(default_factory=list)
    status_values: tuple[str, ...] = ()
    status_vague_phrase: str = ""
    compound_noun: str = ""  # e.g. "song" when a song_name column was added
    parent: Optional["GeneratedTable"] = None
    fk_column: str = ""

    @property
    def id_column(self) -> str:
        return f"{self.singular}_id"

    def attr(self, kind: str) -> list[AttrSpec]:
        return [spec for spec in self.attrs if spec.kind == kind]

    def has_attr(self, column: str) -> bool:
        return any(spec.column == column for spec in self.attrs)


@dataclass
class GeneratedDatabase:
    """A generated database plus its per-table metadata."""

    db_id: str
    database: Database
    tables: list[GeneratedTable]

    def table_meta(self, name: str) -> GeneratedTable:
        for meta in self.tables:
            if meta.table.name.lower() == name.lower():
                return meta
        raise DatasetError(f"no generated table {name!r} in {self.db_id!r}")


@dataclass
class SpiderSuite:
    """The full generated environment: databases + dev/train splits."""

    benchmark: Benchmark
    train_examples: list[Example]
    generated: dict[str, GeneratedDatabase]

    @property
    def dev_examples(self) -> list[Example]:
        return self.benchmark.examples


#: Default trap mix (weights within the trapped portion of the dev split).
#: The first three are *not* fixable by RAG demonstrations (they hinge on
#: instance-specific context); the rest are phrasing conventions that
#: demonstrations can teach. This split is what separates zero-shot accuracy
#: (Figure 2) from the RAG Assistant's accuracy (the 243-error set).
DEFAULT_TRAP_WEIGHTS: dict[str, float] = {
    "ambiguous_column": 0.20,
    "default_year": 0.20,
    "missing_filter": 0.14,
    "multi": 0.24,
    "extra_description": 0.05,
    "count_distinct": 0.04,
    "missing_distinct": 0.04,
    "order_direction": 0.04,
    "wrong_aggregate": 0.04,
}


#: Trap mix for the *train* split (the RAG demonstration pool): only the
#: phrasing-convention traps appear there — their gold SQL is correct and
#: demonstrates the house conventions. The context-dependent traps
#: (ambiguous columns, implicit years, org-specific filters) cannot appear
#: in curated training data, which is exactly why RAG cannot fix them.
TRAIN_TRAP_WEIGHTS: dict[str, float] = {
    "extra_description": 0.28,
    "count_distinct": 0.18,
    "missing_distinct": 0.18,
    "order_direction": 0.18,
    "wrong_aggregate": 0.18,
}


class SpiderGenerator:
    """Seeded generator for the SPIDER-like suite.

    Args:
        seed: RNG seed; the full suite is a pure function of it.
        n_databases: Number of databases (paper: "about 200").
        n_dev: Dev-split size (paper: 1034).
        n_train: Train-split size (RAG demonstration pool).
        trap_rate: Fraction of dev questions that carry a trap.
        trap_weights: Relative frequency of each trap kind.
    """

    def __init__(
        self,
        seed: int = 20250325,
        n_databases: int = 200,
        n_dev: int = 1034,
        n_train: int = 600,
        trap_rate: float = 0.345,
        trap_weights: Optional[dict[str, float]] = None,
    ) -> None:
        self._seed = seed
        self._n_databases = n_databases
        self._n_dev = n_dev
        self._n_train = n_train
        self._trap_rate = trap_rate
        self._trap_weights = dict(trap_weights or DEFAULT_TRAP_WEIGHTS)

    # -- public API -------------------------------------------------------------

    def generate(self) -> SpiderSuite:
        """Generate the databases and both question splits."""
        rng = random.Random(self._seed)
        generated: dict[str, GeneratedDatabase] = {}
        for index in range(self._n_databases):
            gdb = self._generate_database(rng, index)
            generated[gdb.db_id] = gdb

        db_ids = sorted(generated)
        dev = self._generate_split(
            rng, generated, db_ids, self._n_dev, "dev", trapped=True
        )
        train = self._generate_split(
            rng,
            generated,
            db_ids,
            self._n_train,
            "train",
            trapped=True,
            trap_weights=TRAIN_TRAP_WEIGHTS,
            trap_rate=0.45,
        )
        benchmark = Benchmark(
            name="spider_like",
            databases={db_id: gdb.database for db_id, gdb in generated.items()},
            examples=dev,
        )
        return SpiderSuite(
            benchmark=benchmark, train_examples=train, generated=generated
        )

    # -- schema generation ----------------------------------------------------------

    def _generate_database(
        self, rng: random.Random, index: int
    ) -> GeneratedDatabase:
        n_tables = rng.randint(5, 20)
        entity_pool = [
            (singular, plural, category)
            for category, entities in ENTITY_CATEGORIES.items()
            for singular, plural in entities
        ]
        chosen = rng.sample(entity_pool, n_tables)
        db_id = f"{chosen[0][0]}_db_{index:03d}"

        metas: list[GeneratedTable] = []
        used_nouns = {singular for singular, _plural, _cat in chosen}
        for position, (singular, plural, category) in enumerate(chosen):
            meta = self._generate_table(rng, singular, plural, category, used_nouns)
            # Foreign key to a previously generated table.
            if metas and rng.random() < 0.55:
                parent = rng.choice(metas)
                fk_column = f"{parent.singular}_id"
                if not any(c.key == fk_column for c in meta.table.columns):
                    meta.table.columns.append(
                        Column(
                            name=fk_column,
                            dtype=DataType.INTEGER,
                            nl_name=f"{parent.singular} id",
                        )
                    )
                    meta.table.foreign_keys.append(
                        ForeignKey(
                            column=fk_column,
                            ref_table=parent.table.name,
                            ref_column=parent.id_column,
                        )
                    )
                    meta.parent = parent
                    meta.fk_column = fk_column
                    # Rebuild the internal column index.
                    meta.table.__post_init__()
            metas.append(meta)

        schema = DatabaseSchema(db_id, [meta.table for meta in metas])
        database = Database(schema)
        self._populate(rng, database, metas)
        return GeneratedDatabase(db_id=db_id, database=database, tables=metas)

    def _generate_table(
        self,
        rng: random.Random,
        singular: str,
        plural: str,
        category: str,
        used_nouns: set[str],
    ) -> GeneratedTable:
        pool = attribute_pool(category)
        n_attrs = rng.randint(3, 6)
        attrs = rng.sample(pool, min(n_attrs, len(pool)))

        status_values: tuple[str, ...] = ()
        vague_phrase = ""
        if any(spec.kind == "status" for spec in attrs):
            status_values, vague_phrase = rng.choice(STATUS_POOLS)

        columns = [
            Column(
                name=f"{singular}_id",
                dtype=DataType.INTEGER,
                nl_name=f"{singular} id",
                primary_key=True,
            ),
            Column(name="name", dtype=DataType.TEXT, nl_name="name"),
        ]
        for spec in attrs:
            columns.append(
                Column(name=spec.column, dtype=spec.dtype, nl_name=spec.nl)
            )

        # Optionally add a compound "{noun}_name" decoy target for the
        # ambiguous-column trap; the noun must not be a table in this DB.
        compound_noun = ""
        if category == "person" and rng.random() < 0.65:
            candidates = [
                noun for noun, _plural in OBJECT_ENTITIES if noun not in used_nouns
            ]
            if candidates:
                compound_noun = rng.choice(candidates)
                columns.append(
                    Column(
                        name=f"{compound_noun}_name",
                        dtype=DataType.TEXT,
                        nl_name=f"{compound_noun} name",
                    )
                )

        table = Table(name=singular, columns=columns, nl_name=singular)
        return GeneratedTable(
            singular=singular,
            plural=plural,
            category=category,
            table=table,
            attrs=attrs,
            status_values=status_values,
            status_vague_phrase=vague_phrase,
            compound_noun=compound_noun,
        )

    def _populate(
        self,
        rng: random.Random,
        database: Database,
        metas: list[GeneratedTable],
    ) -> None:
        row_counts: dict[str, int] = {}
        for meta in metas:
            n_rows = rng.randint(18, 55)
            row_counts[meta.table.key] = n_rows
            data = database.data(meta.table.name)
            for row_id in range(1, n_rows + 1):
                values: dict[str, object] = {
                    meta.id_column: row_id,
                    "name": make_entity_name(rng, meta.category),
                }
                for spec in meta.attrs:
                    values[spec.column] = make_value(
                        rng, spec, meta.status_values
                    )
                if meta.compound_noun:
                    values[f"{meta.compound_noun}_name"] = make_entity_name(
                        rng, "object"
                    )
                if meta.parent is not None:
                    parent_rows = row_counts[meta.parent.table.key]
                    values[meta.fk_column] = rng.randint(1, parent_rows)
                data.insert_named(values)

    # -- question generation -----------------------------------------------------------

    def _generate_split(
        self,
        rng: random.Random,
        generated: dict[str, GeneratedDatabase],
        db_ids: list[str],
        count: int,
        split: str,
        trapped: bool,
        trap_weights: Optional[dict[str, float]] = None,
        trap_rate: Optional[float] = None,
    ) -> list[Example]:
        examples: list[Example] = []
        attempts = 0
        rate = trap_rate if trap_rate is not None else self._trap_rate
        weights = trap_weights or self._trap_weights
        while len(examples) < count and attempts < count * 60:
            attempts += 1
            db_id = db_ids[(len(examples) + attempts) % len(db_ids)]
            gdb = generated[db_id]
            use_trap = trapped and rng.random() < rate
            try:
                if use_trap:
                    example = self._make_trapped(
                        rng, gdb, split, len(examples), weights
                    )
                else:
                    example = self._make_clean(rng, gdb, split, len(examples))
            except DatasetError:
                continue
            if example is not None:
                examples.append(example)
        if len(examples) < count:
            raise DatasetError(
                f"could only generate {len(examples)} of {count} examples"
            )
        return examples

    # .. clean templates ..........................................................

    def _make_clean(
        self,
        rng: random.Random,
        gdb: GeneratedDatabase,
        split: str,
        index: int,
    ) -> Optional[Example]:
        builders: list[Callable] = [
            self._q_count_all,
            self._q_list_names,
            self._q_list_names_filtered,
            self._q_attr_of_named,
            self._q_aggregate,
            self._q_count_filtered,
            self._q_group_count,
            self._q_top_n,
            self._q_superlative,
            self._q_distinct_explicit,
            self._q_above_average,
            self._q_join_names,
            self._q_count_per_parent,
            self._q_month_explicit,
            self._q_between,
        ]
        builder = rng.choice(builders)
        built = builder(rng, gdb)
        if built is None:
            raise DatasetError("template not applicable")
        question, gold_sql, hardness = built
        return Example(
            example_id=f"spider-{split}-{index:05d}",
            db_id=gdb.db_id,
            question=question,
            gold_sql=gold_sql,
            hardness=hardness,
        )

    def _pick_meta(
        self, rng: random.Random, gdb: GeneratedDatabase, needs: str = ""
    ) -> GeneratedTable:
        candidates = gdb.tables
        if needs:
            candidates = [m for m in gdb.tables if m.attr(needs)]
        if not candidates:
            raise DatasetError(f"no table with a {needs!r} attribute")
        return rng.choice(candidates)

    def _sample_value(
        self, gdb: GeneratedDatabase, meta: GeneratedTable, column: str, rng: random.Random
    ):
        data = gdb.database.data(meta.table.name)
        index = data.column_index(column)
        values = [row[index] for row in data.rows if row[index] is not None]
        if not values:
            raise DatasetError(f"no values for {meta.table.name}.{column}")
        return rng.choice(values)

    @staticmethod
    def _comparison(rng: random.Random) -> tuple[str, str]:
        """(phrase, operator) for numeric comparisons."""
        return rng.choice(
            [
                ("greater than", ">"),
                ("less than", "<"),
                ("at least", ">="),
                ("at most", "<="),
            ]
        )

    def _q_count_all(self, rng, gdb):
        meta = self._pick_meta(rng, gdb)
        question = f"How many {meta.plural} are there?"
        gold = f"SELECT COUNT(*) FROM {meta.table.name}"
        return question, gold, "easy"

    def _q_list_names(self, rng, gdb):
        meta = self._pick_meta(rng, gdb)
        question = f"List the names of all {meta.plural}."
        gold = f"SELECT name FROM {meta.table.name}"
        return question, gold, "easy"

    def _q_list_names_filtered(self, rng, gdb):
        meta = self._pick_meta(rng, gdb, needs="numeric")
        spec = rng.choice(meta.attr("numeric") + meta.attr("measure"))
        threshold = int((spec.low + spec.high) / 2)
        phrase, op = self._comparison(rng)
        question = (
            f"List the names of {meta.plural} whose {spec.nl} is "
            f"{phrase} {threshold}."
        )
        gold = (
            f"SELECT name FROM {meta.table.name} "
            f"WHERE {spec.column} {op} {threshold}"
        )
        return question, gold, "medium"

    def _q_attr_of_named(self, rng, gdb):
        meta = self._pick_meta(rng, gdb)
        specs = meta.attrs
        if not specs:
            return None
        spec = rng.choice(specs)
        name = self._sample_value(gdb, meta, "name", rng)
        escaped = str(name).replace("'", "''")
        question = (
            f"What is the {spec.nl} of the {meta.singular} named '{name}'?"
        )
        gold = (
            f"SELECT {spec.column} FROM {meta.table.name} "
            f"WHERE name = '{escaped}'"
        )
        return question, gold, "easy"

    def _q_aggregate(self, rng, gdb):
        meta = self._pick_meta(rng, gdb, needs="numeric")
        spec = rng.choice(meta.attr("numeric") + meta.attr("measure"))
        agg_phrase, agg_fn = rng.choice(
            [
                ("average", "AVG"),
                ("maximum", "MAX"),
                ("minimum", "MIN"),
            ]
        )
        question = f"What is the {agg_phrase} {spec.nl} of all {meta.plural}?"
        gold = f"SELECT {agg_fn}({spec.column}) FROM {meta.table.name}"
        return question, gold, "medium"

    def _q_count_filtered(self, rng, gdb):
        meta = self._pick_meta(rng, gdb, needs="category")
        spec = rng.choice(meta.attr("category"))
        value = self._sample_value(gdb, meta, spec.column, rng)
        escaped = str(value).replace("'", "''")
        question = f"How many {meta.plural} have {spec.nl} '{value}'?"
        gold = (
            f"SELECT COUNT(*) FROM {meta.table.name} "
            f"WHERE {spec.column} = '{escaped}'"
        )
        return question, gold, "medium"

    def _q_group_count(self, rng, gdb):
        meta = self._pick_meta(rng, gdb, needs="category")
        spec = rng.choice(meta.attr("category"))
        question = f"How many {meta.plural} are there for each {spec.nl}?"
        gold = (
            f"SELECT {spec.column}, COUNT(*) FROM {meta.table.name} "
            f"GROUP BY {spec.column}"
        )
        return question, gold, "medium"

    def _q_top_n(self, rng, gdb):
        meta = self._pick_meta(rng, gdb, needs="numeric")
        spec = rng.choice(meta.attr("numeric") + meta.attr("measure"))
        n = rng.randint(3, 8)
        question = (
            f"List the names of the top {n} {meta.plural} by {spec.nl}."
        )
        gold = (
            f"SELECT name FROM {meta.table.name} "
            f"ORDER BY {spec.column} DESC LIMIT {n}"
        )
        return question, gold, "medium"

    def _q_superlative(self, rng, gdb):
        meta = self._pick_meta(rng, gdb, needs="numeric")
        spec = rng.choice(meta.attr("numeric") + meta.attr("measure"))
        phrase, direction = rng.choice(
            [("highest", "DESC"), ("lowest", "ASC")]
        )
        question = (
            f"What is the name of the {meta.singular} with the "
            f"{phrase} {spec.nl}?"
        )
        gold = (
            f"SELECT name FROM {meta.table.name} "
            f"ORDER BY {spec.column} {direction} LIMIT 1"
        )
        return question, gold, "medium"

    def _q_distinct_explicit(self, rng, gdb):
        meta = self._pick_meta(rng, gdb, needs="category")
        spec = rng.choice(meta.attr("category"))
        question = (
            f"What are the different {spec.nl} values of the {meta.plural}?"
        )
        gold = f"SELECT DISTINCT {spec.column} FROM {meta.table.name}"
        return question, gold, "easy"

    def _q_above_average(self, rng, gdb):
        meta = self._pick_meta(rng, gdb, needs="numeric")
        spec = rng.choice(meta.attr("numeric") + meta.attr("measure"))
        question = (
            f"List the names of {meta.plural} whose {spec.nl} is above "
            f"the average."
        )
        gold = (
            f"SELECT name FROM {meta.table.name} WHERE {spec.column} > "
            f"(SELECT AVG({spec.column}) FROM {meta.table.name})"
        )
        return question, gold, "extra"

    def _child_with_parent(
        self, rng: random.Random, gdb: GeneratedDatabase
    ) -> GeneratedTable:
        candidates = [m for m in gdb.tables if m.parent is not None]
        if not candidates:
            raise DatasetError("no parent-linked tables")
        return rng.choice(candidates)

    def _q_join_names(self, rng, gdb):
        child = self._child_with_parent(rng, gdb)
        parent = child.parent
        question = (
            f"Show the name of each {child.singular} together with the "
            f"name of its {parent.singular}."
        )
        gold = (
            f"SELECT T1.name, T2.name FROM {child.table.name} AS T1 "
            f"JOIN {parent.table.name} AS T2 "
            f"ON T1.{child.fk_column} = T2.{parent.id_column}"
        )
        return question, gold, "hard"

    def _q_count_per_parent(self, rng, gdb):
        child = self._child_with_parent(rng, gdb)
        parent = child.parent
        question = (
            f"How many {child.plural} are there for each {parent.singular}?"
        )
        gold = (
            f"SELECT T2.name, COUNT(*) FROM {child.table.name} AS T1 "
            f"JOIN {parent.table.name} AS T2 "
            f"ON T1.{child.fk_column} = T2.{parent.id_column} "
            f"GROUP BY T2.name"
        )
        return question, gold, "hard"

    def _q_month_explicit(self, rng, gdb):
        meta = self._pick_meta(rng, gdb, needs="date")
        spec = rng.choice(meta.attr("date"))
        month = rng.randint(1, 12)
        year = rng.choice((2023, CURRENT_YEAR))
        start, end = _month_range(year, month)
        question = (
            f"How many {meta.plural} were created in "
            f"{MONTH_NAMES[month - 1]} {year}?"
        )
        gold = (
            f"SELECT COUNT(*) FROM {meta.table.name} "
            f"WHERE {spec.column} >= '{start}' AND {spec.column} < '{end}'"
        )
        return question, gold, "medium"

    def _q_between(self, rng, gdb):
        meta = self._pick_meta(rng, gdb, needs="numeric")
        spec = rng.choice(meta.attr("numeric") + meta.attr("measure"))
        span = spec.high - spec.low
        low = spec.low + int(span * 0.2)
        high = spec.low + int(span * 0.7)
        question = (
            f"List the names of {meta.plural} with {spec.nl} between "
            f"{low} and {high}."
        )
        gold = (
            f"SELECT name FROM {meta.table.name} "
            f"WHERE {spec.column} BETWEEN {low} AND {high}"
        )
        return question, gold, "medium"

    # .. trapped templates ..........................................................

    def _make_trapped(
        self,
        rng: random.Random,
        gdb: GeneratedDatabase,
        split: str,
        index: int,
        trap_weights: Optional[dict[str, float]] = None,
    ) -> Optional[Example]:
        weights_map = trap_weights or self._trap_weights
        kinds = list(weights_map)
        weights = [weights_map[k] for k in kinds]
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        builder = getattr(self, f"_t_{kind}")
        built = builder(rng, gdb)
        if built is None:
            raise DatasetError("trap not applicable")
        question, gold_sql, hardness, meta_dict = built
        # A trap is only "live" when the naive misreading (the foil) would
        # actually produce a different execution result; otherwise the
        # planted error would be invisible to execution accuracy.
        foil_sql = meta_dict.get("foil_sql")
        if foil_sql and not _results_differ(gdb.database, gold_sql, foil_sql):
            raise DatasetError("trap foil does not change the result")
        return Example(
            example_id=f"spider-{split}-{index:05d}",
            db_id=gdb.db_id,
            question=question,
            gold_sql=gold_sql,
            hardness=hardness,
            trap_kind=kind,
            trap_meta=meta_dict,
        )

    def _t_ambiguous_column(self, rng, gdb):
        candidates = [m for m in gdb.tables if m.compound_noun]
        if not candidates:
            return None
        meta = rng.choice(candidates)
        noun = meta.compound_noun
        compound_column = f"{noun}_name"
        numeric = meta.attr("numeric") + meta.attr("measure")
        if numeric and rng.random() < 0.6:
            spec = rng.choice(numeric)
            phrase, direction = rng.choice(
                [("highest", "DESC"), ("lowest", "ASC")]
            )
            question = (
                f"Show the name of the {noun} by the {meta.singular} "
                f"with the {phrase} {spec.nl}."
            )
            gold = (
                f"SELECT {compound_column} FROM {meta.table.name} "
                f"ORDER BY {spec.column} {direction} LIMIT 1"
            )
            hardness = "medium"
            foil = gold.replace(f"SELECT {compound_column}", "SELECT name", 1)
        else:
            name = self._sample_value(gdb, meta, "name", rng)
            escaped = str(name).replace("'", "''")
            question = (
                f"What is the name of the {noun} of the {meta.singular} "
                f"named '{name}'?"
            )
            gold = (
                f"SELECT {compound_column} FROM {meta.table.name} "
                f"WHERE name = '{escaped}'"
            )
            hardness = "easy"
            foil = gold.replace(f"SELECT {compound_column}", "SELECT name", 1)
        return (
            question,
            gold,
            hardness,
            {
                "decoy_column": "name",
                "gold_column": compound_column,
                "noun": noun,
                "foil_sql": foil,
            },
        )

    def _t_default_year(self, rng, gdb):
        try:
            meta = self._pick_meta(rng, gdb, needs="date")
        except DatasetError:
            return None
        spec = rng.choice(meta.attr("date"))
        month = rng.randint(1, 12)
        start, end = _month_range(CURRENT_YEAR, month)
        question = (
            f"How many {meta.plural} were created in {MONTH_NAMES[month - 1]}?"
        )
        gold = (
            f"SELECT COUNT(*) FROM {meta.table.name} "
            f"WHERE {spec.column} >= '{start}' AND {spec.column} < '{end}'"
        )
        foil_start, foil_end = _month_range(MODEL_DEFAULT_YEAR, month)
        foil = (
            f"SELECT COUNT(*) FROM {meta.table.name} "
            f"WHERE {spec.column} >= '{foil_start}' AND "
            f"{spec.column} < '{foil_end}'"
        )
        return (
            question,
            gold,
            "medium",
            {
                "intended_year": CURRENT_YEAR,
                "assumed_year": MODEL_DEFAULT_YEAR,
                "month": month,
                "date_column": spec.column,
                "foil_sql": foil,
            },
        )

    def _t_missing_filter(self, rng, gdb):
        candidates = [
            m for m in gdb.tables if m.status_values and m.has_attr("status")
        ]
        if not candidates:
            return None
        meta = rng.choice(candidates)
        value = meta.status_values[0]
        vague = meta.status_vague_phrase
        question = f"List the names of the {vague} {meta.plural}."
        gold = (
            f"SELECT name FROM {meta.table.name} WHERE status = '{value}'"
        )
        foil = f"SELECT name FROM {meta.table.name}"
        return (
            question,
            gold,
            "medium",
            {
                "status_column": "status",
                "status_value": value,
                "phrase": vague,
                "foil_sql": foil,
            },
        )

    def _t_extra_description(self, rng, gdb):
        candidates = [m for m in gdb.tables if m.has_attr("description")]
        if not candidates:
            return None
        meta = rng.choice(candidates)
        numeric = meta.attr("numeric") + meta.attr("measure")
        if not numeric:
            return None
        spec = rng.choice(numeric)
        threshold = int((spec.low + spec.high) / 2)
        phrase, op = self._comparison(rng)
        question = (
            f"List the {meta.plural} whose {spec.nl} is {phrase} {threshold}."
        )
        gold = (
            f"SELECT name FROM {meta.table.name} "
            f"WHERE {spec.column} {op} {threshold}"
        )
        foil = gold.replace("SELECT name", "SELECT name, description", 1)
        return (
            question,
            gold,
            "medium",
            {"extra_column": "description", "foil_sql": foil},
        )

    def _t_count_distinct(self, rng, gdb):
        try:
            meta = self._pick_meta(rng, gdb, needs="category")
        except DatasetError:
            return None
        spec = rng.choice(meta.attr("category"))
        plural_nl = spec.nl if spec.nl.endswith("s") else spec.nl + "s"
        question = (
            f"How many {plural_nl} do the {meta.plural} come from?"
            if spec.pool == "countries"
            else f"How many {plural_nl} are represented among the {meta.plural}?"
        )
        gold = (
            f"SELECT COUNT(DISTINCT {spec.column}) FROM {meta.table.name}"
        )
        foil = f"SELECT COUNT({spec.column}) FROM {meta.table.name}"
        return (
            question,
            gold,
            "medium",
            {"column": spec.column, "foil_sql": foil},
        )

    def _t_missing_distinct(self, rng, gdb):
        try:
            meta = self._pick_meta(rng, gdb, needs="category")
        except DatasetError:
            return None
        spec = rng.choice(meta.attr("category"))
        question = f"What are the {spec.nl} values of the {meta.plural}?"
        gold = f"SELECT DISTINCT {spec.column} FROM {meta.table.name}"
        foil = f"SELECT {spec.column} FROM {meta.table.name}"
        return (
            question,
            gold,
            "easy",
            {"column": spec.column, "foil_sql": foil},
        )

    def _t_order_direction(self, rng, gdb):
        try:
            meta = self._pick_meta(rng, gdb, needs="numeric")
        except DatasetError:
            return None
        numeric = meta.attr("numeric") + meta.attr("measure")
        spec = rng.choice(numeric)
        n = rng.randint(3, 8)
        question = (
            f"List the names of the first {n} {meta.plural} by {spec.nl}."
        )
        gold = (
            f"SELECT name FROM {meta.table.name} "
            f"ORDER BY {spec.column} DESC LIMIT {n}"
        )
        foil = gold.replace("DESC", "ASC", 1)
        return (
            question,
            gold,
            "medium",
            {"column": spec.column, "limit": n, "foil_sql": foil},
        )

    def _t_multi(self, rng, gdb):
        """Two planted errors in one question (needs two feedback rounds)."""
        with_desc = [m for m in gdb.tables if m.has_attr("description")]
        if not with_desc:
            return None
        dated = [m for m in with_desc if m.attr("date")]
        stated = [m for m in with_desc if m.status_values and m.has_attr("status")]
        variant_pool = []
        if dated:
            variant_pool.append("year_desc")
        if stated:
            variant_pool.append("filter_desc")
        if not variant_pool:
            return None
        variant = rng.choice(variant_pool)
        if variant == "year_desc":
            meta = rng.choice(dated)
            spec = rng.choice(meta.attr("date"))
            month = rng.randint(1, 12)
            start, end = _month_range(CURRENT_YEAR, month)
            foil_start, foil_end = _month_range(MODEL_DEFAULT_YEAR, month)
            question = (
                f"List the {meta.plural} created in {MONTH_NAMES[month - 1]}."
            )
            gold = (
                f"SELECT name FROM {meta.table.name} WHERE {spec.column} >= "
                f"'{start}' AND {spec.column} < '{end}'"
            )
            foil = (
                f"SELECT name, description FROM {meta.table.name} WHERE "
                f"{spec.column} >= '{foil_start}' AND {spec.column} < "
                f"'{foil_end}'"
            )
            return (
                question,
                gold,
                "medium",
                {
                    "components": ["default_year", "extra_description"],
                    "intended_year": CURRENT_YEAR,
                    "assumed_year": MODEL_DEFAULT_YEAR,
                    "month": month,
                    "date_column": spec.column,
                    "extra_column": "description",
                    "foil_sql": foil,
                },
            )
        meta = rng.choice(stated)
        value = meta.status_values[0]
        vague = meta.status_vague_phrase
        question = f"List the {vague} {meta.plural}."
        gold = f"SELECT name FROM {meta.table.name} WHERE status = '{value}'"
        foil = f"SELECT name, description FROM {meta.table.name}"
        return (
            question,
            gold,
            "medium",
            {
                "components": ["missing_filter", "extra_description"],
                "status_column": "status",
                "status_value": value,
                "phrase": vague,
                "extra_column": "description",
                "foil_sql": foil,
            },
        )

    def _t_wrong_aggregate(self, rng, gdb):
        candidates = [m for m in gdb.tables if m.attr("measure")]
        if not candidates:
            return None
        meta = rng.choice(candidates)
        spec = rng.choice(meta.attr("measure"))
        question = (
            f"How many {spec.nl} do the {meta.plural} have altogether?"
        )
        gold = f"SELECT SUM({spec.column}) FROM {meta.table.name}"
        return question, gold, "medium", {"column": spec.column}


def _results_differ(database, gold_sql: str, foil_sql: str) -> bool:
    """True when the foil query's result differs from gold's."""
    from repro.sql.comparison import query_is_ordered, results_match
    from repro.sql.parser import parse_query

    gold_ast = parse_query(gold_sql)
    foil_ast = parse_query(foil_sql)
    gold_result = database.execute_ast(gold_ast)
    foil_result = database.execute_ast(foil_ast)
    ordered = query_is_ordered(gold_ast)
    return not results_match(gold_result, foil_result, ordered=ordered)


def _month_range(year: int, month: int) -> tuple[str, str]:
    """[start, end) ISO dates covering one month."""
    start = f"{year:04d}-{month:02d}-01"
    if month == 12:
        end = f"{year + 1:04d}-01-01"
    else:
        end = f"{year:04d}-{month + 1:02d}-01"
    return start, end


def generate_spider_suite(
    seed: int = 20250325,
    n_databases: int = 200,
    n_dev: int = 1034,
    n_train: int = 600,
    trap_rate: float = 0.345,
) -> SpiderSuite:
    """Convenience wrapper: build the default SPIDER-like suite."""
    return SpiderGenerator(
        seed=seed,
        n_databases=n_databases,
        n_dev=n_dev,
        n_train=n_train,
        trap_rate=trap_rate,
    ).generate()
