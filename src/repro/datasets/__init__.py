"""Synthetic benchmark generators (SPIDER-like and AEP-like)."""

from repro.datasets.aep import (
    AEP_DB_ID,
    AEP_GLOSSARY,
    AepGenerator,
    build_aep_database,
    generate_aep_suite,
)
from repro.datasets.base import Benchmark, Demonstration, Example
from repro.datasets.spider import (
    SpiderGenerator,
    SpiderSuite,
    generate_spider_suite,
)
from repro.datasets.stats import (
    SuiteStats,
    benchmark_stats,
    matches_paper_shape,
    suite_stats,
)
from repro.datasets.traps import ALL_TRAPS, TrapKind, trap_for, traps_for_dataset

__all__ = [
    "AEP_DB_ID",
    "AEP_GLOSSARY",
    "ALL_TRAPS",
    "AepGenerator",
    "Benchmark",
    "Demonstration",
    "Example",
    "SpiderGenerator",
    "SpiderSuite",
    "SuiteStats",
    "benchmark_stats",
    "matches_paper_shape",
    "suite_stats",
    "TrapKind",
    "build_aep_database",
    "generate_aep_suite",
    "generate_spider_suite",
    "trap_for",
    "traps_for_dataset",
]
