"""Suite statistics: verify generated benchmarks match the paper's shapes.

The paper describes SPIDER as "about 200 databases with 5-20 tables per
database and 5-10 columns per table"; this module computes those statistics
(and question-mix breakdowns) for any generated suite, so the match is
checkable rather than asserted.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.datasets.base import Benchmark
from repro.datasets.spider import SpiderSuite


@dataclass
class SuiteStats:
    """Shape statistics of a generated suite."""

    n_databases: int = 0
    n_examples: int = 0
    tables_per_db_min: int = 0
    tables_per_db_max: int = 0
    tables_per_db_mean: float = 0.0
    columns_per_table_min: int = 0
    columns_per_table_max: int = 0
    columns_per_table_mean: float = 0.0
    rows_per_table_mean: float = 0.0
    hardness_mix: Counter = field(default_factory=Counter)
    trap_mix: Counter = field(default_factory=Counter)

    @property
    def trap_rate(self) -> float:
        trapped = sum(v for k, v in self.trap_mix.items() if k != "untrapped")
        if not self.n_examples:
            return 0.0
        return trapped / self.n_examples

    def render(self) -> str:
        lines = [
            f"databases: {self.n_databases}",
            (
                f"tables/db: {self.tables_per_db_min}-"
                f"{self.tables_per_db_max} (mean {self.tables_per_db_mean:.1f})"
            ),
            (
                f"columns/table: {self.columns_per_table_min}-"
                f"{self.columns_per_table_max} "
                f"(mean {self.columns_per_table_mean:.1f})"
            ),
            f"rows/table (mean): {self.rows_per_table_mean:.1f}",
            f"examples: {self.n_examples} (trap rate {self.trap_rate:.2f})",
            "hardness mix: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.hardness_mix.items())),
            "trap mix: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.trap_mix.items())),
        ]
        return "\n".join(lines)


def benchmark_stats(benchmark: Benchmark) -> SuiteStats:
    """Compute shape statistics for any benchmark."""
    stats = SuiteStats()
    stats.n_databases = len(benchmark.databases)
    stats.n_examples = len(benchmark.examples)

    table_counts = []
    column_counts = []
    row_counts = []
    for database in benchmark.databases.values():
        table_counts.append(len(database.schema.tables))
        for table in database.schema.tables:
            column_counts.append(len(table.columns))
            row_counts.append(database.row_count(table.name))

    if table_counts:
        stats.tables_per_db_min = min(table_counts)
        stats.tables_per_db_max = max(table_counts)
        stats.tables_per_db_mean = sum(table_counts) / len(table_counts)
    if column_counts:
        stats.columns_per_table_min = min(column_counts)
        stats.columns_per_table_max = max(column_counts)
        stats.columns_per_table_mean = sum(column_counts) / len(column_counts)
    if row_counts:
        stats.rows_per_table_mean = sum(row_counts) / len(row_counts)

    for example in benchmark.examples:
        stats.hardness_mix[example.hardness] += 1
        stats.trap_mix[example.trap_kind or "untrapped"] += 1
    return stats


def suite_stats(suite: SpiderSuite) -> SuiteStats:
    """Shape statistics of a SPIDER-like suite's dev environment."""
    return benchmark_stats(suite.benchmark)


def matches_paper_shape(stats: SuiteStats) -> list[str]:
    """Check the paper's stated SPIDER shape; returns violations (empty=ok)."""
    violations = []
    if not (5 <= stats.tables_per_db_min and stats.tables_per_db_max <= 20):
        violations.append(
            f"tables/db {stats.tables_per_db_min}-{stats.tables_per_db_max} "
            "outside the paper's 5-20"
        )
    if not (5 <= stats.columns_per_table_min and stats.columns_per_table_max <= 10):
        violations.append(
            f"columns/table {stats.columns_per_table_min}-"
            f"{stats.columns_per_table_max} outside the paper's 5-10"
        )
    return violations
