"""Row population for generated tables."""

from __future__ import annotations

import random

from repro.datasets.names import (
    FIRST_NAMES,
    LAST_NAMES,
    NAME_ADJECTIVES,
    NAME_NOUNS,
    VALUE_POOLS,
    AttrSpec,
)
from repro.sql.types import DataType, SqlValue


def make_entity_name(rng: random.Random, category: str) -> str:
    """A display name appropriate for the entity category."""
    if category == "person":
        return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"
    return f"{rng.choice(NAME_ADJECTIVES)} {rng.choice(NAME_NOUNS)}"


def make_date(rng: random.Random) -> str:
    """An ISO date in 2023–2024, both years well represented."""
    year = rng.choice((2023, 2023, 2024, 2024))
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"


def make_value(
    rng: random.Random,
    spec: AttrSpec,
    status_values: tuple[str, ...] = (),
) -> SqlValue:
    """Generate one value for an attribute template."""
    if spec.kind == "status":
        values = status_values or ("active", "inactive")
        return rng.choice(values)
    if spec.kind == "description":
        adjective = rng.choice(NAME_ADJECTIVES).lower()
        noun = rng.choice(NAME_NOUNS).lower()
        return f"a {adjective} {noun} entry"
    if spec.kind == "date":
        return make_date(rng)
    if spec.kind == "category":
        pool = VALUE_POOLS.get(spec.pool, VALUE_POOLS["types"])
        return rng.choice(pool)
    if spec.kind in ("numeric", "measure"):
        if spec.dtype is DataType.REAL:
            return round(rng.uniform(spec.low, spec.high), 1)
        return rng.randint(spec.low, spec.high)
    raise ValueError(f"cannot populate attribute kind {spec.kind!r}")
