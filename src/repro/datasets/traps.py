"""Trap taxonomy: the planted difficulties that make questions fail.

Each trap corresponds to an error class the paper's error analysis (and the
NL2SQL literature) attributes to LLM NL2SQL systems: ambiguous references,
implicit context, closed-domain jargon, verbosity, etc. The question
generators plant traps; the semantic parser falls into them for mechanistic
reasons (its linking and defaults are defensible but wrong on the trapped
reading); the user simulator then produces the natural feedback a user
would give.

The trap kind also determines the paper's feedback type taxonomy:

* Add    — missing_filter, missing_distinct, missing_order
* Remove — extra_description
* Edit   — ambiguous_column, default_year, count_distinct, order_direction,
           wrong_aggregate, jargon_* (after the jargon maps to a concrete fix)
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TrapKind:
    """Metadata about one trap family."""

    name: str
    feedback_type: str  # add / remove / edit
    description: str
    datasets: tuple[str, ...]  # which benchmarks plant it


AMBIGUOUS_COLUMN = TrapKind(
    name="ambiguous_column",
    feedback_type="edit",
    description=(
        "The question's phrasing ('the name of the song') head-matches a "
        "decoy column (Name) while gold wants a compound column (Song_Name)."
    ),
    datasets=("spider",),
)

DEFAULT_YEAR = TrapKind(
    name="default_year",
    feedback_type="edit",
    description=(
        "The question gives a month with no year; the model assumes its "
        "prior-year default while the user means the current year."
    ),
    datasets=("spider", "aep"),
)

MISSING_FILTER = TrapKind(
    name="missing_filter",
    feedback_type="add",
    description=(
        "The question uses a vague qualifier ('currently available') whose "
        "organization-specific meaning is a status filter the model omits."
    ),
    datasets=("spider", "aep"),
)

EXTRA_DESCRIPTION = TrapKind(
    name="extra_description",
    feedback_type="remove",
    description=(
        "Asked to 'list the X', the model helpfully includes the description "
        "column; the user only wanted the names."
    ),
    datasets=("spider", "aep"),
)

COUNT_DISTINCT = TrapKind(
    name="count_distinct",
    feedback_type="edit",
    description=(
        "'How many X' over a non-unique column: the user means distinct "
        "values, the model counts rows."
    ),
    datasets=("spider",),
)

ORDER_DIRECTION = TrapKind(
    name="order_direction",
    feedback_type="edit",
    description=(
        "'The first 5 by rating' — the user means best-first (DESC), the "
        "model sorts ascending."
    ),
    datasets=("spider",),
)

MISSING_DISTINCT = TrapKind(
    name="missing_distinct",
    feedback_type="add",
    description=(
        "'What are the colors of the cars' — the user wants the distinct "
        "values, the model returns duplicates."
    ),
    datasets=("spider",),
)

WRONG_AGGREGATE = TrapKind(
    name="wrong_aggregate",
    feedback_type="edit",
    description=(
        "'How much X in total' phrased as a how-many question: the model "
        "counts rows instead of summing the measure."
    ),
    datasets=("spider",),
)

JARGON_TABLE = TrapKind(
    name="jargon_table",
    feedback_type="edit",
    description=(
        "Closed-domain vocabulary: the question says 'audiences', the table "
        "is hkg_dim_segment. Zero-shot models cannot make the link."
    ),
    datasets=("aep",),
)

JARGON_VALUE = TrapKind(
    name="jargon_value",
    feedback_type="edit",
    description=(
        "Closed-domain value vocabulary: the user says 'live' but the "
        "status column stores 'active'."
    ),
    datasets=("aep",),
)

JARGON_JOIN = TrapKind(
    name="jargon_join",
    feedback_type="add",
    description=(
        "Overloaded relation word ('activated to') that means a join through "
        "a fact table; the model reads it as a state filter."
    ),
    datasets=("aep",),
)

MULTI = TrapKind(
    name="multi",
    feedback_type="edit",
    description=(
        "Two planted errors in one question; the paper's error analysis "
        "attributes residual failures to such queries needing multiple "
        "feedback rounds."
    ),
    datasets=("spider", "aep"),
)

ALL_TRAPS: dict[str, TrapKind] = {
    trap.name: trap
    for trap in (
        AMBIGUOUS_COLUMN,
        DEFAULT_YEAR,
        MISSING_FILTER,
        EXTRA_DESCRIPTION,
        COUNT_DISTINCT,
        ORDER_DIRECTION,
        MISSING_DISTINCT,
        WRONG_AGGREGATE,
        JARGON_TABLE,
        JARGON_VALUE,
        JARGON_JOIN,
        MULTI,
    )
}


def trap_for(name: str) -> TrapKind:
    """Look up a trap kind by name."""
    return ALL_TRAPS[name]


def traps_for_dataset(dataset: str) -> list[TrapKind]:
    """Trap kinds planted by a given benchmark generator."""
    return [trap for trap in ALL_TRAPS.values() if dataset in trap.datasets]
