"""Vocabulary pools for the synthetic SPIDER-like benchmark generator.

Entities are grouped into four categories (person / object / event / org)
that determine which attribute templates a generated table can carry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.types import DataType


@dataclass(frozen=True)
class AttrSpec:
    """Template for a generated column.

    Attributes:
        column: SQL identifier.
        nl: Natural-language name used in questions.
        dtype: Column type.
        kind: Semantic role — drives which question templates apply:
            ``name`` / ``category`` / ``status`` / ``numeric`` / ``date`` /
            ``description`` / ``measure`` (summable numeric).
        pool: Name of a value pool (for category columns).
        low/high: Range (for numeric columns).
    """

    column: str
    nl: str
    dtype: DataType
    kind: str
    pool: str = ""
    low: int = 0
    high: int = 100


PERSON_ENTITIES = [
    ("singer", "singers"),
    ("student", "students"),
    ("teacher", "teachers"),
    ("employee", "employees"),
    ("doctor", "doctors"),
    ("pilot", "pilots"),
    ("driver", "drivers"),
    ("player", "players"),
    ("coach", "coaches"),
    ("author", "authors"),
    ("director", "directors"),
    ("actor", "actors"),
    ("chef", "chefs"),
    ("artist", "artists"),
    ("farmer", "farmers"),
    ("captain", "captains"),
    ("architect", "architects"),
    ("professor", "professors"),
    ("nurse", "nurses"),
    ("lawyer", "lawyers"),
    ("manager", "managers"),
    ("engineer", "engineers"),
    ("journalist", "journalists"),
    ("designer", "designers"),
]

OBJECT_ENTITIES = [
    ("product", "products"),
    ("car", "cars"),
    ("book", "books"),
    ("movie", "movies"),
    ("song", "songs"),
    ("album", "albums"),
    ("device", "devices"),
    ("machine", "machines"),
    ("ship", "ships"),
    ("train", "trains"),
    ("painting", "paintings"),
    ("dish", "dishes"),
    ("medicine", "medicines"),
    ("document", "documents"),
    ("instrument", "instruments"),
    ("gadget", "gadgets"),
    ("vehicle", "vehicles"),
    ("toy", "toys"),
    ("appliance", "appliances"),
]

EVENT_ENTITIES = [
    ("concert", "concerts"),
    ("match", "matches"),
    ("race", "races"),
    ("festival", "festivals"),
    ("exhibition", "exhibitions"),
    ("tournament", "tournaments"),
    ("conference", "conferences"),
    ("workshop", "workshops"),
    ("auction", "auctions"),
    ("ceremony", "ceremonies"),
    ("flight", "flights"),
    ("voyage", "voyages"),
]

ORG_ENTITIES = [
    ("company", "companies"),
    ("department", "departments"),
    ("school", "schools"),
    ("hospital", "hospitals"),
    ("library", "libraries"),
    ("restaurant", "restaurants"),
    ("hotel", "hotels"),
    ("museum", "museums"),
    ("airline", "airlines"),
    ("store", "stores"),
    ("studio", "studios"),
    ("team", "teams"),
    ("band", "bands"),
    ("club", "clubs"),
    ("agency", "agencies"),
    ("factory", "factories"),
    ("farm", "farms"),
    ("theater", "theaters"),
    ("college", "colleges"),
    ("clinic", "clinics"),
]

ENTITY_CATEGORIES: dict[str, list[tuple[str, str]]] = {
    "person": PERSON_ENTITIES,
    "object": OBJECT_ENTITIES,
    "event": EVENT_ENTITIES,
    "org": ORG_ENTITIES,
}

FIRST_NAMES = [
    "Alice", "Bruno", "Carla", "Derek", "Elena", "Felix", "Greta", "Hugo",
    "Iris", "Jonas", "Karim", "Lena", "Marco", "Nadia", "Oscar", "Priya",
    "Quinn", "Rosa", "Stefan", "Tara", "Umar", "Vera", "Wes", "Xenia",
    "Yusuf", "Zoe", "Amara", "Boris", "Celine", "Dmitri",
]

LAST_NAMES = [
    "Anders", "Brooks", "Castillo", "Dufour", "Eriksen", "Fontaine",
    "Garcia", "Hopkins", "Ivanov", "Jensen", "Kowalski", "Laurent",
    "Moreau", "Novak", "Okafor", "Petrov", "Quintero", "Rossi", "Sato",
    "Tanaka", "Ueda", "Varga", "Weber", "Xu", "Yamamoto", "Zhang",
]

CITIES = [
    "Ashford", "Brookdale", "Cresthill", "Dunmore", "Eastvale", "Fairview",
    "Glenrock", "Hartwell", "Ironbridge", "Juniper", "Kingsport",
    "Lakewood", "Maplewood", "Northgate", "Oakridge", "Pinehurst",
    "Quarry Bay", "Riverton", "Stonefield", "Thornbury",
]

COUNTRIES = [
    "Avaria", "Borland", "Cestia", "Drevania", "Elandor", "Frestia",
    "Gavania", "Hestria", "Ivoria", "Jorland", "Kestonia", "Lavonia",
]

COLORS = [
    "red", "blue", "green", "black", "white", "silver", "gold", "orange",
    "purple", "teal",
]

GENRES = [
    "jazz", "rock", "classical", "folk", "electronic", "blues", "pop",
    "ambient", "country", "reggae",
]

TYPES = [
    "standard", "premium", "compact", "deluxe", "economy", "sport",
    "classic", "limited", "digital", "hybrid",
]

MATERIALS = [
    "steel", "oak", "glass", "carbon", "ceramic", "leather", "aluminum",
    "bamboo", "granite", "titanium",
]

NAME_ADJECTIVES = [
    "Silver", "Crimson", "Golden", "Velvet", "Northern", "Silent",
    "Radiant", "Emerald", "Midnight", "Amber", "Cobalt", "Ivory",
    "Scarlet", "Obsidian", "Luminous", "Wandering",
]

NAME_NOUNS = [
    "Falcon", "Harbor", "Meadow", "Summit", "Canyon", "Lantern", "Compass",
    "Anchor", "Beacon", "Orchid", "Thistle", "Raven", "Aurora", "Cascade",
    "Horizon", "Pinnacle",
]

#: Status pools with the vague adjectives users attach to the first value.
#: (values, vague_phrase_for_first_value)
STATUS_POOLS: list[tuple[tuple[str, ...], str]] = [
    (("active", "inactive", "archived"), "currently running"),
    (("open", "closed", "suspended"), "currently operating"),
    (("available", "unavailable", "discontinued"), "currently offered"),
    (("in_stock", "sold_out", "backordered"), "currently obtainable"),
    (("published", "draft", "retired"), "currently public"),
]

MONTH_NAMES = [
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
]

#: The benchmark's "now": questions that omit the year mean this one.
CURRENT_YEAR = 2024

#: The base model's prior: with no other signal it assumes this year
#: (mirroring an LLM whose training data predates the current year).
MODEL_DEFAULT_YEAR = 2023


def attribute_pool(category: str) -> list[AttrSpec]:
    """Attribute templates available to tables of a given category."""
    common = [
        AttrSpec("status", "status", DataType.TEXT, "status"),
        AttrSpec("description", "description", DataType.TEXT, "description"),
        AttrSpec("created_date", "creation date", DataType.DATE, "date"),
        AttrSpec("rating", "rating", DataType.REAL, "numeric", low=1, high=10),
    ]
    if category == "person":
        return common + [
            AttrSpec("age", "age", DataType.INTEGER, "numeric", low=18, high=79),
            AttrSpec("salary", "salary", DataType.INTEGER, "measure", low=20000, high=190000),
            AttrSpec("nationality", "nationality", DataType.TEXT, "category", pool="countries"),
            AttrSpec("city", "city", DataType.TEXT, "category", pool="cities"),
            AttrSpec("height", "height", DataType.INTEGER, "numeric", low=150, high=208),
            AttrSpec("experience_years", "years of experience", DataType.INTEGER, "numeric", low=0, high=40),
        ]
    if category == "object":
        return common + [
            AttrSpec("price", "price", DataType.INTEGER, "measure", low=5, high=9500),
            AttrSpec("weight", "weight", DataType.INTEGER, "numeric", low=1, high=800),
            AttrSpec("color", "color", DataType.TEXT, "category", pool="colors"),
            AttrSpec("category", "category", DataType.TEXT, "category", pool="types"),
            AttrSpec("release_year", "release year", DataType.INTEGER, "numeric", low=1970, high=2024),
            AttrSpec("stock_count", "stock count", DataType.INTEGER, "measure", low=0, high=500),
        ]
    if category == "event":
        return common + [
            AttrSpec("attendance", "attendance", DataType.INTEGER, "measure", low=50, high=90000),
            AttrSpec("duration_minutes", "duration in minutes", DataType.INTEGER, "numeric", low=30, high=600),
            AttrSpec("city", "city", DataType.TEXT, "category", pool="cities"),
            AttrSpec("event_year", "year", DataType.INTEGER, "numeric", low=2015, high=2024),
            AttrSpec("ticket_price", "ticket price", DataType.INTEGER, "measure", low=5, high=900),
            AttrSpec("theme", "theme", DataType.TEXT, "category", pool="genres"),
        ]
    # org
    return common + [
        AttrSpec("city", "city", DataType.TEXT, "category", pool="cities"),
        AttrSpec("country", "country", DataType.TEXT, "category", pool="countries"),
        AttrSpec("founded_year", "founding year", DataType.INTEGER, "numeric", low=1880, high=2020),
        AttrSpec("employee_count", "number of employees", DataType.INTEGER, "measure", low=3, high=20000),
        AttrSpec("revenue", "revenue", DataType.INTEGER, "measure", low=10000, high=9000000),
        AttrSpec("branch_count", "number of branches", DataType.INTEGER, "measure", low=1, high=120),
    ]


VALUE_POOLS: dict[str, list[str]] = {
    "cities": CITIES,
    "countries": COUNTRIES,
    "colors": COLORS,
    "genres": GENRES,
    "types": TYPES,
    "materials": MATERIALS,
}
