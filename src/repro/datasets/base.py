"""Dataset containers: examples, benchmarks, and JSON serialization."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from repro.errors import DatasetError
from repro.sql.engine import Database


@dataclass
class Example:
    """One NL2SQL example.

    Attributes:
        example_id: Stable unique id within its benchmark.
        db_id: Database the question targets.
        question: The user's natural-language question.
        gold_sql: Reference SQL whose execution defines correctness.
        hardness: SPIDER-style bucket: easy / medium / hard / extra.
        trap_kind: Name of the planted difficulty (None for clean examples).
        trap_meta: Trap parameters (e.g. decoy column, intended year).
    """

    example_id: str
    db_id: str
    question: str
    gold_sql: str
    hardness: str = "easy"
    trap_kind: Optional[str] = None
    trap_meta: dict = field(default_factory=dict)

    @property
    def is_trapped(self) -> bool:
        return self.trap_kind is not None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Example":
        return cls(**data)


@dataclass
class Benchmark:
    """A set of databases plus the examples asked against them."""

    name: str
    databases: dict[str, Database]
    examples: list[Example]

    def database(self, db_id: str) -> Database:
        if db_id not in self.databases:
            raise DatasetError(
                f"benchmark {self.name!r} has no database {db_id!r}"
            )
        return self.databases[db_id]

    def examples_for(self, db_id: str) -> list[Example]:
        return [ex for ex in self.examples if ex.db_id == db_id]

    def trapped_examples(self) -> list[Example]:
        return [ex for ex in self.examples if ex.is_trapped]

    def __len__(self) -> int:
        return len(self.examples)

    def save_examples(self, path: Path) -> None:
        """Write the example list (not the databases) as JSON lines."""
        with open(path, "w") as handle:
            for example in self.examples:
                handle.write(json.dumps(example.to_dict()) + "\n")

    @staticmethod
    def load_examples(path: Path) -> list[Example]:
        examples = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    examples.append(Example.from_dict(json.loads(line)))
        return examples


@dataclass
class Demonstration:
    """A (question, SQL) pair used for in-context demonstrations.

    ``glossary`` carries the closed-domain phrase→schema mappings that the
    demonstration implicitly teaches. The simulated LLM 'reads' these when
    the demonstration is present in its prompt — an executable stand-in for
    in-context learning.
    """

    question: str
    sql: str
    db_id: str
    glossary: dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        return f"Question: {self.question}\nQuery: {self.sql}"


def demonstrations_from_examples(
    examples: Iterable[Example], glossaries: Optional[dict[str, dict]] = None
) -> list[Demonstration]:
    """Turn clean examples into RAG demonstrations."""
    demos = []
    for example in examples:
        glossary = {}
        if glossaries and example.db_id in glossaries:
            glossary = glossaries[example.db_id]
        demos.append(
            Demonstration(
                question=example.question,
                sql=example.gold_sql,
                db_id=example.db_id,
                glossary=glossary,
            )
        )
    return demos
